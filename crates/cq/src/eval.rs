//! Evaluation of conjunctive queries over canonical instances.
//!
//! The containment test of Theorem A.1 asks, for each representative
//! instance–tuple pair `(I, s)`, whether `s ∈ q'(I)` for some disjunct
//! `q'`. Instances here are the "magic" canonical instances built from a
//! query's conjuncts under a valuation; evaluation is a backtracking
//! search for a typed valuation of `q'` into `I` that satisfies the
//! conjuncts and non-equalities and produces `s`.

use std::collections::BTreeMap;

use receivers_objectbase::Oid;
use receivers_relalg::deps::AtomRel;
use receivers_relalg::tuples::TupleSet;

use crate::chase::PosDep;
use crate::partition::Valuation;
use crate::query::{Atom, ConjunctiveQuery, Var};

/// A canonical instance: relation symbol ↦ flat sorted tuple set.
pub type CanonicalDb = BTreeMap<AtomRel, TupleSet>;

/// Build the canonical instance `θ(c(q))` of a query under a valuation.
pub fn canonical_instance(q: &ConjunctiveQuery, theta: &Valuation) -> CanonicalDb {
    let mut db = CanonicalDb::new();
    let mut row: Vec<Oid> = Vec::new();
    for at in q.atoms() {
        row.clear();
        row.extend(at.args.iter().map(|v| theta[v]));
        db.entry(at.rel.clone())
            .or_insert_with(|| TupleSet::new(row.len()))
            .insert(&row);
    }
    db
}

/// The canonical summary tuple `θ(s(q))`.
pub fn canonical_tuple(q: &ConjunctiveQuery, theta: &Valuation) -> Vec<Oid> {
    q.summary().iter().map(|v| theta[v]).collect()
}

/// Check the functional dependencies against a canonical instance: a
/// representative instance that violates a fd cannot arise from any
/// Σ-satisfying database, so the containment test skips it (see the crate
/// docs on the deviation from the appendix's presentation).
pub(crate) fn fds_hold(db: &CanonicalDb, deps: &[PosDep]) -> bool {
    for dep in deps {
        let PosDep::Fd { rel, lhs, rhs } = dep else {
            continue;
        };
        let Some(tuples) = db.get(rel) else { continue };
        let mut seen: BTreeMap<Vec<Oid>, Oid> = BTreeMap::new();
        for t in tuples.iter() {
            let key: Vec<Oid> = lhs.iter().map(|&p| t[p]).collect();
            match seen.insert(key, t[*rhs]) {
                Some(prev) if prev != t[*rhs] => return false,
                _ => {}
            }
        }
    }
    true
}

/// Does the tuple `s` belong to `q(I)`?
///
/// `s` must have the same length as `q`'s summary; domains are checked
/// during matching (a value of the wrong class simply never unifies).
pub fn tuple_in_query(q: &ConjunctiveQuery, s: &[Oid], db: &CanonicalDb) -> bool {
    if s.len() != q.summary().len() {
        return false;
    }
    let mut binding: BTreeMap<Var, Oid> = BTreeMap::new();
    for (&v, &val) in q.summary().iter().zip(s) {
        if q.domain(v) != val.class {
            return false;
        }
        match binding.insert(v, val) {
            Some(prev) if prev != val => return false,
            _ => {}
        }
    }
    let atoms: Vec<&Atom> = q.atoms().collect();
    let neqs: Vec<(Var, Var)> = q.neqs().collect();
    solve(q, &atoms, 0, &neqs, &mut binding, db)
}

/// Full evaluation: all tuples of `q(I)`, as a flat sorted tuple set.
pub fn evaluate(q: &ConjunctiveQuery, db: &CanonicalDb) -> TupleSet {
    let mut out = TupleSet::new(q.summary().len());
    let atoms: Vec<&Atom> = q.atoms().collect();
    let neqs: Vec<(Var, Var)> = q.neqs().collect();
    let mut binding: BTreeMap<Var, Oid> = BTreeMap::new();
    collect(q, &atoms, 0, &neqs, &mut binding, db, &mut out);
    out
}

fn neqs_ok(neqs: &[(Var, Var)], binding: &BTreeMap<Var, Oid>) -> bool {
    neqs.iter().all(|&(a, b)| {
        match (binding.get(&a), binding.get(&b)) {
            (Some(x), Some(y)) => x != y,
            _ => true, // not yet fully bound; checked again later
        }
    })
}

fn solve(
    q: &ConjunctiveQuery,
    atoms: &[&Atom],
    idx: usize,
    neqs: &[(Var, Var)],
    binding: &mut BTreeMap<Var, Oid>,
    db: &CanonicalDb,
) -> bool {
    if !neqs_ok(neqs, binding) {
        return false;
    }
    if idx == atoms.len() {
        // All atoms matched; neqs fully bound (safety: all vars in atoms).
        return true;
    }
    let at = atoms[idx];
    let Some(tuples) = db.get(&at.rel) else {
        return false;
    };
    'tuple: for t in tuples.iter() {
        let mut added: Vec<Var> = Vec::new();
        for (&v, &val) in at.args.iter().zip(t) {
            match binding.get(&v) {
                Some(&prev) if prev != val => {
                    for a in added.drain(..) {
                        binding.remove(&a);
                    }
                    continue 'tuple;
                }
                Some(_) => {}
                None => {
                    if q.domain(v) != val.class {
                        for a in added.drain(..) {
                            binding.remove(&a);
                        }
                        continue 'tuple;
                    }
                    binding.insert(v, val);
                    added.push(v);
                }
            }
        }
        if solve(q, atoms, idx + 1, neqs, binding, db) {
            return true;
        }
        for a in added {
            binding.remove(&a);
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn collect(
    q: &ConjunctiveQuery,
    atoms: &[&Atom],
    idx: usize,
    neqs: &[(Var, Var)],
    binding: &mut BTreeMap<Var, Oid>,
    db: &CanonicalDb,
    out: &mut TupleSet,
) {
    if !neqs_ok(neqs, binding) {
        return;
    }
    if idx == atoms.len() {
        let row: Vec<Oid> = q.summary().iter().map(|v| binding[v]).collect();
        out.insert(&row);
        return;
    }
    let at = atoms[idx];
    let Some(tuples) = db.get(&at.rel) else {
        return;
    };
    'tuple: for t in tuples.iter() {
        let mut added: Vec<Var> = Vec::new();
        for (&v, &val) in at.args.iter().zip(t) {
            match binding.get(&v) {
                Some(&prev) if prev != val => {
                    for a in added.drain(..) {
                        binding.remove(&a);
                    }
                    continue 'tuple;
                }
                Some(_) => {}
                None => {
                    if q.domain(v) != val.class {
                        for a in added.drain(..) {
                            binding.remove(&a);
                        }
                        continue 'tuple;
                    }
                    binding.insert(v, val);
                    added.push(v);
                }
            }
        }
        collect(q, atoms, idx + 1, neqs, binding, db, out);
        for a in added {
            binding.remove(&a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::identity_valuation;
    use crate::schema_ctx::SchemaCtx;
    use receivers_objectbase::examples::beer_schema;
    use receivers_relalg::expr::RelName;
    use receivers_relalg::typecheck::ParamSchemas;

    fn setup() -> (receivers_objectbase::examples::BeerSchema, SchemaCtx) {
        let s = beer_schema();
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
        (s, ctx)
    }

    /// Build `q(bar) ← frequents(d, bar) ∧ serves(bar, beer)`.
    fn path_query(
        s: &receivers_objectbase::examples::BeerSchema,
        ctx: &SchemaCtx,
    ) -> ConjunctiveQuery {
        let mut b = ConjunctiveQuery::builder(ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let beer = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, beer])
            .unwrap();
        b.summary(vec![bar]);
        b.build().unwrap()
    }

    #[test]
    fn canonical_instance_of_query_satisfies_query() {
        let (s, ctx) = setup();
        let q = path_query(&s, &ctx);
        let theta = identity_valuation(&q);
        let db = canonical_instance(&q, &theta);
        let s_tuple = canonical_tuple(&q, &theta);
        assert!(tuple_in_query(&q, &s_tuple, &db));
    }

    #[test]
    fn evaluation_enumerates_all_answers() {
        let (s, ctx) = setup();
        let q = path_query(&s, &ctx);
        // Build an instance with two bars, one of which serves a beer.
        let d0 = Oid::new(s.drinker, 0);
        let b0 = Oid::new(s.bar, 0);
        let b1 = Oid::new(s.bar, 1);
        let be = Oid::new(s.beer, 0);
        let mut db = CanonicalDb::new();
        let freq = db
            .entry(AtomRel::Base(RelName::Prop(s.frequents)))
            .or_insert_with(|| TupleSet::new(2));
        freq.insert(&[d0, b0]);
        freq.insert(&[d0, b1]);
        db.entry(AtomRel::Base(RelName::Prop(s.serves)))
            .or_insert_with(|| TupleSet::new(2))
            .insert(&[b0, be]);
        let answers = evaluate(&q, &db);
        assert_eq!(answers.iter().collect::<Vec<_>>(), vec![&[b0][..]]);
        assert!(tuple_in_query(&q, &[b0], &db));
        assert!(!tuple_in_query(&q, &[b1], &db));
    }

    #[test]
    fn neqs_are_respected() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d1, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d2, bar])
            .unwrap();
        b.neq(d1, d2).unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();

        let da = Oid::new(s.drinker, 0);
        let dbj = Oid::new(s.drinker, 1);
        let b0 = Oid::new(s.bar, 0);
        let b1 = Oid::new(s.bar, 1);
        let mut inst = CanonicalDb::new();
        let freq = inst
            .entry(AtomRel::Base(RelName::Prop(s.frequents)))
            .or_insert_with(|| TupleSet::new(2));
        freq.insert(&[da, b0]);
        freq.insert(&[dbj, b0]);
        freq.insert(&[da, b1]);
        // b0 has two distinct frequenters, b1 only one.
        assert!(tuple_in_query(&q, &[b0], &inst));
        assert!(!tuple_in_query(&q, &[b1], &inst));
    }

    #[test]
    fn repeated_summary_variables_constrain_the_answer() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![bar, bar]);
        let q = b.build().unwrap();
        let d0 = Oid::new(s.drinker, 0);
        let b0 = Oid::new(s.bar, 0);
        let b1 = Oid::new(s.bar, 1);
        let mut inst = CanonicalDb::new();
        inst.entry(AtomRel::Base(RelName::Prop(s.frequents)))
            .or_insert_with(|| TupleSet::new(2))
            .insert(&[d0, b0]);
        assert!(tuple_in_query(&q, &[b0, b0], &inst));
        assert!(!tuple_in_query(&q, &[b0, b1], &inst));
    }

    #[test]
    fn wrong_domain_in_tuple_never_matches() {
        let (s, ctx) = setup();
        let q = path_query(&s, &ctx);
        let theta = identity_valuation(&q);
        let db = canonical_instance(&q, &theta);
        let beer = Oid::new(s.beer, 0);
        assert!(!tuple_in_query(&q, &[beer], &db));
    }
}
