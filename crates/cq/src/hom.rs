//! The Chandra–Merlin Homomorphism Theorem for equality conjunctive
//! queries: `q₁ ⊆ q₂` iff there is a homomorphism from `q₂` to `q₁`, iff
//! the magic tuple of `q₁` belongs to `q₂` evaluated on `q₁`'s canonical
//! instance (Appendix A).

use crate::eval::{canonical_instance, canonical_tuple, tuple_in_query};
use crate::partition::identity_valuation;
use crate::query::ConjunctiveQuery;

/// Is there a homomorphism from `from` to `to`? That is, a mapping
/// `ψ : v(from) → v(to)` with `ψ(c(from)) ⊆ c(to)` and
/// `ψ(s(from)) = s(to)`.
///
/// For *equality* queries this decides containment: `to ⊆ from`. With
/// non-equalities present it is still a sound necessary condition on each
/// representative instance, but the full test of Theorem A.1 (in
/// [`crate::contain`]) must be used for containment.
pub fn exists_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
    let theta = identity_valuation(to);
    let db = canonical_instance(to, &theta);
    let magic = canonical_tuple(to, &theta);
    tuple_in_query(from, &magic, &db)
}

/// Containment of *equality* conjunctive queries (no dependencies): the
/// classical Chandra–Merlin test. Returns `None` when either query has
/// non-equalities (use [`crate::contain::contained_under`] instead).
pub fn equality_cq_contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Option<bool> {
    if !q1.is_equality_query() || !q2.is_equality_query() {
        return None;
    }
    Some(exists_homomorphism(q2, q1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_ctx::SchemaCtx;
    use receivers_objectbase::examples::beer_schema;
    use receivers_relalg::deps::AtomRel;
    use receivers_relalg::expr::RelName;
    use receivers_relalg::typecheck::ParamSchemas;

    fn setup() -> (receivers_objectbase::examples::BeerSchema, SchemaCtx) {
        let s = beer_schema();
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
        (s, ctx)
    }

    /// `q_specific(bar) ← frequents(d,bar) ∧ serves(bar,beer)` is contained
    /// in `q_general(bar) ← frequents(d,bar)`: the classic "more joins =
    /// more specific".
    #[test]
    fn more_conjuncts_mean_contained() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let beer = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, beer])
            .unwrap();
        b.summary(vec![bar]);
        let specific = b.build().unwrap();

        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![bar]);
        let general = b.build().unwrap();

        assert_eq!(equality_cq_contained(&specific, &general), Some(true));
        assert_eq!(equality_cq_contained(&general, &specific), Some(false));
    }

    /// Self-containment always holds (identity homomorphism).
    #[test]
    fn identity_homomorphism() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![d, bar]);
        let q = b.build().unwrap();
        assert!(exists_homomorphism(&q, &q));
    }

    #[test]
    fn non_equality_queries_are_deferred() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d1, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d2, bar])
            .unwrap();
        b.neq(d1, d2).unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        assert_eq!(equality_cq_contained(&q, &q), None);
    }
}
