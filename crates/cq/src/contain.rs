//! Containment and equivalence of positive queries under functional and
//! full inclusion dependencies — the executable form of Lemma 5.13.
//!
//! The algorithm combines the appendix's ingredients:
//!
//! 1. **Chase** the left-hand query with Σ (Lemma A.2: `q ≡_Σ chase_Σ(q)`;
//!    Lemma A.3: `q ⊆_Σ Q` iff `chase_Σ(q) ⊆ Q`). A `⊥` chase means `q` is
//!    unsatisfiable over Σ-instances, hence trivially contained.
//! 2. Enumerate **Klug's representative set** of the chased query: one
//!    canonical instance–tuple pair per non-equality-preserving valuation
//!    pattern (Theorem A.1), factored per domain thanks to typing.
//! 3. Skip patterns whose canonical instance violates a functional
//!    dependency — they are not realizable in Σ-satisfying databases (see
//!    the crate docs).
//! 4. For each surviving pair `(I, s)`, succeed iff **some disjunct** `q'`
//!    of the right-hand query has `s ∈ q'(I)` (Sagiv–Yannakakis lifted to
//!    non-equalities per Klug).

use receivers_obs as obs;
use receivers_relalg::deps::Dependency;

use crate::chase::{chase_resolved, resolve_deps, ChaseOutcome};
use crate::error::Result;
use crate::eval::{canonical_instance, canonical_tuple, fds_hold, tuple_in_query, CanonicalDb};
use crate::partition::for_each_valuation;
use crate::query::{ConjunctiveQuery, PositiveQuery};
use crate::schema_ctx::SchemaCtx;

/// The verdict of a containment test, with a counterexample when negative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentReport {
    /// Containment holds.
    Contained,
    /// Containment fails; the canonical instance and tuple witness it.
    NotContained {
        /// A Σ-satisfying instance on which the left query produces a
        /// tuple the right one misses.
        witness: CanonicalDb,
        /// The offending tuple.
        tuple: Vec<receivers_objectbase::Oid>,
    },
}

impl ContainmentReport {
    /// `true` iff containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, ContainmentReport::Contained)
    }
}

/// Options for the containment test (the ablation bench toggles these).
#[derive(Debug, Clone, Copy)]
pub struct ContainOptions {
    /// Minimize the chased left-hand query before enumerating
    /// representative valuations. On by default: shedding redundant atoms
    /// sheds existential variables, the driver of the enumeration's
    /// Bell-number growth.
    pub minimize: bool,
}

impl Default for ContainOptions {
    fn default() -> Self {
        Self { minimize: true }
    }
}

/// Decide `q ⊆_Σ Q`.
pub fn contained_under(
    q: &ConjunctiveQuery,
    big: &PositiveQuery,
    deps: &[Dependency],
    ctx: &SchemaCtx,
) -> Result<ContainmentReport> {
    contained_under_with(q, big, deps, ctx, ContainOptions::default())
}

obs::counter!(C_CONTAIN_CHECKS, "cq.contain.checks");
obs::counter!(C_CONTAIN_VALUATIONS, "cq.contain.valuations");

/// [`contained_under`] with explicit options.
pub fn contained_under_with(
    q: &ConjunctiveQuery,
    big: &PositiveQuery,
    deps: &[Dependency],
    ctx: &SchemaCtx,
    options: ContainOptions,
) -> Result<ContainmentReport> {
    C_CONTAIN_CHECKS.incr();
    let _span = obs::span("cq.contain");
    let pos_deps = resolve_deps(deps, ctx)?;
    let mut chased = match chase_resolved(q.clone(), &pos_deps) {
        ChaseOutcome::Chased(c) => c,
        ChaseOutcome::Unsatisfiable => return Ok(ContainmentReport::Contained),
    };
    if options.minimize {
        // Minimize to shed redundant atoms (and with them, existential
        // variables — the partition count's driver), then re-chase:
        // dropping atoms can break ind-closure, and Lemma A.3's argument
        // needs the representative instances to satisfy Σ. The re-chase
        // only re-adds ind-implied atoms over existing variables, so the
        // variable count never grows back.
        chased = match chase_resolved(crate::minimize::minimize(&chased), &pos_deps) {
            ChaseOutcome::Chased(c) => c,
            ChaseOutcome::Unsatisfiable => return Ok(ContainmentReport::Contained),
        };
    }

    let mut report = ContainmentReport::Contained;
    for_each_valuation(&chased, &mut |theta| {
        C_CONTAIN_VALUATIONS.incr();
        let inst = canonical_instance(&chased, theta);
        if !fds_hold(&inst, &pos_deps) {
            return true; // unrealizable pattern; skip
        }
        let s = canonical_tuple(&chased, theta);
        let covered = big
            .disjuncts()
            .iter()
            .any(|qp| tuple_in_query(qp, &s, &inst));
        if covered {
            true
        } else {
            report = ContainmentReport::NotContained {
                witness: inst,
                tuple: s,
            };
            false
        }
    });
    Ok(report)
}

/// Decide `P ⊆_Σ Q` for positive `P` (disjunct-wise, per Sagiv–Yannakakis:
/// `P ⊆ Q` iff every disjunct of `P` is contained in `Q`).
///
/// The per-disjunct tests are independent and run in parallel
/// (`receivers_rt`); the reported counterexample is the one the
/// sequential scan would find (lowest disjunct index).
pub fn positive_contained_under(
    p: &PositiveQuery,
    q: &PositiveQuery,
    deps: &[Dependency],
    ctx: &SchemaCtx,
) -> Result<ContainmentReport> {
    let failure = receivers_rt::par_find_map_first(p.disjuncts(), |d| {
        match contained_under(d, q, deps, ctx) {
            Err(e) => Some(Err(e)),
            Ok(r) if !r.holds() => Some(Ok(r)),
            Ok(_) => None,
        }
    });
    match failure {
        Some(Err(e)) => Err(e),
        Some(Ok(r)) => Ok(r),
        None => Ok(ContainmentReport::Contained),
    }
}

/// Decide `P ≡_Σ Q` (both containments, checked concurrently).
pub fn equivalent_under(
    p: &PositiveQuery,
    q: &PositiveQuery,
    deps: &[Dependency],
    ctx: &SchemaCtx,
) -> Result<bool> {
    let (fwd, bwd) = receivers_rt::par_join(
        || positive_contained_under(p, q, deps, ctx),
        || positive_contained_under(q, p, deps, ctx),
    );
    Ok(fwd?.holds() && bwd?.holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;
    use receivers_objectbase::examples::beer_schema;
    use receivers_relalg::deps::{object_base_dependencies, singleton_deps, AtomRel};
    use receivers_relalg::expr::RelName;
    use receivers_relalg::typecheck::ParamSchemas;
    use receivers_relalg::RelSchema;

    fn setup() -> (receivers_objectbase::examples::BeerSchema, SchemaCtx) {
        let s = beer_schema();
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
        (s, ctx)
    }

    fn freq_query(
        s: &receivers_objectbase::examples::BeerSchema,
        ctx: &SchemaCtx,
    ) -> ConjunctiveQuery {
        let mut b = ConjunctiveQuery::builder(ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![bar]);
        b.build().unwrap()
    }

    /// Without the inclusion dependencies, `π_Bar(frequents)` is *not*
    /// contained in the class query `Bar(x)`; with them it is — the
    /// textbook demonstration that containment must be judged over
    /// object-base instances only (Section 5.1).
    #[test]
    fn dependencies_change_the_verdict() {
        let (s, ctx) = setup();
        let q = freq_query(&s, &ctx);

        let mut b = ConjunctiveQuery::builder(&ctx);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Class(s.bar)), vec![bar])
            .unwrap();
        b.summary(vec![bar]);
        let bar_class = b.build().unwrap();
        let big = PositiveQuery::new(vec![s.bar], vec![bar_class]).unwrap();

        let without = contained_under(&q, &big, &[], &ctx).unwrap();
        assert!(!without.holds());
        let deps = object_base_dependencies(&s.schema);
        let with = contained_under(&q, &big, &deps, &ctx).unwrap();
        assert!(with.holds());
    }

    /// Union on the right: `q ⊆ q₁ ∪ q₂` where only the union covers `q`.
    #[test]
    fn union_covers_by_cases() {
        let (s, ctx) = setup();
        // q(d) ← frequents(d, bar): all drinkers frequenting some bar.
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![d]);
        let q = b.build().unwrap();

        // q1(d) ← frequents(d,b1) ∧ frequents(d,b2) ∧ b1≠b2  (≥2 bars)
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let b1 = b.var(s.bar);
        let b2 = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b1])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b2])
            .unwrap();
        b.neq(b1, b2).unwrap();
        b.summary(vec![d]);
        let at_least_two = b.build().unwrap();

        // q2(d) ← frequents(d, b): trivial cover.
        let trivial = {
            let mut b = ConjunctiveQuery::builder(&ctx);
            let d = b.var(s.drinker);
            let bar = b.var(s.bar);
            b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
                .unwrap();
            b.summary(vec![d]);
            b.build().unwrap()
        };

        // q ⊄ at_least_two alone …
        let only_two = PositiveQuery::new(vec![s.drinker], vec![at_least_two.clone()]).unwrap();
        assert!(!contained_under(&q, &only_two, &[], &ctx).unwrap().holds());
        // … but q ⊆ at_least_two ∪ trivial.
        let both = PositiveQuery::new(vec![s.drinker], vec![at_least_two, trivial]).unwrap();
        assert!(contained_under(&q, &both, &[], &ctx).unwrap().holds());
    }

    /// Klug's phenomenon: with non-equalities, containment is *not*
    /// decided by the single canonical instance. `q(d) ← f(d,b1) ∧ f(d,b2)`
    /// (two not-necessarily-distinct bars) is contained in itself plus is
    /// NOT contained in the variant requiring `b1 ≠ b2`, even though the
    /// identity canonical instance of `q` admits the ≠-variant.
    #[test]
    fn representative_set_catches_collapsing_valuations() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let b1 = b.var(s.bar);
        let b2 = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b1])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b2])
            .unwrap();
        b.summary(vec![d]);
        let loose = b.build().unwrap();

        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let b1 = b.var(s.bar);
        let b2 = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b1])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b2])
            .unwrap();
        b.neq(b1, b2).unwrap();
        b.summary(vec![d]);
        let strict = b.build().unwrap();

        // On the identity canonical instance of `loose`, `strict` matches
        // (b1, b2 distinct constants) — the naive Chandra–Merlin test
        // would wrongly report containment. The representative set
        // includes the collapsed valuation b1 = b2, which `strict` cannot
        // match.
        let big = PositiveQuery::new(vec![s.drinker], vec![strict.clone()]).unwrap();
        let verdict = contained_under(&loose, &big, &[], &ctx).unwrap();
        assert!(!verdict.holds());
        // The converse *does* hold: strict ⊆ loose.
        let big_loose = PositiveQuery::new(vec![s.drinker], vec![loose]).unwrap();
        assert!(contained_under(&strict, &big_loose, &[], &ctx)
            .unwrap()
            .holds());
    }

    /// Singleton fds make `self(x) ∧ self(y) ∧ x≠y` unsatisfiable, so it
    /// is contained in the empty query.
    #[test]
    fn unsatisfiable_is_contained_in_empty() {
        let (s, ctx0) = setup();
        let mut params = ParamSchemas::new();
        params.insert("self".to_owned(), RelSchema::unary("self", s.drinker));
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&ctx0.schema), params);
        let deps = singleton_deps("self", &["self".to_owned()]);

        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        b.atom(AtomRel::Param("self".to_owned()), vec![d1]).unwrap();
        b.atom(AtomRel::Param("self".to_owned()), vec![d2]).unwrap();
        b.neq(d1, d2).unwrap();
        b.summary(vec![]);
        let q = b.build().unwrap();
        let empty = PositiveQuery::new(vec![], vec![]).unwrap();
        assert!(contained_under(&q, &empty, &deps, &ctx).unwrap().holds());
        // Without the fd, it is satisfiable and not contained in ∅.
        assert!(!contained_under(&q, &empty, &[], &ctx).unwrap().holds());
    }

    /// fd filtering of representative instances: under fd `self: ∅→self`,
    /// the pattern placing two distinct values in `self` is skipped, so
    /// `self(x) ∧ self(y)` with summary `(x,y)` IS contained in the
    /// diagonal query `self(x)` with summary `(x,x)`.
    #[test]
    fn fd_filter_on_representative_instances() {
        let (s, ctx0) = setup();
        let mut params = ParamSchemas::new();
        params.insert("self".to_owned(), RelSchema::unary("self", s.drinker));
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&ctx0.schema), params);
        let deps = singleton_deps("self", &["self".to_owned()]);

        let mut b = ConjunctiveQuery::builder(&ctx);
        let x = b.var(s.drinker);
        let y = b.var(s.drinker);
        b.atom(AtomRel::Param("self".to_owned()), vec![x]).unwrap();
        b.atom(AtomRel::Param("self".to_owned()), vec![y]).unwrap();
        b.summary(vec![x, y]);
        let pair = b.build().unwrap();

        let mut b = ConjunctiveQuery::builder(&ctx);
        let x = b.var(s.drinker);
        b.atom(AtomRel::Param("self".to_owned()), vec![x]).unwrap();
        b.summary(vec![x, x]);
        let diag = b.build().unwrap();

        let big = PositiveQuery::new(vec![s.drinker, s.drinker], vec![diag]).unwrap();
        assert!(contained_under(&pair, &big, &deps, &ctx).unwrap().holds());
        assert!(!contained_under(&pair, &big, &[], &ctx).unwrap().holds());
    }

    /// Footnote 1's single-valued properties as fds: a query demanding
    /// two *distinct* frequented bars is unsatisfiable once `frequents`
    /// is declared single-valued, hence contained in the empty query.
    #[test]
    fn single_valued_fd_kills_multi_value_patterns() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let b1 = b.var(s.bar);
        let b2 = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b1])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, b2])
            .unwrap();
        b.neq(b1, b2).unwrap();
        b.summary(vec![d]);
        let two_bars = b.build().unwrap();

        let empty = PositiveQuery::new(vec![s.drinker], vec![]).unwrap();
        let sv = vec![receivers_relalg::deps::single_valued_dep(
            &s.schema,
            s.frequents,
        )];
        assert!(contained_under(&two_bars, &empty, &sv, &ctx)
            .unwrap()
            .holds());
        assert!(!contained_under(&two_bars, &empty, &[], &ctx)
            .unwrap()
            .holds());
    }

    #[test]
    fn equivalence_is_symmetric_containment() {
        let (s, ctx) = setup();
        let q = freq_query(&s, &ctx);
        let p1 = PositiveQuery::new(vec![s.bar], vec![q.clone(), q.clone()]).unwrap();
        let p2 = PositiveQuery::new(vec![s.bar], vec![q]).unwrap();
        assert!(equivalent_under(&p1, &p2, &[], &ctx).unwrap());
    }
}
