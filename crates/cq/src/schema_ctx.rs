//! The relational context against which queries are typed: the base
//! relations of an object-base schema plus declared parameter relations.

use std::sync::Arc;

use receivers_objectbase::Schema;
use receivers_relalg::database::base_schema;
use receivers_relalg::deps::AtomRel;
use receivers_relalg::typecheck::ParamSchemas;
use receivers_relalg::{Expr, RelSchema};

use crate::error::{CqError, Result};

/// Everything needed to resolve an [`AtomRel`] to its relation scheme.
#[derive(Debug, Clone)]
pub struct SchemaCtx {
    /// The object-base schema (base relations per Section 5.1).
    pub schema: Arc<Schema>,
    /// Declared parameter relations (`self`, `arg1`, primed copies, …).
    pub params: ParamSchemas,
}

impl SchemaCtx {
    /// Build a context.
    pub fn new(schema: Arc<Schema>, params: ParamSchemas) -> Self {
        Self { schema, params }
    }

    /// The scheme of a relation symbol.
    pub fn rel_schema(&self, rel: &AtomRel) -> Result<RelSchema> {
        match rel {
            AtomRel::Base(r) => Ok(base_schema(&self.schema, *r)),
            AtomRel::Param(p) => self.params.get(p).cloned().ok_or_else(|| {
                CqError::Algebra(receivers_relalg::RelAlgError::UnknownParam(p.clone()))
            }),
        }
    }

    /// Infer the scheme of an algebra expression in this context.
    pub fn infer(&self, expr: &Expr) -> Result<RelSchema> {
        receivers_relalg::infer_schema(expr, &self.schema, &self.params).map_err(CqError::from)
    }
}
