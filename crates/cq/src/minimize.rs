//! Conjunctive-query minimization (Chandra–Merlin): computing the core of
//! an equality CQ by repeatedly removing atoms that a homomorphism into
//! the remainder makes redundant.
//!
//! Minimization shrinks the variable count of chased queries and hence
//! the representative-set enumeration of the containment test — the
//! dominant cost of the Theorem 5.12 decision procedure. For queries
//! *with* non-equalities only a restricted rule is sound (the folding
//! homomorphism must preserve every non-equality), which this
//! implementation enforces.

use std::collections::BTreeMap;

use crate::eval::{canonical_instance, tuple_in_query};
use crate::partition::identity_valuation;
use crate::query::{ConjunctiveQuery, Var};

/// Minimize a conjunctive query: returns an equivalent query with a
/// minimal set of atoms (the *core* for equality queries).
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let Some(next) = try_drop_one_atom(&current) else {
            return current;
        };
        current = next;
    }
}

/// Try to remove one atom: the query without the atom must still map
/// homomorphically *onto* itself in a way that avoids the removed atom —
/// equivalently, the full query must have a homomorphism into the reduced
/// one fixing the summary and preserving the non-equalities.
fn try_drop_one_atom(q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
    let atoms: Vec<_> = q.atoms().cloned().collect();
    if atoms.len() <= 1 {
        return None;
    }
    for drop_idx in 0..atoms.len() {
        let reduced_atoms: std::collections::BTreeSet<_> = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx)
            .map(|(_, a)| a.clone())
            .collect();
        // Safety: every summary/neq variable must still occur in an atom.
        let mut vars_in_atoms = std::collections::BTreeSet::new();
        for a in &reduced_atoms {
            vars_in_atoms.extend(a.args.iter().copied());
        }
        let needed: Vec<Var> = q
            .summary()
            .iter()
            .copied()
            .chain(q.neqs().flat_map(|(a, b)| [a, b]))
            .collect();
        if needed.iter().any(|v| !vars_in_atoms.contains(v)) {
            continue;
        }
        let reduced = ConjunctiveQuery::from_parts(
            (0..q.var_count())
                .map(|i| q.domain(Var(i as u32)))
                .collect(),
            q.summary().to_vec(),
            reduced_atoms,
            q.neqs().collect(),
        );
        // reduced ⊆ q always (fewer conjuncts is a superset of answers —
        // wait, *more* answers): we need q ≡ reduced, and reduced has at
        // most q's constraints, so q ⊆ reduced holds trivially. The
        // non-trivial direction is reduced ⊆ q: the magic tuple of
        // `reduced` must be an answer of q on reduced's canonical
        // instance, with the non-equality pattern of `reduced` respected.
        let theta = identity_valuation(&reduced);
        let inst = canonical_instance(&reduced, &theta);
        let magic: Vec<_> = q.summary().iter().map(|v| theta[v]).collect();
        if tuple_in_query(q, &magic, &inst) {
            // Compact via the identity substitution.
            return reduced.substitute(&BTreeMap::new());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::exists_homomorphism;
    use crate::schema_ctx::SchemaCtx;
    use receivers_objectbase::examples::beer_schema;
    use receivers_relalg::deps::AtomRel;
    use receivers_relalg::expr::RelName;
    use receivers_relalg::typecheck::ParamSchemas;

    fn setup() -> (receivers_objectbase::examples::BeerSchema, SchemaCtx) {
        let s = beer_schema();
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
        (s, ctx)
    }

    /// `q(b) ← f(d1,b) ∧ f(d2,b)` folds to a single atom (d2 ↦ d1).
    #[test]
    fn redundant_atom_removed() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d1, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d2, bar])
            .unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.atom_count(), 1);
        assert_eq!(m.var_count(), 2);
        // Equivalence in both directions.
        assert!(exists_homomorphism(&q, &m));
        assert!(exists_homomorphism(&m, &q));
    }

    /// With `d1 ≠ d2` the fold is blocked: both atoms are genuinely
    /// needed.
    #[test]
    fn neq_blocks_folding() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d1, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d2, bar])
            .unwrap();
        b.neq(d1, d2).unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        assert_eq!(minimize(&q).atom_count(), 2);
    }

    /// Distinguished variables cannot be folded away: `q(d1,d2)` with two
    /// atoms stays binary even though the atoms are isomorphic.
    #[test]
    fn summary_variables_are_pinned() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d1, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d2, bar])
            .unwrap();
        b.summary(vec![d1, d2]);
        let q = b.build().unwrap();
        assert_eq!(minimize(&q).atom_count(), 2);
    }

    /// A path with a redundant shortcut: `f(d,b) ∧ s(b,x) ∧ s(b,y)` with
    /// only `x` in the summary drops the `y` atom.
    #[test]
    fn existential_branch_dropped() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let x = b.var(s.beer);
        let y = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, x])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, y])
            .unwrap();
        b.summary(vec![x]);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.atom_count(), 2);
        assert_eq!(m.var_count(), 3);
    }

    /// Minimization is idempotent.
    #[test]
    fn idempotent() {
        let (s, ctx) = setup();
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        assert_eq!(m1, m2);
    }
}
