#![warn(missing_docs)]

//! # receivers-cq
//!
//! The conjunctive-query machinery of Appendix A of *Applying an Update
//! Method to a Set of Receivers*: the decidability engine behind
//! Theorem 5.12 (order independence of positive algebraic update methods).
//!
//! Contents:
//!
//! * [`query`] — typed conjunctive queries with non-equalities and positive
//!   queries (finite unions of CQs), following the appendix's `s,d,u,v,c,n`
//!   presentation;
//! * [`hom`] — the Chandra–Merlin homomorphism test for equality CQs;
//! * [`chase`] — the typed chase with functional and *full* inclusion
//!   dependencies (fd rule and ind rule of the appendix), including the
//!   `⊥` unsatisfiability outcome;
//! * [`partition`] — typed partition enumeration (restricted-growth
//!   strings, factored per domain) used to build Klug's representative
//!   sets;
//! * [`eval`] — evaluation of CQs over canonical instances ("does the
//!   magic tuple `s` belong to `q'(I)`?");
//! * [`contain`] — containment and equivalence of positive queries under
//!   functional and full inclusion dependencies (Lemma 5.13, via
//!   Theorem A.1 and Lemmas A.2/A.3);
//! * [`compile`] — compilation of *positive* relational algebra
//!   expressions into positive queries, making Lemma 5.13 executable on
//!   the expressions produced by the Theorem 5.6 reduction.
//!
//! ## Two deliberate deviations from the appendix's presentation
//!
//! 1. **Summaries may repeat variables.** The appendix requires the
//!    summary to list *distinct* distinguished variables; compiled algebra
//!    expressions (e.g. `π_{C,a}(σ_{C=a}(Ca))`) can produce repeated
//!    columns, so our summaries are arbitrary variable tuples. Every
//!    algorithm below is insensitive to this relaxation.
//! 2. **Representative instances are filtered by the dependencies.** After
//!    chasing `q`, a partition of its variables may still violate a
//!    functional dependency (the chase only removes *syntactic*
//!    violations). Such partitions cannot be the kernel of a valuation
//!    into a Σ-satisfying instance, so they are skipped; the surviving
//!    representative instances all satisfy Σ, which is what the proof of
//!    Lemma A.3 requires. (Full inclusion dependencies survive every
//!    valuation because they introduce no fresh variables.)

pub mod chase;
pub mod compile;
pub mod contain;
pub mod error;
pub mod eval;
pub mod hom;
pub mod minimize;
pub mod partition;
pub mod query;
pub mod schema_ctx;

pub use chase::{chase, ChaseOutcome};
pub use compile::compile_positive;
pub use contain::{contained_under, equivalent_under, ContainmentReport};
pub use error::{CqError, Result};
pub use hom::exists_homomorphism;
pub use minimize::minimize;
pub use query::{Atom, ConjunctiveQuery, PositiveQuery, Var};
pub use schema_ctx::SchemaCtx;
