//! The typed chase with functional and full inclusion dependencies
//! (Appendix A).
//!
//! The chase repeatedly applies two rules until no rule is applicable:
//!
//! * **fd rule** — for `σ = R : X → A` and conjuncts `R(u), R(v)` with
//!   `u[X] = v[X]` and `u[A] ≠ v[A]`: let `x` be the `<`-least of
//!   `{u[A], v[A]}` and `y` the other; substitute `y ↦ x` throughout. When
//!   `x ≠ y ∈ n(q)` the result is `⊥` (unsatisfiable).
//! * **ind rule** — for `σ = R[X] ⊆ S[Y]` (full: `Y` is exactly the scheme
//!   of `S`) and a conjunct `R(u)`: add the conjunct `S(u[X])` when absent.
//!
//! With only fds and *full* inds the process terminates: fd steps strictly
//! decrease the number of distinct variables, and ind steps add atoms over
//! existing variables only, of which there are finitely many. The result is
//! independent of rule order (Church–Rosser; see Lemma A.2 and the
//! references there), and we exploit this by applying rules in a fixed
//! deterministic sweep.

use std::collections::{BTreeMap, BTreeSet};

use receivers_obs as obs;
use receivers_relalg::deps::{AtomRel, Dependency, FunctionalDep, InclusionDep};

use crate::error::{CqError, Result};
use crate::query::{Atom, ConjunctiveQuery, Var};
use crate::schema_ctx::SchemaCtx;

/// The outcome of chasing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The chased, Σ-closed query.
    Chased(ConjunctiveQuery),
    /// `⊥`: the query is unsatisfiable on instances satisfying Σ.
    Unsatisfiable,
}

impl ChaseOutcome {
    /// The chased query, if satisfiable.
    pub fn query(&self) -> Option<&ConjunctiveQuery> {
        match self {
            ChaseOutcome::Chased(q) => Some(q),
            ChaseOutcome::Unsatisfiable => None,
        }
    }

    /// Whether the outcome is `⊥`.
    pub fn is_unsatisfiable(&self) -> bool {
        matches!(self, ChaseOutcome::Unsatisfiable)
    }
}

/// Positional form of a dependency, resolved against the relation schemes.
#[derive(Debug, Clone)]
pub(crate) enum PosDep {
    Fd {
        rel: AtomRel,
        lhs: Vec<usize>,
        rhs: usize,
    },
    Ind {
        from: AtomRel,
        from_pos: Vec<usize>,
        to: AtomRel,
    },
}

/// Resolve attribute names to positions.
pub(crate) fn resolve_deps(deps: &[Dependency], ctx: &SchemaCtx) -> Result<Vec<PosDep>> {
    deps.iter()
        .map(|d| match d {
            Dependency::Fd(FunctionalDep { rel, lhs, rhs }) => {
                let scheme = ctx.rel_schema(rel)?;
                let lhs = lhs
                    .iter()
                    .map(|a| scheme.position(a).map_err(CqError::from))
                    .collect::<Result<Vec<_>>>()?;
                let rhs = scheme.position(rhs)?;
                Ok(PosDep::Fd {
                    rel: rel.clone(),
                    lhs,
                    rhs,
                })
            }
            Dependency::Ind(InclusionDep {
                from,
                from_attrs,
                to,
            }) => {
                let from_scheme = ctx.rel_schema(from)?;
                let to_scheme = ctx.rel_schema(to)?;
                if from_attrs.len() != to_scheme.arity() {
                    return Err(CqError::BadDependency(format!(
                        "inclusion dependency projects {} attributes but target has arity {} \
                         (only *full* inclusion dependencies are supported)",
                        from_attrs.len(),
                        to_scheme.arity()
                    )));
                }
                let from_pos = from_attrs
                    .iter()
                    .map(|a| from_scheme.position(a).map_err(CqError::from))
                    .collect::<Result<Vec<_>>>()?;
                // Typing check: projected domains must match the target's.
                for (&p, (_, dom)) in from_pos.iter().zip(to_scheme.columns()) {
                    if from_scheme.columns()[p].1 != *dom {
                        return Err(CqError::BadDependency(
                            "inclusion dependency crosses domains".to_owned(),
                        ));
                    }
                }
                Ok(PosDep::Ind {
                    from: from.clone(),
                    from_pos,
                    to: to.clone(),
                })
            }
        })
        .collect()
}

/// Chase `q` with respect to `deps` (Lemma A.2: `q ≡_Σ chase_Σ(q)`).
pub fn chase(q: &ConjunctiveQuery, deps: &[Dependency], ctx: &SchemaCtx) -> Result<ChaseOutcome> {
    let pos = resolve_deps(deps, ctx)?;
    Ok(chase_resolved(q.clone(), &pos))
}

/// Baseline chase kept for the perf snapshot (`BENCH_1.json`): each sweep
/// rescans the full atom list per dependency instead of grouping atoms by
/// relation once. Semantically identical to [`chase`] (the chase result is
/// rule-order independent); only the sweep cost differs.
#[doc(hidden)]
pub fn chase_naive(
    q: &ConjunctiveQuery,
    deps: &[Dependency],
    ctx: &SchemaCtx,
) -> Result<ChaseOutcome> {
    let pos = resolve_deps(deps, ctx)?;
    Ok(chase_resolved_naive(q.clone(), &pos))
}

fn chase_resolved_naive(mut q: ConjunctiveQuery, deps: &[PosDep]) -> ChaseOutcome {
    loop {
        let mut fd_step: Option<(Var, Var)> = None;
        'fd: for dep in deps {
            let PosDep::Fd { rel, lhs, rhs } = dep else {
                continue;
            };
            let atoms: Vec<&Atom> = q.atoms().filter(|a| &a.rel == rel).collect();
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    let (u, v) = (&atoms[i].args, &atoms[j].args);
                    if lhs.iter().all(|&p| u[p] == v[p]) && u[*rhs] != v[*rhs] {
                        let (a, b) = (u[*rhs], v[*rhs]);
                        let (keep, drop) = if q.var_less(a, b) { (a, b) } else { (b, a) };
                        fd_step = Some((drop, keep));
                        break 'fd;
                    }
                }
            }
        }
        if let Some((drop, keep)) = fd_step {
            let mut map = BTreeMap::new();
            map.insert(drop, keep);
            match q.substitute(&map) {
                Some(next) => {
                    q = next;
                    continue;
                }
                None => return ChaseOutcome::Unsatisfiable,
            }
        }

        let mut additions: BTreeSet<Atom> = BTreeSet::new();
        for dep in deps {
            let PosDep::Ind { from, from_pos, to } = dep else {
                continue;
            };
            let sources: Vec<&Atom> = q.atoms().filter(|a| &a.rel == from).collect();
            for at in sources {
                let args: Vec<Var> = from_pos.iter().map(|&p| at.args[p]).collect();
                let candidate = Atom {
                    rel: to.clone(),
                    args,
                };
                if !q.atoms().any(|a| a == &candidate) {
                    additions.insert(candidate);
                }
            }
        }
        if additions.is_empty() {
            return ChaseOutcome::Chased(q);
        }
        let mut atoms: BTreeSet<Atom> = q.atoms().cloned().collect();
        atoms.extend(additions);
        q = ConjunctiveQuery::from_parts(
            (0..q.var_count())
                .map(|i| q.domain(Var(i as u32)))
                .collect(),
            q.summary().to_vec(),
            atoms,
            q.neqs().collect(),
        );
    }
}

obs::counter!(C_CHASE_RUNS, "cq.chase.runs");
obs::counter!(C_CHASE_SWEEPS, "cq.chase.sweeps");
obs::counter!(C_CHASE_FD_STEPS, "cq.chase.fd_steps");
obs::counter!(C_CHASE_TUPLES_ADDED, "cq.chase.tuples_added");
obs::histogram!(H_NEW_TUPLES_PER_SWEEP, "cq.chase.new_tuples_per_sweep");

pub(crate) fn chase_resolved(mut q: ConjunctiveQuery, deps: &[PosDep]) -> ChaseOutcome {
    C_CHASE_RUNS.incr();
    let _span = obs::span("cq.chase");
    loop {
        C_CHASE_SWEEPS.incr();
        // Group atoms by relation once per sweep: both rules only ever
        // inspect same-relation atoms, so one pass here replaces a full
        // atom scan per dependency.
        let mut by_rel: BTreeMap<&AtomRel, Vec<&Atom>> = BTreeMap::new();
        for a in q.atoms() {
            by_rel.entry(&a.rel).or_default().push(a);
        }

        // --- fd sweep: find one applicable fd step. ---
        let mut fd_step: Option<(Var, Var)> = None;
        'fd: for dep in deps {
            let PosDep::Fd { rel, lhs, rhs } = dep else {
                continue;
            };
            let atoms: &[&Atom] = by_rel.get(rel).map_or(&[], Vec::as_slice);
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    let (u, v) = (&atoms[i].args, &atoms[j].args);
                    if lhs.iter().all(|&p| u[p] == v[p]) && u[*rhs] != v[*rhs] {
                        let (a, b) = (u[*rhs], v[*rhs]);
                        let (keep, drop) = if q.var_less(a, b) { (a, b) } else { (b, a) };
                        fd_step = Some((drop, keep));
                        break 'fd;
                    }
                }
            }
        }
        if let Some((drop, keep)) = fd_step {
            C_CHASE_FD_STEPS.incr();
            let mut map = BTreeMap::new();
            map.insert(drop, keep);
            match q.substitute(&map) {
                Some(next) => {
                    q = next;
                    continue;
                }
                None => return ChaseOutcome::Unsatisfiable,
            }
        }

        // --- ind sweep: add all missing target atoms at once. ---
        let present: BTreeSet<&Atom> = q.atoms().collect();
        let mut additions: BTreeSet<Atom> = BTreeSet::new();
        for dep in deps {
            let PosDep::Ind { from, from_pos, to } = dep else {
                continue;
            };
            for at in by_rel.get(from).map_or(&[] as &[&Atom], Vec::as_slice) {
                let args: Vec<Var> = from_pos.iter().map(|&p| at.args[p]).collect();
                let candidate = Atom {
                    rel: to.clone(),
                    args,
                };
                if !present.contains(&candidate) {
                    additions.insert(candidate);
                }
            }
        }
        if additions.is_empty() {
            return ChaseOutcome::Chased(q);
        }
        C_CHASE_TUPLES_ADDED.add(additions.len() as u64);
        H_NEW_TUPLES_PER_SWEEP.record(additions.len() as u64);
        let mut atoms: BTreeSet<Atom> = q.atoms().cloned().collect();
        atoms.extend(additions);
        q = ConjunctiveQuery::from_parts(
            (0..q.var_count())
                .map(|i| q.domain(Var(i as u32)))
                .collect(),
            q.summary().to_vec(),
            atoms,
            q.neqs().collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;
    use receivers_relalg::deps::object_base_dependencies;
    use receivers_relalg::expr::RelName;
    use receivers_relalg::typecheck::ParamSchemas;
    use receivers_relalg::RelSchema;

    fn base_ctx() -> (receivers_objectbase::examples::BeerSchema, SchemaCtx) {
        let s = beer_schema();
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
        (s, ctx)
    }

    #[test]
    fn ind_rule_adds_class_atoms() {
        let (s, ctx) = base_ctx();
        let deps = object_base_dependencies(&s.schema);
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        assert_eq!(q.atom_count(), 1);
        let chased = chase(&q, &deps, &ctx).unwrap();
        let cq = chased.query().unwrap();
        // frequents(d, bar) forces Drinker(d) and Bar(bar).
        assert_eq!(cq.atom_count(), 3);
    }

    #[test]
    fn fd_rule_merges_variables() {
        let (s, ctx0) = base_ctx();
        // Treat a unary parameter `self` as functionally determined:
        // ∅ → self forces all self-atom variables to coincide.
        let mut params = ParamSchemas::new();
        params.insert("self".to_owned(), RelSchema::unary("self", s.drinker));
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&ctx0.schema), params);
        let deps = receivers_relalg::deps::singleton_deps("self", &["self".to_owned()]);

        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        b.atom(AtomRel::Param("self".to_owned()), vec![d1]).unwrap();
        b.atom(AtomRel::Param("self".to_owned()), vec![d2]).unwrap();
        b.summary(vec![d1, d2]);
        let q = b.build().unwrap();
        let chased = chase(&q, &deps, &ctx).unwrap();
        let cq = chased.query().unwrap();
        assert_eq!(cq.var_count(), 1);
        assert_eq!(cq.summary()[0], cq.summary()[1]);
    }

    #[test]
    fn fd_conflicting_with_neq_is_unsatisfiable() {
        let (s, ctx0) = base_ctx();
        let mut params = ParamSchemas::new();
        params.insert("self".to_owned(), RelSchema::unary("self", s.drinker));
        let ctx = SchemaCtx::new(std::sync::Arc::clone(&ctx0.schema), params);
        let deps = receivers_relalg::deps::singleton_deps("self", &["self".to_owned()]);

        let mut b = ConjunctiveQuery::builder(&ctx);
        let d1 = b.var(s.drinker);
        let d2 = b.var(s.drinker);
        b.atom(AtomRel::Param("self".to_owned()), vec![d1]).unwrap();
        b.atom(AtomRel::Param("self".to_owned()), vec![d2]).unwrap();
        b.neq(d1, d2).unwrap();
        b.summary(vec![]);
        let q = b.build().unwrap();
        assert!(chase(&q, &deps, &ctx).unwrap().is_unsatisfiable());
    }

    #[test]
    fn chase_is_idempotent() {
        let (s, ctx) = base_ctx();
        let deps = object_base_dependencies(&s.schema);
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let beer = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, beer])
            .unwrap();
        b.summary(vec![beer]);
        let q = b.build().unwrap();
        let once = chase(&q, &deps, &ctx).unwrap();
        let q1 = once.query().unwrap().clone();
        let twice = chase(&q1, &deps, &ctx).unwrap();
        assert_eq!(&q1, twice.query().unwrap());
    }

    #[test]
    fn naive_baseline_agrees_with_indexed_chase() {
        let (s, ctx) = base_ctx();
        let deps = object_base_dependencies(&s.schema);
        let mut b = ConjunctiveQuery::builder(&ctx);
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let beer = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, beer])
            .unwrap();
        b.summary(vec![beer]);
        let q = b.build().unwrap();
        assert_eq!(
            chase(&q, &deps, &ctx).unwrap(),
            chase_naive(&q, &deps, &ctx).unwrap()
        );
    }

    #[test]
    fn non_full_inds_are_rejected() {
        let (s, ctx) = base_ctx();
        let bad = Dependency::Ind(InclusionDep {
            from: AtomRel::Base(RelName::Class(s.bar)),
            from_attrs: vec!["Bar".to_owned()],
            to: AtomRel::Base(RelName::Prop(s.serves)), // binary target: not full
        });
        let mut b = ConjunctiveQuery::builder(&ctx);
        let bar = b.var(s.bar);
        b.atom(AtomRel::Base(RelName::Class(s.bar)), vec![bar])
            .unwrap();
        b.summary(vec![bar]);
        let q = b.build().unwrap();
        assert!(matches!(
            chase(&q, &[bad], &ctx),
            Err(CqError::BadDependency(_))
        ));
    }
}
