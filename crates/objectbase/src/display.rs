//! Rendering of instances: Graphviz DOT output and compact textual diffs.
//!
//! This is how the repository "regenerates" the paper's Figures 1–5: each
//! figure constructor in [`crate::examples`] can be rendered to DOT and the
//! integration tests compare the rendered structure against the figure as
//! printed in the paper.

use std::fmt::Write as _;

use crate::instance::Instance;
use crate::partial::PartialInstance;

/// Render an instance as a Graphviz `digraph`.
///
/// Nodes are named `Class_index` (e.g. `Drinker_1`), matching the paper's
/// figure conventions (`Drinker₁`, `Bar₂`, …); edges carry the property
/// name as label.
pub fn to_dot(instance: &Instance, graph_name: &str) -> String {
    let schema = instance.schema();
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for o in instance.nodes() {
        let _ = writeln!(
            out,
            "  {}_{} [label=\"{}{}\"];",
            schema.class_name(o.class),
            o.index,
            schema.class_name(o.class),
            o.index,
        );
    }
    for e in instance.edges() {
        let _ = writeln!(
            out,
            "  {}_{} -> {}_{} [label=\"{}\"];",
            schema.class_name(e.src.class),
            e.src.index,
            schema.class_name(e.dst.class),
            e.dst.index,
            schema.prop_name(e.prop),
        );
    }
    out.push('}');
    out
}

/// A symmetric difference report between two graphs over the same schema,
/// listing items only in the left and only in the right operand. Useful in
/// test failure messages and the order-independence falsifiers.
pub fn diff(left: &PartialInstance, right: &PartialInstance) -> String {
    let schema = left.schema();
    let mut out = String::new();
    for item in left.items() {
        if !right.contains(&item) {
            let _ = writeln!(out, "- {}", item.display(schema));
        }
    }
    for item in right.items() {
        if !left.contains(&item) {
            let _ = writeln!(out, "+ {}", item.display(schema));
        }
    }
    if out.is_empty() {
        out.push_str("(identical)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;
    use crate::schema::Schema;
    use std::sync::Arc;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut b = Schema::builder();
        let d = b.class("Drinker").unwrap();
        let bar = b.class("Bar").unwrap();
        b.property(d, "frequents", bar).unwrap();
        let s = b.build();
        let f = s.prop("frequents").unwrap();
        let mut i = Instance::empty(Arc::clone(&s));
        let dr = Oid::new(d, 1);
        let b1 = Oid::new(bar, 1);
        i.add_object(dr);
        i.add_object(b1);
        i.link(dr, f, b1).unwrap();
        let dot = to_dot(&i, "fig");
        assert!(dot.contains("Drinker_1 -> Bar_1 [label=\"frequents\"]"));
        assert!(dot.starts_with("digraph fig {"));
    }

    #[test]
    fn diff_reports_both_sides() {
        let mut b = Schema::builder();
        let c = b.class("C").unwrap();
        let s = b.build();
        let mut x = Instance::empty(Arc::clone(&s));
        let mut y = Instance::empty(Arc::clone(&s));
        x.add_object(Oid::new(c, 0));
        y.add_object(Oid::new(c, 1));
        let report = diff(x.as_partial(), y.as_partial());
        assert!(report.contains("- C#0"));
        assert!(report.contains("+ C#1"));
        assert_eq!(diff(x.as_partial(), x.as_partial()), "(identical)");
    }
}
