//! Observer protocol for incremental views over an instance.
//!
//! A materialized view of an [`Instance`](crate::Instance) — e.g. the
//! relational encoding of Section 5.1 — costs `O(N + E)` to build from
//! scratch. The delta log of an [`InstanceTxn`](crate::InstanceTxn) already
//! names exactly the items a method application touched, so a view can
//! instead be maintained **edge-by-edge**: every logged [`DeltaOp`] is
//! forwarded to a [`DeltaObserver`] as it happens, and every undone op is
//! forwarded again during rollback, keeping the view bit-identical to a
//! fresh rebuild at all times — including after a mid-sequence failure.
//!
//! The trait lives here, in the data-model crate, so that downstream crates
//! (the relational layer maintains a `DatabaseView`) can implement it
//! without creating a dependency cycle. The crate itself ships only the
//! protocol and the trivial [`NullObserver`].

use crate::delta::DeltaOp;

/// A consumer of instance deltas, kept in lockstep with the instance by
/// [`InstanceTxn::begin_observed`](crate::InstanceTxn::begin_observed) and
/// [`undo_ops`](crate::delta::undo_ops).
///
/// Contract: `applied` is called exactly once per *effective* edit, after
/// the instance has been mutated; `undone` is called exactly once per
/// reversed edit, after the inverse has been applied to the instance, in
/// reverse application order. A maintained view that mirrors each call is
/// therefore always equal to a from-scratch rebuild of the current
/// instance.
pub trait DeltaObserver {
    /// An edit was applied to the observed instance.
    fn applied(&mut self, op: &DeltaOp);
    /// A previously applied edit was reversed (rollback path).
    fn undone(&mut self, op: &DeltaOp);
    /// The current notification burst — one transaction's commit or
    /// rollback, or one wholesale [`undo_ops`](crate::delta::undo_ops) —
    /// is complete. A batching observer consolidates its buffered
    /// notifications here; observers that mirror each call eagerly keep
    /// the default no-op. The instance is only readable alongside the
    /// observer *between* bursts (the transaction holds the observer
    /// mutably), so a view is allowed to be internally stale until this
    /// fires.
    fn batch_end(&mut self) {}
    /// A transaction **committed** with `ops` as its final delta log —
    /// fired by [`InstanceTxn::commit`](crate::InstanceTxn::commit) and
    /// [`InstanceTxn::commit_into`](crate::InstanceTxn::commit_into)
    /// immediately before the commit's [`Self::batch_end`]. Unlike
    /// `batch_end` this fires only on the commit path, never on
    /// rollback, and carries the whole surviving log — the hook a
    /// durability layer appends to its write-ahead log. Default no-op.
    fn batch_committed(&mut self, _ops: &[DeltaOp]) {}
}

/// An observer that ignores every delta; useful as a default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl DeltaObserver for NullObserver {
    fn applied(&mut self, _op: &DeltaOp) {}
    fn undone(&mut self, _op: &DeltaOp) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{undo_ops, InstanceTxn};
    use crate::examples::{beer_schema, figure2};
    use crate::item::Edge;

    /// Records the stream of notifications for assertion.
    #[derive(Default)]
    struct Recorder {
        applied: Vec<DeltaOp>,
        undone: Vec<DeltaOp>,
    }

    impl DeltaObserver for Recorder {
        fn applied(&mut self, op: &DeltaOp) {
            self.applied.push(*op);
        }
        fn undone(&mut self, op: &DeltaOp) {
            self.undone.push(*op);
        }
    }

    #[test]
    fn observer_sees_each_effective_edit_once() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut rec = Recorder::default();
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut rec);
        assert!(!txn.add_object(o.d1), "no-op edits are not notified");
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.commit();
        assert_eq!(
            rec.applied,
            vec![
                DeltaOp::RemovedEdge(Edge::new(o.d1, s.frequents, o.bar1)),
                DeltaOp::AddedNode(fresh),
                DeltaOp::AddedEdge(Edge::new(o.d1, s.frequents, fresh)),
            ]
        );
        assert!(rec.undone.is_empty());
    }

    #[test]
    fn rollback_notifies_undone_in_reverse_order() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut rec = Recorder::default();
        {
            let mut txn = InstanceTxn::begin_observed(&mut i, &mut rec);
            txn.remove_object_cascade(o.bar1);
            // Dropped without commit: rollback-on-drop must notify too.
        }
        assert_eq!(i, snapshot);
        let mut reversed: Vec<DeltaOp> = rec.applied.clone();
        reversed.reverse();
        assert_eq!(rec.undone, reversed);
    }

    #[test]
    fn commit_into_then_undo_ops_round_trips() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut rec = Recorder::default();
        let mut seq_log = Vec::new();
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut rec);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        txn.fresh_object(s.bar);
        txn.commit_into(&mut seq_log);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut rec);
        txn.remove_object_cascade(o.bar3);
        txn.commit_into(&mut seq_log);
        assert_ne!(i, snapshot);
        undo_ops(&mut i, &mut rec, &seq_log);
        assert_eq!(i, snapshot);
        assert_eq!(rec.undone.len(), rec.applied.len());
    }
}
