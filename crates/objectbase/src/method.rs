//! Update methods (Definition 2.6): computable functions mapping an
//! instance and a receiver to a new instance.
//!
//! At this most general level a method may *diverge* (the witness
//! constructions of Proposition 4.13 deliberately "go into an infinite
//! loop" on some inputs) or be *undefined* (e.g. the receiver is not a
//! receiver over the given instance). Both outcomes are reified in
//! [`MethodOutcome`] so that callers remain total.

use std::fmt;

use crate::instance::Instance;
use crate::receiver::{Receiver, Signature};

/// The result of applying an update method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodOutcome {
    /// Normal termination with the updated instance.
    Done(Instance),
    /// The method does not terminate on this input (reified divergence;
    /// see the Proposition 4.13 witnesses).
    Diverges,
    /// The application is undefined — typically the receiver is not a
    /// receiver over the instance (cf. footnote to Definition 3.1).
    Undefined(String),
}

impl MethodOutcome {
    /// The instance, if the method terminated normally.
    pub fn instance(&self) -> Option<&Instance> {
        match self {
            MethodOutcome::Done(i) => Some(i),
            _ => None,
        }
    }

    /// Unwrap the instance, panicking otherwise (test convenience).
    pub fn expect_done(self, msg: &str) -> Instance {
        match self {
            MethodOutcome::Done(i) => i,
            MethodOutcome::Diverges => panic!("{msg}: method diverged"),
            MethodOutcome::Undefined(why) => panic!("{msg}: undefined ({why})"),
        }
    }
}

impl fmt::Display for MethodOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodOutcome::Done(_) => write!(f, "done"),
            MethodOutcome::Diverges => write!(f, "⊥ (diverges)"),
            MethodOutcome::Undefined(why) => write!(f, "undefined: {why}"),
        }
    }
}

/// The result of an in-place application ([`UpdateMethod::apply_in_place`]):
/// [`MethodOutcome`] with the instance living in the caller's storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InPlaceOutcome {
    /// Normal termination; the passed instance now holds the result.
    Applied,
    /// The method does not terminate; the instance is unchanged.
    Diverges,
    /// The application is undefined; the instance is unchanged.
    Undefined(String),
}

impl InPlaceOutcome {
    /// `true` on [`InPlaceOutcome::Applied`].
    pub fn is_applied(&self) -> bool {
        matches!(self, InPlaceOutcome::Applied)
    }
}

/// An update method `M` of some type σ (Definition 2.6).
pub trait UpdateMethod {
    /// The method's signature σ.
    fn signature(&self) -> &Signature;

    /// Apply to `(I, t)`. Implementations should return
    /// [`MethodOutcome::Undefined`] when `t` is not a receiver of type σ
    /// over `I`.
    fn apply(&self, instance: &Instance, receiver: &Receiver) -> MethodOutcome;

    /// Apply to `(I, t)` by mutating `instance` directly.
    ///
    /// **Contract:** on a non-[`Applied`](InPlaceOutcome::Applied) outcome
    /// the instance must be left exactly as it was passed in. Sequential
    /// application ([`apply_sequence`]) relies on this to run a whole
    /// receiver sequence on one working copy instead of cloning per
    /// receiver.
    ///
    /// The default forwards to [`UpdateMethod::apply`] and moves the result
    /// in, which trivially satisfies the contract; methods with a cheap
    /// delta representation (notably algebraic methods, which touch only
    /// the receiving object's edges) should override it with an
    /// [`InstanceTxn`](crate::delta::InstanceTxn)-based edit costing
    /// `O(changed edges)`.
    ///
    /// [`apply_sequence`]: ../../receivers_core/sequential/fn.apply_sequence.html
    fn apply_in_place(&self, instance: &mut Instance, receiver: &Receiver) -> InPlaceOutcome {
        match self.apply(instance, receiver) {
            MethodOutcome::Done(next) => {
                *instance = next;
                InPlaceOutcome::Applied
            }
            MethodOutcome::Diverges => InPlaceOutcome::Diverges,
            MethodOutcome::Undefined(why) => InPlaceOutcome::Undefined(why),
        }
    }

    /// Apply to a whole receiver *sequence* `(I, t₁ … tₙ)` in order, by
    /// mutating `instance` directly (the `M_seq` of Definition 3.1 on the
    /// caller's storage).
    ///
    /// **Contract:** on a non-[`Applied`](InPlaceOutcome::Applied) outcome
    /// the instance must be restored exactly to the state it was passed in
    /// — i.e. *all* previously applied receivers of the sequence are undone
    /// too, not just the failing one.
    ///
    /// The default loops [`UpdateMethod::apply_in_place`] over a snapshot
    /// guard. Methods that evaluate against a derived structure (algebraic
    /// methods evaluate relational algebra over the Section 5.1 encoding)
    /// should override this with a build-once, maintain-incrementally
    /// strategy: one `O(N + E)` view construction per *sequence* instead of
    /// per *receiver*, and an
    /// [`undo_ops`](crate::delta::undo_ops)-based wholesale rollback.
    fn apply_in_place_sequence(
        &self,
        instance: &mut Instance,
        order: &[Receiver],
    ) -> InPlaceOutcome {
        if order.is_empty() {
            return InPlaceOutcome::Applied;
        }
        let snapshot = instance.clone();
        for t in order {
            match self.apply_in_place(instance, t) {
                InPlaceOutcome::Applied => {}
                other => {
                    // apply_in_place restored its own receiver; restore the
                    // rest of the sequence from the snapshot.
                    *instance = snapshot;
                    return other;
                }
            }
        }
        InPlaceOutcome::Applied
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str {
        "<anonymous update method>"
    }
}

/// A method backed by a Rust closure.
pub struct FnMethod<F>
where
    F: Fn(&Instance, &Receiver) -> MethodOutcome,
{
    name: String,
    signature: Signature,
    f: F,
}

impl<F> FnMethod<F>
where
    F: Fn(&Instance, &Receiver) -> MethodOutcome,
{
    /// Wrap a closure as an update method.
    pub fn new(name: impl Into<String>, signature: Signature, f: F) -> Self {
        Self {
            name: name.into(),
            signature,
            f,
        }
    }
}

impl<F> UpdateMethod for FnMethod<F>
where
    F: Fn(&Instance, &Receiver) -> MethodOutcome,
{
    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn apply(&self, instance: &Instance, receiver: &Receiver) -> MethodOutcome {
        if let Err(e) = receiver.validate(&self.signature, instance) {
            return MethodOutcome::Undefined(e.to_string());
        }
        (self.f)(instance, receiver)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{beer_schema, figure2};
    use crate::oid::Oid;

    #[test]
    fn fn_method_validates_receivers() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let noop = FnMethod::new("noop", sig, |i, _| MethodOutcome::Done(i.clone()));

        let ok = Receiver::new(vec![o.d1, o.bar1]);
        assert!(matches!(noop.apply(&i, &ok), MethodOutcome::Done(_)));

        let bad = Receiver::new(vec![o.d1, Oid::new(s.bar, 42)]);
        assert!(matches!(noop.apply(&i, &bad), MethodOutcome::Undefined(_)));
    }
}
