#![warn(missing_docs)]

//! # receivers-objectbase
//!
//! The object-base data model of Andries, Cabibbo, Paredaens and Van den
//! Bussche, *Applying an Update Method to a Set of Receivers* (PODS 1995),
//! Section 2 and Section 4.1.
//!
//! An **object-base schema** is a finite, edge-labeled, directed graph whose
//! nodes are *class names* and whose edges `(B, e, C)` carry pairwise
//! distinct *property names* `e` (Definition 2.1). An **instance** of a
//! schema is a finite labeled directed graph whose nodes are *objects*
//! labeled by class names and whose edges `(o, e, p)` instantiate schema
//! edges (Definition 2.2).
//!
//! This crate provides:
//!
//! * [`Schema`] / [`SchemaBuilder`] — schemas with interned class and
//!   property names ([`ClassId`], [`PropId`]) and [`SchemaItem`]s;
//! * [`Oid`] — typed object identifiers drawn from pairwise disjoint
//!   per-class universes;
//! * [`Instance`] — validated instances (no dangling edges), with
//!   set-theoretic operations in the "instance = set of its items" view of
//!   Definition 4.1;
//! * [`PartialInstance`] — possibly-dangling item sets (Definition 4.3),
//!   the dangling-edge eliminator [`PartialInstance::largest_instance`]
//!   (the operator *G* of Definition 4.4) and restriction `I|X`
//!   (Definition 4.5);
//! * [`Signature`], [`Receiver`] and [`ReceiverSet`] — method signatures and
//!   receivers (Definitions 2.4 and 2.5), including key sets (Section 3);
//! * [`gen`] — random schema/instance/receiver generators used by the test
//!   suite and the benchmark harness;
//! * [`examples`] — the drinker/bar/beer running example of the paper and
//!   constructors for each of its Figures 1–5.

pub mod delta;
pub mod display;
pub mod error;
pub mod examples;
pub mod extended;
pub mod gen;
pub mod index;
pub mod instance;
pub mod io;
pub mod item;
pub mod method;
pub mod oid;
pub mod partial;
pub mod receiver;
pub mod schema;
pub mod view;

pub use delta::{redo_ops, undo_ops, DeltaOp, InstanceTxn};
pub use error::{ObjectBaseError, Result};
pub use index::EdgeIndex;
pub use instance::Instance;
pub use item::{Edge, Item};
pub use method::{FnMethod, InPlaceOutcome, MethodOutcome, UpdateMethod};
pub use oid::Oid;
pub use partial::PartialInstance;
pub use receiver::{Receiver, ReceiverSet, Signature};
pub use schema::{ClassId, PropId, Property, Schema, SchemaBuilder, SchemaItem};
pub use view::{DeltaObserver, NullObserver};
