//! Object-base schemas (Definition 2.1): finite, edge-labeled, directed
//! graphs whose nodes are class names and whose edges carry pairwise
//! distinct property names.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{ObjectBaseError, Result};

/// Interned identifier of a class name within one [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassId(pub u32);

/// Interned identifier of a property name within one [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PropId(pub u32);

/// A schema edge `(B, e, C)`: property `e` of class `B` with type `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Property {
    /// The property name `e`.
    pub name: String,
    /// The source class `B` ("`e` is a property *of* `B`").
    pub src: ClassId,
    /// The target class `C` ("… *of type* `C`").
    pub dst: ClassId,
}

/// An *item* of the schema graph: a class node or a property edge
/// (Definition 4.1 applied to schemas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemaItem {
    /// A class node.
    Class(ClassId),
    /// A property edge.
    Prop(PropId),
}

/// An object-base schema: class names plus uniquely labeled property edges.
///
/// Schemas are immutable once built; share them via [`Arc`] (instances hold
/// an `Arc<Schema>`). Build with [`SchemaBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    classes: Vec<String>,
    properties: Vec<Property>,
    class_index: BTreeMap<String, ClassId>,
    prop_index: BTreeMap<String, PropId>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of class names.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of property edges.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// All class ids, in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// All property ids, in declaration order.
    pub fn properties(&self) -> impl Iterator<Item = PropId> + '_ {
        (0..self.properties.len() as u32).map(PropId)
    }

    /// All schema items: every class node followed by every property edge.
    pub fn items(&self) -> impl Iterator<Item = SchemaItem> + '_ {
        self.classes()
            .map(SchemaItem::Class)
            .chain(self.properties().map(SchemaItem::Prop))
    }

    /// The name of class `c`.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.0 as usize]
    }

    /// The name of property `p`.
    pub fn prop_name(&self, p: PropId) -> &str {
        &self.properties[p.0 as usize].name
    }

    /// Full definition of property `p`.
    pub fn property(&self, p: PropId) -> &Property {
        &self.properties[p.0 as usize]
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Look up a class by name, erroring when absent.
    pub fn class_checked(&self, name: &str) -> Result<ClassId> {
        self.class(name)
            .ok_or_else(|| ObjectBaseError::UnknownClass(name.to_owned()))
    }

    /// Look up a property by name.
    pub fn prop(&self, name: &str) -> Option<PropId> {
        self.prop_index.get(name).copied()
    }

    /// Look up a property by name, erroring when absent.
    pub fn prop_checked(&self, name: &str) -> Result<PropId> {
        self.prop(name)
            .ok_or_else(|| ObjectBaseError::UnknownProperty(name.to_owned()))
    }

    /// Properties of class `c` (edges leaving `c` in the schema graph).
    pub fn properties_of(&self, c: ClassId) -> impl Iterator<Item = PropId> + '_ {
        self.properties()
            .filter(move |&p| self.property(p).src == c)
    }

    /// Properties *into* class `c` (edges entering `c`).
    pub fn properties_into(&self, c: ClassId) -> impl Iterator<Item = PropId> + '_ {
        self.properties()
            .filter(move |&p| self.property(p).dst == c)
    }

    /// Properties incident to class `c` on either end. A self-loop
    /// `(C, e, C)` is yielded once.
    pub fn properties_incident(&self, c: ClassId) -> impl Iterator<Item = PropId> + '_ {
        self.properties()
            .filter(move |&p| self.property(p).src == c || self.property(p).dst == c)
    }

    /// Human-readable label of a schema item.
    pub fn item_name(&self, item: SchemaItem) -> &str {
        match item {
            SchemaItem::Class(c) => self.class_name(c),
            SchemaItem::Prop(p) => self.prop_name(p),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {{")?;
        for c in self.classes() {
            writeln!(f, "  class {}", self.class_name(c))?;
        }
        for p in self.properties() {
            let prop = self.property(p);
            writeln!(
                f,
                "  property {}: {} -> {}",
                prop.name,
                self.class_name(prop.src),
                self.class_name(prop.dst),
            )?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    classes: Vec<String>,
    properties: Vec<Property>,
    class_index: BTreeMap<String, ClassId>,
    prop_index: BTreeMap<String, PropId>,
}

impl SchemaBuilder {
    /// Declare a class name; errors on duplicates.
    pub fn class(&mut self, name: impl Into<String>) -> Result<ClassId> {
        let name = name.into();
        if self.class_index.contains_key(&name) {
            return Err(ObjectBaseError::DuplicateClass(name));
        }
        let id = ClassId(self.classes.len() as u32);
        self.class_index.insert(name.clone(), id);
        self.classes.push(name);
        Ok(id)
    }

    /// Declare a property edge `(src, name, dst)`; errors when the label is
    /// already in use (Definition 2.1 requires globally unique labels).
    pub fn property(
        &mut self,
        src: ClassId,
        name: impl Into<String>,
        dst: ClassId,
    ) -> Result<PropId> {
        let name = name.into();
        if self.prop_index.contains_key(&name) {
            return Err(ObjectBaseError::DuplicateProperty(name));
        }
        if src.0 as usize >= self.classes.len() {
            return Err(ObjectBaseError::UnknownClass(format!("#{}", src.0)));
        }
        if dst.0 as usize >= self.classes.len() {
            return Err(ObjectBaseError::UnknownClass(format!("#{}", dst.0)));
        }
        let id = PropId(self.properties.len() as u32);
        self.prop_index.insert(name.clone(), id);
        self.properties.push(Property { name, src, dst });
        Ok(id)
    }

    /// Look up a class already declared on this builder. Ids are assigned
    /// in declaration order, so they remain valid after [`Self::build`].
    pub fn declared_class(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Finish building, wrapping the schema in an [`Arc`] for sharing.
    pub fn build(self) -> Arc<Schema> {
        Arc::new(Schema {
            classes: self.classes,
            properties: self.properties,
            class_index: self.class_index,
            prop_index: self.prop_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beer_schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let drinker = b.class("Drinker").unwrap();
        let bar = b.class("Bar").unwrap();
        let beer = b.class("Beer").unwrap();
        b.property(drinker, "frequents", bar).unwrap();
        b.property(drinker, "likes", beer).unwrap();
        b.property(bar, "serves", beer).unwrap();
        b.build()
    }

    #[test]
    fn builds_the_running_example() {
        let s = beer_schema();
        assert_eq!(s.class_count(), 3);
        assert_eq!(s.property_count(), 3);
        let drinker = s.class("Drinker").unwrap();
        let frequents = s.prop("frequents").unwrap();
        assert_eq!(s.property(frequents).src, drinker);
        assert_eq!(s.class_name(s.property(frequents).dst), "Bar");
    }

    #[test]
    fn rejects_duplicate_class() {
        let mut b = Schema::builder();
        b.class("C").unwrap();
        assert_eq!(
            b.class("C").unwrap_err(),
            ObjectBaseError::DuplicateClass("C".into())
        );
    }

    #[test]
    fn rejects_duplicate_property_label() {
        let mut b = Schema::builder();
        let a = b.class("A").unwrap();
        let c = b.class("B").unwrap();
        b.property(a, "e", c).unwrap();
        // Even between *different* class pairs, labels must be unique.
        assert_eq!(
            b.property(c, "e", a).unwrap_err(),
            ObjectBaseError::DuplicateProperty("e".into())
        );
    }

    #[test]
    fn items_enumerates_classes_then_properties() {
        let s = beer_schema();
        let items: Vec<_> = s.items().collect();
        assert_eq!(items.len(), 6);
        assert!(matches!(items[0], SchemaItem::Class(_)));
        assert!(matches!(items[5], SchemaItem::Prop(_)));
    }

    #[test]
    fn incident_iterators() {
        let s = beer_schema();
        let bar = s.class("Bar").unwrap();
        let of: Vec<_> = s
            .properties_of(bar)
            .map(|p| s.prop_name(p).to_owned())
            .collect();
        assert_eq!(of, ["serves"]);
        let into: Vec<_> = s
            .properties_into(bar)
            .map(|p| s.prop_name(p).to_owned())
            .collect();
        assert_eq!(into, ["frequents"]);
        let incident: Vec<_> = s
            .properties_incident(bar)
            .map(|p| s.prop_name(p).to_owned())
            .collect();
        assert_eq!(incident, ["frequents", "serves"]);
    }

    #[test]
    fn self_loop_incident_once() {
        let mut b = Schema::builder();
        let c = b.class("C").unwrap();
        b.property(c, "e", c).unwrap();
        let s = b.build();
        assert_eq!(s.properties_incident(c).count(), 1);
    }

    #[test]
    fn display_is_stable() {
        let s = beer_schema();
        let text = s.to_string();
        assert!(text.contains("property serves: Bar -> Beer"));
    }
}
