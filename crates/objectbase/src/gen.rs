//! Random generators for schemas, instances and receiver sets.
//!
//! Used by the property-based tests and by the benchmark harness to produce
//! workloads of controlled size. All generators are deterministic given a
//! seed, so every benchmark row is reproducible.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::instance::Instance;
use crate::item::Edge;
use crate::oid::Oid;
use crate::receiver::{Receiver, ReceiverSet, Signature};
use crate::schema::{ClassId, Schema, SchemaBuilder};

/// Parameters for [`random_schema`].
#[derive(Debug, Clone, Copy)]
pub struct SchemaParams {
    /// Number of class names.
    pub classes: usize,
    /// Number of property edges (endpoints chosen uniformly).
    pub properties: usize,
}

impl Default for SchemaParams {
    fn default() -> Self {
        Self {
            classes: 3,
            properties: 4,
        }
    }
}

/// Generate a random schema with `params.classes` classes named
/// `C0, C1, …` and `params.properties` properties named `p0, p1, …`.
pub fn random_schema(params: SchemaParams, seed: u64) -> Arc<Schema> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SchemaBuilder::default();
    let classes: Vec<ClassId> = (0..params.classes)
        .map(|i| b.class(format!("C{i}")).expect("fresh names"))
        .collect();
    for i in 0..params.properties {
        let src = classes[rng.random_range(0..classes.len())];
        let dst = classes[rng.random_range(0..classes.len())];
        b.property(src, format!("p{i}"), dst).expect("fresh names");
    }
    b.build()
}

/// Parameters for [`random_instance`].
#[derive(Debug, Clone, Copy)]
pub struct InstanceParams {
    /// Objects per class.
    pub objects_per_class: u32,
    /// Independent probability of each possible edge being present.
    pub edge_density: f64,
}

impl Default for InstanceParams {
    fn default() -> Self {
        Self {
            objects_per_class: 4,
            edge_density: 0.3,
        }
    }
}

/// Generate a random instance of `schema`: `objects_per_class` objects in
/// every class, each well-typed edge present independently with probability
/// `edge_density`.
pub fn random_instance(schema: &Arc<Schema>, params: InstanceParams, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut i = Instance::empty(Arc::clone(schema));
    for c in schema.classes() {
        for k in 0..params.objects_per_class {
            i.add_object(Oid::new(c, k));
        }
    }
    for p in schema.properties() {
        let prop = schema.property(p);
        for s in 0..params.objects_per_class {
            for d in 0..params.objects_per_class {
                if rng.random_bool(params.edge_density) {
                    i.add_edge(Edge::new(Oid::new(prop.src, s), p, Oid::new(prop.dst, d)))
                        .expect("objects inserted above");
                }
            }
        }
    }
    i
}

/// Generate a random set of `count` receivers of type `sig` over
/// `instance`. Returns fewer receivers when the instance does not contain
/// enough distinct combinations. With `key_set` the receiving objects are
/// pairwise distinct, producing a key set (Section 3).
pub fn random_receivers(
    instance: &Instance,
    sig: &Signature,
    count: usize,
    key_set: bool,
    seed: u64,
) -> ReceiverSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let pools: Vec<Vec<Oid>> = sig
        .classes()
        .iter()
        .map(|&c| instance.class_members(c).collect())
        .collect();
    if pools.iter().any(Vec::is_empty) {
        return ReceiverSet::new();
    }
    let mut out = ReceiverSet::new();
    let mut used_receivers = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    let max_attempts = count * 50 + 100;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let objs: Vec<Oid> = pools
            .iter()
            .map(|pool| pool[rng.random_range(0..pool.len())])
            .collect();
        let r = Receiver::new(objs);
        if key_set && used_receivers.contains(&r.receiving_object()) {
            continue;
        }
        used_receivers.insert(r.receiving_object());
        out.insert(r);
    }
    out
}

/// The full Cartesian receiver set `C₀ × … × Cₖ` over an instance — e.g.
/// the `C × C` receiver set of Example 6.4.
pub fn all_receivers(instance: &Instance, sig: &Signature) -> ReceiverSet {
    let pools: Vec<Vec<Oid>> = sig
        .classes()
        .iter()
        .map(|&c| instance.class_members(c).collect())
        .collect();
    let mut out = ReceiverSet::new();
    if pools.iter().any(Vec::is_empty) {
        return out;
    }
    let mut indices = vec![0usize; pools.len()];
    loop {
        out.insert(Receiver::new(
            indices.iter().zip(&pools).map(|(&i, p)| p[i]).collect(),
        ));
        let mut pos = pools.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < pools[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_generation_is_deterministic() {
        let p = SchemaParams {
            classes: 4,
            properties: 6,
        };
        let a = random_schema(p, 7);
        let b = random_schema(p, 7);
        assert_eq!(*a, *b);
        assert_eq!(a.class_count(), 4);
        assert_eq!(a.property_count(), 6);
    }

    #[test]
    fn instance_generation_respects_density_bounds() {
        let schema = random_schema(SchemaParams::default(), 1);
        let dense = random_instance(
            &schema,
            InstanceParams {
                objects_per_class: 3,
                edge_density: 1.0,
            },
            2,
        );
        assert_eq!(
            dense.edge_count(),
            schema.property_count() * 9,
            "density 1.0 places every possible edge"
        );
        let empty = random_instance(
            &schema,
            InstanceParams {
                objects_per_class: 3,
                edge_density: 0.0,
            },
            2,
        );
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn key_set_generation_produces_key_sets() {
        let schema = random_schema(
            SchemaParams {
                classes: 2,
                properties: 1,
            },
            3,
        );
        let instance = random_instance(
            &schema,
            InstanceParams {
                objects_per_class: 10,
                edge_density: 0.5,
            },
            4,
        );
        let sig = Signature::new(vec![ClassId(0), ClassId(1)]).unwrap();
        let t = random_receivers(&instance, &sig, 8, true, 5);
        assert!(t.is_key_set());
        assert!(!t.is_empty());
    }

    #[test]
    fn all_receivers_is_cartesian() {
        let schema = random_schema(
            SchemaParams {
                classes: 2,
                properties: 0,
            },
            6,
        );
        let instance = random_instance(
            &schema,
            InstanceParams {
                objects_per_class: 3,
                edge_density: 0.0,
            },
            7,
        );
        let sig = Signature::new(vec![ClassId(0), ClassId(1)]).unwrap();
        assert_eq!(all_receivers(&instance, &sig).len(), 9);
    }
}
