//! Incrementally maintained adjacency indices over instance edges.
//!
//! [`EdgeIndex`] replaces the flat `BTreeSet<Edge>` storage of
//! [`PartialInstance`](crate::partial::PartialInstance) with three
//! synchronized views of the same edge set:
//!
//! * **forward**: `(src, prop) → {dst}` — drives `successors` and, because
//!   [`Edge`]'s derived ordering is `(src, prop, dst)`-lexicographic,
//!   in-order traversal of the forward map reproduces the canonical edge
//!   order of the old flat set exactly;
//! * **per-property**: `prop → {(src, dst)}` — drives `edges_labeled` and
//!   relational views ([`Database::from_instance`] reads one property at a
//!   time);
//! * **reverse**: `(dst, prop) → {src}` — drives predecessor lookups and
//!   the incident-edge sweep of cascading node removal.
//!
//! Per-operation complexity (`d` = result degree, `E` = total edges):
//!
//! | operation                    | flat set    | indexed          |
//! |------------------------------|-------------|------------------|
//! | `insert` / `remove`          | `O(log E)`  | `O(log E)` (×3)  |
//! | `contains`                   | `O(log E)`  | `O(log E)`       |
//! | `successors(o, p)`           | `O(E)` scan | `O(log E + d)`   |
//! | `labeled(p)`                 | `O(E)` scan | `O(log E + d)`   |
//! | `incident(o)`                | `O(E)` scan | `O(log E + d·log d)` |
//! | full iteration               | `O(E)`      | `O(E)`           |
//!
//! All iterators yield edges in the canonical `(src, prop, dst)` order, so
//! equality/ordering/hashing built on them is indistinguishable from the
//! flat-set representation.
//!
//! [`Database::from_instance`]: ../../receivers_relalg/database/struct.Database.html

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::item::Edge;
use crate::oid::Oid;
use crate::schema::PropId;

/// The three-way adjacency index over a set of edges.
///
/// Structural equality, ordering and hashing all agree with the underlying
/// *set of edges* (canonical `(src, prop, dst)` order), matching the
/// semantics of the `BTreeSet<Edge>` it replaces.
#[derive(Clone, Default)]
pub struct EdgeIndex {
    /// `(src, prop) → dst` set; canonical-order master copy.
    fwd: BTreeMap<(Oid, PropId), BTreeSet<Oid>>,
    /// `prop → (src, dst)` set.
    by_prop: BTreeMap<PropId, BTreeSet<(Oid, Oid)>>,
    /// `(dst, prop) → src` set.
    rev: BTreeMap<(Oid, PropId), BTreeSet<Oid>>,
    /// Total number of edges (each counted once).
    len: usize,
}

impl EdgeIndex {
    /// The empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an index from any edge iterator (duplicates collapse).
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut ix = Self::new();
        for e in edges {
            ix.insert(e);
        }
        ix
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no edges are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test. `O(log E)`.
    pub fn contains(&self, e: &Edge) -> bool {
        self.fwd
            .get(&(e.src, e.prop))
            .is_some_and(|dsts| dsts.contains(&e.dst))
    }

    /// Insert an edge into all three views. Returns `true` when new.
    pub fn insert(&mut self, e: Edge) -> bool {
        let new = self.fwd.entry((e.src, e.prop)).or_default().insert(e.dst);
        if new {
            self.by_prop
                .entry(e.prop)
                .or_default()
                .insert((e.src, e.dst));
            self.rev.entry((e.dst, e.prop)).or_default().insert(e.src);
            self.len += 1;
        }
        new
    }

    /// Remove an edge from all three views. Returns `true` when present.
    pub fn remove(&mut self, e: &Edge) -> bool {
        let Some(dsts) = self.fwd.get_mut(&(e.src, e.prop)) else {
            return false;
        };
        if !dsts.remove(&e.dst) {
            return false;
        }
        if dsts.is_empty() {
            self.fwd.remove(&(e.src, e.prop));
        }
        Self::prune(&mut self.by_prop, &e.prop, &(e.src, e.dst));
        Self::prune(&mut self.rev, &(e.dst, e.prop), &e.src);
        self.len -= 1;
        true
    }

    fn prune<K: Ord + Copy, V: Ord>(map: &mut BTreeMap<K, BTreeSet<V>>, key: &K, v: &V) {
        let entry = map.get_mut(key).expect("index views out of sync");
        let removed = entry.remove(v);
        debug_assert!(removed, "index views out of sync");
        if entry.is_empty() {
            map.remove(key);
        }
    }

    /// All edges in canonical `(src, prop, dst)` order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.fwd
            .iter()
            .flat_map(|(&(src, prop), dsts)| dsts.iter().map(move |&dst| Edge::new(src, prop, dst)))
    }

    /// Edges labeled `p`, ordered by `(src, dst)` — the same order a
    /// label-filtered scan of the canonical sequence produces.
    pub fn labeled(&self, p: PropId) -> impl Iterator<Item = Edge> + '_ {
        self.by_prop
            .get(&p)
            .into_iter()
            .flat_map(move |pairs| pairs.iter().map(move |&(src, dst)| Edge::new(src, p, dst)))
    }

    /// The `(src, dst)` pairs of edges labeled `p`, ordered by `(src, dst)`
    /// — the borrow-only form of [`EdgeIndex::labeled`] used by relational
    /// views, which store exactly these pairs as binary tuples.
    pub fn labeled_pairs(&self, p: PropId) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        self.by_prop
            .get(&p)
            .into_iter()
            .flat_map(|pairs| pairs.iter().copied())
    }

    /// The properties with at least one edge, ascending.
    pub fn properties(&self) -> impl Iterator<Item = PropId> + '_ {
        self.by_prop.keys().copied()
    }

    /// Objects reachable from `o` via `p`, ascending.
    pub fn successors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.fwd
            .get(&(o, p))
            .into_iter()
            .flat_map(|dsts| dsts.iter().copied())
    }

    /// Objects with a `p`-edge into `o`, ascending.
    pub fn predecessors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.rev
            .get(&(o, p))
            .into_iter()
            .flat_map(|srcs| srcs.iter().copied())
    }

    /// Out-degree of `(o, p)` without materializing the successor set.
    pub fn out_degree(&self, o: Oid, p: PropId) -> usize {
        self.fwd.get(&(o, p)).map_or(0, BTreeSet::len)
    }

    /// Edges whose source is `o`, in canonical order.
    pub fn out_edges(&self, o: Oid) -> impl Iterator<Item = Edge> + '_ {
        self.fwd
            .range((o, PropId(0))..=(o, PropId(u32::MAX)))
            .flat_map(|(&(src, prop), dsts)| dsts.iter().map(move |&dst| Edge::new(src, prop, dst)))
    }

    /// Edges whose destination is `o`, ordered by `(prop, src)`.
    pub fn in_edges(&self, o: Oid) -> impl Iterator<Item = Edge> + '_ {
        self.rev
            .range((o, PropId(0))..=(o, PropId(u32::MAX)))
            .flat_map(|(&(dst, prop), srcs)| srcs.iter().map(move |&src| Edge::new(src, prop, dst)))
    }

    /// Edges incident to `o` (either endpoint, self-loops once), in
    /// canonical order — matching an endpoint-filtered scan of the flat set.
    pub fn incident(&self, o: Oid) -> impl Iterator<Item = Edge> + '_ {
        let set: BTreeSet<Edge> = self.out_edges(o).chain(self.in_edges(o)).collect();
        set.into_iter()
    }

    pub(crate) fn check_consistent(&self) {
        let from_fwd: BTreeSet<Edge> = self.iter().collect();
        let from_prop: BTreeSet<Edge> = self
            .by_prop
            .iter()
            .flat_map(|(&p, pairs)| pairs.iter().map(move |&(s, d)| Edge::new(s, p, d)))
            .collect();
        let from_rev: BTreeSet<Edge> = self
            .rev
            .iter()
            .flat_map(|(&(d, p), srcs)| srcs.iter().map(move |&s| Edge::new(s, p, d)))
            .collect();
        assert_eq!(from_fwd.len(), self.len, "len out of sync with fwd view");
        assert_eq!(from_fwd, from_prop, "by_prop view out of sync");
        assert_eq!(from_fwd, from_rev, "rev view out of sync");
    }
}

impl PartialEq for EdgeIndex {
    fn eq(&self, other: &Self) -> bool {
        // The forward view determines the edge set, and `len` is derived.
        self.len == other.len && self.fwd == other.fwd
    }
}

impl Eq for EdgeIndex {}

impl PartialOrd for EdgeIndex {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdgeIndex {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic over the canonical edge sequence: identical to the
        // `BTreeSet<Edge>` ordering this type replaces.
        self.iter().cmp(other.iter())
    }
}

impl std::hash::Hash for EdgeIndex {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Mirror `BTreeSet<Edge>`: length prefix, then elements in order.
        self.len.hash(state);
        for e in self.iter() {
            e.hash(state);
        }
    }
}

impl fmt::Debug for EdgeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Edge> for EdgeIndex {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        Self::from_edges(iter)
    }
}

impl<'a> IntoIterator for &'a EdgeIndex {
    type Item = Edge;
    type IntoIter = Box<dyn Iterator<Item = Edge> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassId;

    fn e(s: u32, p: u32, d: u32) -> Edge {
        Edge::new(
            Oid::new(ClassId(s % 3), s),
            PropId(p),
            Oid::new(ClassId(d % 3), d),
        )
    }

    #[test]
    fn canonical_iteration_matches_flat_set() {
        let edges = [e(2, 1, 0), e(0, 0, 1), e(0, 1, 2), e(2, 0, 2), e(1, 2, 1)];
        let ix = EdgeIndex::from_edges(edges);
        let flat: BTreeSet<Edge> = edges.into_iter().collect();
        assert_eq!(
            ix.iter().collect::<Vec<_>>(),
            flat.into_iter().collect::<Vec<_>>()
        );
        ix.check_consistent();
    }

    #[test]
    fn insert_remove_keep_views_in_sync() {
        let mut ix = EdgeIndex::new();
        assert!(ix.insert(e(0, 0, 1)));
        assert!(!ix.insert(e(0, 0, 1)), "set semantics");
        assert!(ix.insert(e(0, 0, 2)));
        assert!(ix.insert(e(1, 1, 1)));
        assert_eq!(ix.len(), 3);
        assert!(ix.remove(&e(0, 0, 1)));
        assert!(!ix.remove(&e(0, 0, 1)));
        assert!(!ix.remove(&e(5, 5, 5)));
        assert_eq!(ix.len(), 2);
        ix.check_consistent();
        assert!(ix.contains(&e(0, 0, 2)));
        assert!(!ix.contains(&e(0, 0, 1)));
    }

    #[test]
    fn targeted_lookups() {
        let ix = EdgeIndex::from_edges([e(0, 0, 1), e(0, 0, 2), e(0, 1, 1), e(2, 0, 1)]);
        let succ: Vec<u32> = ix
            .successors(Oid::new(ClassId(0), 0), PropId(0))
            .map(|o| o.index)
            .collect();
        assert_eq!(succ, vec![1, 2]);
        let preds: Vec<u32> = ix
            .predecessors(Oid::new(ClassId(1), 1), PropId(0))
            .map(|o| o.index)
            .collect();
        assert_eq!(preds, vec![0, 2]);
        assert_eq!(ix.labeled(PropId(0)).count(), 3);
        assert_eq!(ix.out_degree(Oid::new(ClassId(0), 0), PropId(0)), 2);
        assert_eq!(
            ix.properties().collect::<Vec<_>>(),
            vec![PropId(0), PropId(1)]
        );
    }

    #[test]
    fn incident_handles_self_loops_once() {
        let o = Oid::new(ClassId(0), 0);
        let mut ix = EdgeIndex::new();
        ix.insert(Edge::new(o, PropId(0), o));
        ix.insert(e(0, 1, 1));
        ix.insert(e(1, 1, 0));
        let inc: Vec<Edge> = ix.incident(o).collect();
        assert_eq!(inc.len(), 3);
        let flat: BTreeSet<Edge> = ix.iter().collect();
        let scanned: Vec<Edge> = flat
            .into_iter()
            .filter(|ed| ed.src == o || ed.dst == o)
            .collect();
        assert_eq!(inc, scanned);
    }

    #[test]
    fn eq_ord_hash_agree_with_edge_sets() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = EdgeIndex::from_edges([e(0, 0, 1), e(1, 1, 2)]);
        let b = EdgeIndex::from_edges([e(1, 1, 2), e(0, 0, 1)]);
        assert_eq!(a, b);
        let hash = |ix: &EdgeIndex| {
            let mut h = DefaultHasher::new();
            ix.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        let c = EdgeIndex::from_edges([e(0, 0, 1), e(1, 1, 2), e(2, 2, 2)]);
        let sa: BTreeSet<Edge> = a.iter().collect();
        let sc: BTreeSet<Edge> = c.iter().collect();
        assert_eq!(a.cmp(&c), sa.cmp(&sc));
        assert_eq!(c.cmp(&a), sc.cmp(&sa));
    }
}
