//! Method signatures, receivers, and receiver sets (Definitions 2.4–2.5 and
//! the key-set notion of Section 3).

use std::fmt;

use crate::error::{ObjectBaseError, Result};
use crate::instance::Instance;
use crate::oid::Oid;
use crate::schema::{ClassId, Schema};

/// A method signature σ = [C₀, …, Cₖ]: a non-empty tuple of class names.
/// `C₀` is the *receiving class*, the rest are *argument classes*
/// (Definition 2.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    classes: Vec<ClassId>,
}

impl Signature {
    /// Build a signature; errors when empty.
    pub fn new(classes: Vec<ClassId>) -> Result<Self> {
        if classes.is_empty() {
            return Err(ObjectBaseError::EmptySignature);
        }
        Ok(Self { classes })
    }

    /// The receiving class `C₀`.
    pub fn receiving_class(&self) -> ClassId {
        self.classes[0]
    }

    /// The argument classes `C₁, …, Cₖ`.
    pub fn argument_classes(&self) -> &[ClassId] {
        &self.classes[1..]
    }

    /// Number of argument positions `k`.
    pub fn arity(&self) -> usize {
        self.classes.len() - 1
    }

    /// All positions, receiving class first.
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    /// Render against a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Signature, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "[")?;
                for (i, c) in self.0.classes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.1.class_name(*c))?;
                }
                write!(f, "]")
            }
        }
        D(self, schema)
    }
}

/// A receiver `[o₀, …, oₖ]` over an instance (Definition 2.5): `o₀` is the
/// *receiving object*, the rest are the *arguments*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Receiver {
    objects: Vec<Oid>,
}

impl Receiver {
    /// Build a receiver from its component objects (unvalidated; see
    /// [`Receiver::validate`]).
    pub fn new(objects: Vec<Oid>) -> Self {
        debug_assert!(!objects.is_empty());
        Self { objects }
    }

    /// The receiving object `o₀`.
    pub fn receiving_object(&self) -> Oid {
        self.objects[0]
    }

    /// The argument objects `o₁, …, oₖ`.
    pub fn arguments(&self) -> &[Oid] {
        &self.objects[1..]
    }

    /// All components, receiving object first.
    pub fn objects(&self) -> &[Oid] {
        &self.objects
    }

    /// Check that this receiver has type `sig` and that every component is
    /// an object of `instance` — the two conditions of Definition 2.5.
    pub fn validate(&self, sig: &Signature, instance: &Instance) -> Result<()> {
        if self.objects.len() != sig.classes().len() {
            return Err(ObjectBaseError::SignatureMismatch {
                position: self.objects.len().min(sig.classes().len()),
                expected: format!("{} components", sig.classes().len()),
                found: format!("{} components", self.objects.len()),
            });
        }
        let schema = instance.schema();
        for (pos, (&o, &c)) in self.objects.iter().zip(sig.classes()).enumerate() {
            if o.class != c {
                return Err(ObjectBaseError::SignatureMismatch {
                    position: pos,
                    expected: schema.class_name(c).to_owned(),
                    found: schema.class_name(o.class).to_owned(),
                });
            }
            if !instance.contains_node(o) {
                return Err(ObjectBaseError::ReceiverNotInInstance { position: pos });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Receiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, o) in self.objects.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "]")
    }
}

/// A finite set of receivers, stored in canonical order.
///
/// `T` is a **key set** when, "viewing `T` as a relation, the first column
/// (holding the receiving objects) is a key for `T`" (Section 3) — i.e. no
/// receiving object occurs twice with different arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReceiverSet {
    receivers: std::collections::BTreeSet<Receiver>,
}

impl ReceiverSet {
    /// The empty receiver set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a receiver; returns `true` when newly inserted.
    pub fn insert(&mut self, r: Receiver) -> bool {
        self.receivers.insert(r)
    }

    /// Number of receivers.
    pub fn len(&self) -> usize {
        self.receivers.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty()
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Receiver> + '_ {
        self.receivers.iter()
    }

    /// Key-set test (Section 3).
    pub fn is_key_set(&self) -> bool {
        let mut seen = std::collections::BTreeMap::new();
        for r in &self.receivers {
            if let Some(prev) = seen.insert(r.receiving_object(), r.arguments()) {
                if prev != r.arguments() {
                    return false;
                }
            }
        }
        true
    }

    /// All sequential enumerations (permutations) of this set. Intended for
    /// small sets in tests; the number of permutations is `len()!`.
    pub fn enumerations(&self) -> Vec<Vec<Receiver>> {
        let items: Vec<Receiver> = self.receivers.iter().cloned().collect();
        let mut out = Vec::new();
        let mut current = items;
        permute(&mut current, 0, &mut out);
        out
    }

    /// One arbitrary (canonical) enumeration.
    pub fn canonical_order(&self) -> Vec<Receiver> {
        self.receivers.iter().cloned().collect()
    }

    /// All unordered pairs of distinct receivers — the reduction of
    /// Lemma 3.3.
    pub fn pairs(&self) -> Vec<(Receiver, Receiver)> {
        let v: Vec<&Receiver> = self.receivers.iter().collect();
        let mut out = Vec::with_capacity(v.len() * (v.len().saturating_sub(1)) / 2);
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                out.push((v[i].clone(), v[j].clone()));
            }
        }
        out
    }
}

impl IntoIterator for ReceiverSet {
    type Item = Receiver;
    type IntoIter = std::collections::btree_set::IntoIter<Receiver>;

    fn into_iter(self) -> Self::IntoIter {
        self.receivers.into_iter()
    }
}

impl std::iter::FromIterator<Receiver> for ReceiverSet {
    fn from_iter<I: IntoIterator<Item = Receiver>>(iter: I) -> Self {
        Self {
            receivers: iter.into_iter().collect(),
        }
    }
}

fn permute(items: &mut Vec<Receiver>, k: usize, out: &mut Vec<Vec<Receiver>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance, Signature) {
        let mut b = Schema::builder();
        let d = b.class("Drinker").unwrap();
        let bar = b.class("Bar").unwrap();
        b.property(d, "frequents", bar).unwrap();
        let s = b.build();
        let mut i = Instance::empty(Arc::clone(&s));
        i.add_object(Oid::new(d, 1));
        i.add_object(Oid::new(bar, 1));
        i.add_object(Oid::new(bar, 2));
        let sig = Signature::new(vec![d, bar]).unwrap();
        (s, i, sig)
    }

    #[test]
    fn validation_checks_types_and_membership() {
        let (s, i, sig) = setup();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let ok = Receiver::new(vec![Oid::new(d, 1), Oid::new(bar, 2)]);
        assert!(ok.validate(&sig, &i).is_ok());

        let wrong_type = Receiver::new(vec![Oid::new(bar, 1), Oid::new(bar, 2)]);
        assert!(matches!(
            wrong_type.validate(&sig, &i),
            Err(ObjectBaseError::SignatureMismatch { position: 0, .. })
        ));

        let absent = Receiver::new(vec![Oid::new(d, 9), Oid::new(bar, 2)]);
        assert!(matches!(
            absent.validate(&sig, &i),
            Err(ObjectBaseError::ReceiverNotInInstance { position: 0 })
        ));
    }

    #[test]
    fn key_set_detection() {
        let (s, _i, _sig) = setup();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let mut t = ReceiverSet::new();
        t.insert(Receiver::new(vec![Oid::new(d, 1), Oid::new(bar, 1)]));
        assert!(t.is_key_set());
        t.insert(Receiver::new(vec![Oid::new(d, 2), Oid::new(bar, 1)]));
        assert!(t.is_key_set());
        t.insert(Receiver::new(vec![Oid::new(d, 1), Oid::new(bar, 2)]));
        assert!(!t.is_key_set());
    }

    #[test]
    fn enumerations_cover_all_permutations() {
        let (s, _i, _sig) = setup();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let t = ReceiverSet::from_iter(
            (0..3).map(|k| Receiver::new(vec![Oid::new(d, k), Oid::new(bar, 1)])),
        );
        let perms = t.enumerations();
        assert_eq!(perms.len(), 6);
        let unique: std::collections::BTreeSet<_> = perms.into_iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn pairs_counts() {
        let (s, _i, _sig) = setup();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let t = ReceiverSet::from_iter(
            (0..4).map(|k| Receiver::new(vec![Oid::new(d, k), Oid::new(bar, 1)])),
        );
        assert_eq!(t.pairs().len(), 6);
    }
}
