//! Error type shared by the object-base model.

use std::fmt;

/// Errors raised while building schemas or manipulating instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectBaseError {
    /// A class name was declared twice in one schema.
    DuplicateClass(String),
    /// A property name was declared twice in one schema. The paper requires
    /// that "different edges must have different labels" (Definition 2.1).
    DuplicateProperty(String),
    /// A property referred to a class that is not part of the schema.
    UnknownClass(String),
    /// A property name that is not part of the schema.
    UnknownProperty(String),
    /// An edge `(o, e, p)` whose endpoint types do not match the schema edge
    /// `(λ(o), e, λ(p))`.
    IllTypedEdge {
        /// The offending property name.
        property: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An edge was inserted whose endpoints are not nodes of the instance.
    DanglingEdge {
        /// The offending property name.
        property: String,
    },
    /// A receiver whose component types do not match the method signature.
    SignatureMismatch {
        /// Position in the receiver tuple (0 = receiving object).
        position: usize,
        /// What the signature expects.
        expected: String,
        /// What the receiver supplied.
        found: String,
    },
    /// A receiver mentions an object that is not present in the instance.
    ReceiverNotInInstance {
        /// Position in the receiver tuple.
        position: usize,
    },
    /// Two instances over different schemas were combined.
    SchemaMismatch,
    /// An empty signature; signatures are non-empty tuples (Definition 2.4).
    EmptySignature,
}

impl fmt::Display for ObjectBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateClass(c) => write!(f, "duplicate class name `{c}`"),
            Self::DuplicateProperty(p) => write!(f, "duplicate property name `{p}`"),
            Self::UnknownClass(c) => write!(f, "unknown class name `{c}`"),
            Self::UnknownProperty(p) => write!(f, "unknown property name `{p}`"),
            Self::IllTypedEdge { property, detail } => {
                write!(f, "ill-typed edge on property `{property}`: {detail}")
            }
            Self::DanglingEdge { property } => {
                write!(f, "dangling edge on property `{property}`")
            }
            Self::SignatureMismatch {
                position,
                expected,
                found,
            } => write!(
                f,
                "receiver component {position} has type `{found}`, signature expects `{expected}`"
            ),
            Self::ReceiverNotInInstance { position } => {
                write!(
                    f,
                    "receiver component {position} is not an object of the instance"
                )
            }
            Self::SchemaMismatch => write!(f, "operands belong to different schemas"),
            Self::EmptySignature => write!(f, "method signatures must be non-empty"),
        }
    }
}

impl std::error::Error for ObjectBaseError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ObjectBaseError>;
