//! Undoable in-place edits: the clone-free application substrate.
//!
//! [`InstanceTxn`] wraps a mutable [`Instance`] and records the inverse of
//! every successful edit. [`InstanceTxn::commit`] keeps the edits and
//! discards the log; [`InstanceTxn::rollback`] replays the log backwards,
//! restoring the instance to its exact pre-transaction state. Dropping a
//! transaction without calling either **rolls back**, so an early `return`
//! or panic path cannot leave a half-applied method behind.
//!
//! This is what lets a sequential application `M_seq(I, t₁ … tₙ)` run on a
//! single working copy — cost `O(changed items)` per receiver instead of a
//! full `O(E)` instance clone — while still satisfying the contract that a
//! non-`Done` outcome leaves the instance untouched.

use crate::error::Result;
use crate::instance::Instance;
use crate::item::Edge;
use crate::oid::Oid;
use crate::schema::{ClassId, PropId};

/// The inverse of one applied edit, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeltaOp {
    /// A node was newly inserted.
    AddedNode(Oid),
    /// A previously present node was removed.
    RemovedNode(Oid),
    /// An edge was newly inserted.
    AddedEdge(Edge),
    /// A previously present edge was removed.
    RemovedEdge(Edge),
}

/// An open transaction over an instance. See the module docs.
#[derive(Debug)]
pub struct InstanceTxn<'a> {
    instance: &'a mut Instance,
    log: Vec<DeltaOp>,
    /// `true` once commit/rollback consumed the log (suppresses the
    /// rollback-on-drop guard).
    finished: bool,
}

impl<'a> InstanceTxn<'a> {
    /// Open a transaction on `instance`.
    pub fn begin(instance: &'a mut Instance) -> Self {
        Self {
            instance,
            log: Vec::new(),
            finished: false,
        }
    }

    /// Read access to the instance *including* uncommitted edits.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Number of logged (i.e. effective) edits so far.
    pub fn op_count(&self) -> usize {
        self.log.len()
    }

    /// Add an object. Returns `true` when newly inserted.
    pub fn add_object(&mut self, o: Oid) -> bool {
        let added = self.instance.add_object(o);
        if added {
            self.log.push(DeltaOp::AddedNode(o));
        }
        added
    }

    /// Allocate and add a fresh object of `class` (cf.
    /// [`Instance::fresh_object`]).
    pub fn fresh_object(&mut self, class: ClassId) -> Oid {
        let o = self.instance.fresh_object(class);
        self.log.push(DeltaOp::AddedNode(o));
        o
    }

    /// Add an edge, checking typing and endpoint presence.
    pub fn add_edge(&mut self, e: Edge) -> Result<bool> {
        let added = self.instance.add_edge(e)?;
        if added {
            self.log.push(DeltaOp::AddedEdge(e));
        }
        Ok(added)
    }

    /// Convenience: add an edge by components.
    pub fn link(&mut self, src: Oid, prop: PropId, dst: Oid) -> Result<bool> {
        self.add_edge(Edge::new(src, prop, dst))
    }

    /// Remove an edge. Returns `true` when it was present.
    pub fn remove_edge(&mut self, e: &Edge) -> bool {
        let removed = self.instance.remove_edge(e);
        if removed {
            self.log.push(DeltaOp::RemovedEdge(*e));
        }
        removed
    }

    /// Remove an object and its incident edges (cf.
    /// [`Instance::remove_object_cascade`]).
    pub fn remove_object_cascade(&mut self, o: Oid) -> bool {
        if !self.instance.contains_node(o) {
            return false;
        }
        let incident: Vec<Edge> = self.instance.edges_incident(o).collect();
        for e in &incident {
            self.instance.remove_edge(e);
            self.log.push(DeltaOp::RemovedEdge(*e));
        }
        self.instance.partial_mut().remove_node(o);
        self.log.push(DeltaOp::RemovedNode(o));
        true
    }

    /// Keep all edits; the log is discarded. Returns the edit count.
    pub fn commit(mut self) -> usize {
        self.finished = true;
        std::mem::take(&mut self.log).len()
    }

    /// Undo all edits in reverse order, restoring the exact pre-transaction
    /// instance.
    pub fn rollback(mut self) {
        self.undo();
    }

    fn undo(&mut self) {
        self.finished = true;
        let partial = self.instance.partial_mut();
        for op in std::mem::take(&mut self.log).into_iter().rev() {
            match op {
                // Reverse replay guarantees any edge incident to an added
                // node was logged later and is already gone, so the bare
                // node removal cannot dangle.
                DeltaOp::AddedNode(o) => {
                    partial.remove_node(o);
                }
                DeltaOp::RemovedNode(o) => {
                    partial.insert_node(o);
                }
                DeltaOp::AddedEdge(e) => {
                    partial.remove_edge(&e);
                }
                DeltaOp::RemovedEdge(e) => {
                    partial
                        .insert_edge(e)
                        .expect("edge was typed when originally present");
                }
            }
        }
        debug_assert!(partial.is_instance(), "rollback restored a non-instance");
    }
}

impl Drop for InstanceTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.undo();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{beer_schema, figure2};

    #[test]
    fn commit_keeps_edits() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let before_edges = i.edge_count();
        let mut txn = InstanceTxn::begin(&mut i);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        assert_eq!(txn.op_count(), 3);
        txn.commit();
        assert_eq!(i.edge_count(), before_edges);
        assert!(i.contains_node(fresh));
        assert!(!i.contains_edge(&Edge::new(o.d1, s.frequents, o.bar1)));
    }

    #[test]
    fn rollback_restores_exact_instance() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut txn = InstanceTxn::begin(&mut i);
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.remove_object_cascade(o.bar1);
        assert_ne!(txn.instance(), &snapshot);
        txn.rollback();
        assert_eq!(i, snapshot);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        {
            let mut txn = InstanceTxn::begin(&mut i);
            txn.remove_object_cascade(o.d1);
        }
        assert_eq!(i, snapshot);
    }

    #[test]
    fn noop_edits_are_not_logged() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut txn = InstanceTxn::begin(&mut i);
        assert!(!txn.add_object(o.d1), "already present");
        assert!(!txn.remove_edge(&Edge::new(o.d1, s.likes, o.bar1)));
        assert_eq!(txn.op_count(), 0);
        txn.commit();
    }
}
