//! Undoable in-place edits: the clone-free application substrate.
//!
//! [`InstanceTxn`] wraps a mutable [`Instance`] and records the inverse of
//! every successful edit. [`InstanceTxn::commit`] keeps the edits and
//! discards the log; [`InstanceTxn::rollback`] replays the log backwards,
//! restoring the instance to its exact pre-transaction state. Dropping a
//! transaction without calling either **rolls back**, so an early `return`
//! or panic path cannot leave a half-applied method behind.
//!
//! This is what lets a sequential application `M_seq(I, t₁ … tₙ)` run on a
//! single working copy — cost `O(changed items)` per receiver instead of a
//! full `O(E)` instance clone — while still satisfying the contract that a
//! non-`Done` outcome leaves the instance untouched.
//!
//! Transactions can additionally stream their log to a
//! [`DeltaObserver`](crate::view::DeltaObserver)
//! ([`InstanceTxn::begin_observed`]), which is how incremental views (the
//! maintained relational encoding) stay in lockstep with the instance; and
//! a committed log can be appended to a caller-held sequence-level log
//! ([`InstanceTxn::commit_into`]) so that a *multi-receiver* application
//! can be rolled back wholesale with [`undo_ops`].

use crate::error::Result;
use crate::instance::Instance;
use crate::item::Edge;
use crate::oid::Oid;
use crate::partial::PartialInstance;
use crate::schema::{ClassId, PropId};
use crate::view::DeltaObserver;

/// One applied edit, in application order. The variants name what
/// *happened*; the inverse (for rollback) is implied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// A node was newly inserted.
    AddedNode(Oid),
    /// A previously present node was removed.
    RemovedNode(Oid),
    /// An edge was newly inserted.
    AddedEdge(Edge),
    /// A previously present edge was removed.
    RemovedEdge(Edge),
}

/// An open transaction over an instance. See the module docs.
pub struct InstanceTxn<'a> {
    instance: &'a mut Instance,
    /// Streamed a copy of every logged op (and every undone op).
    observer: Option<&'a mut dyn DeltaObserver>,
    log: Vec<DeltaOp>,
    /// `true` once commit/rollback consumed the log (suppresses the
    /// rollback-on-drop guard).
    finished: bool,
}

impl std::fmt::Debug for InstanceTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceTxn")
            .field("instance", &self.instance)
            .field("observed", &self.observer.is_some())
            .field("log", &self.log)
            .field("finished", &self.finished)
            .finish()
    }
}

impl<'a> InstanceTxn<'a> {
    /// Open a transaction on `instance`.
    pub fn begin(instance: &'a mut Instance) -> Self {
        Self {
            instance,
            observer: None,
            log: Vec::new(),
            finished: false,
        }
    }

    /// Open a transaction whose every effective edit is also streamed to
    /// `observer` — including the reversals should the transaction roll
    /// back (explicitly or on drop). This keeps an incremental view equal
    /// to a fresh rebuild at every point of the transaction's life.
    pub fn begin_observed(instance: &'a mut Instance, observer: &'a mut dyn DeltaObserver) -> Self {
        Self {
            instance,
            observer: Some(observer),
            log: Vec::new(),
            finished: false,
        }
    }

    /// Read access to the instance *including* uncommitted edits.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Number of logged (i.e. effective) edits so far.
    pub fn op_count(&self) -> usize {
        self.log.len()
    }

    /// Log `op` and notify the observer, if any.
    fn record(&mut self, op: DeltaOp) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.applied(&op);
        }
        self.log.push(op);
    }

    /// Add an object. Returns `true` when newly inserted.
    pub fn add_object(&mut self, o: Oid) -> bool {
        let added = self.instance.add_object(o);
        if added {
            self.record(DeltaOp::AddedNode(o));
        }
        added
    }

    /// Allocate and add a fresh object of `class` (cf.
    /// [`Instance::fresh_object`]).
    pub fn fresh_object(&mut self, class: ClassId) -> Oid {
        let o = self.instance.fresh_object(class);
        self.record(DeltaOp::AddedNode(o));
        o
    }

    /// Add an edge, checking typing and endpoint presence.
    pub fn add_edge(&mut self, e: Edge) -> Result<bool> {
        let added = self.instance.add_edge(e)?;
        if added {
            self.record(DeltaOp::AddedEdge(e));
        }
        Ok(added)
    }

    /// Convenience: add an edge by components.
    pub fn link(&mut self, src: Oid, prop: PropId, dst: Oid) -> Result<bool> {
        self.add_edge(Edge::new(src, prop, dst))
    }

    /// Remove an edge. Returns `true` when it was present.
    pub fn remove_edge(&mut self, e: &Edge) -> bool {
        let removed = self.instance.remove_edge(e);
        if removed {
            self.record(DeltaOp::RemovedEdge(*e));
        }
        removed
    }

    /// Remove an object and its incident edges (cf.
    /// [`Instance::remove_object_cascade`]).
    pub fn remove_object_cascade(&mut self, o: Oid) -> bool {
        if !self.instance.contains_node(o) {
            return false;
        }
        let incident: Vec<Edge> = self.instance.edges_incident(o).collect();
        for e in &incident {
            self.instance.remove_edge(e);
            self.record(DeltaOp::RemovedEdge(*e));
        }
        self.instance.partial_mut().remove_node(o);
        self.record(DeltaOp::RemovedNode(o));
        true
    }

    /// Keep all edits; the log is discarded. Returns the edit count.
    pub fn commit(mut self) -> usize {
        self.finished = true;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.batch_committed(&self.log);
            obs.batch_end();
        }
        std::mem::take(&mut self.log).len()
    }

    /// Keep all edits and *append* the log to `out`, so a caller can later
    /// undo a whole sequence of committed transactions with [`undo_ops`].
    /// Returns this transaction's edit count.
    pub fn commit_into(mut self, out: &mut Vec<DeltaOp>) -> usize {
        self.finished = true;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.batch_committed(&self.log);
            obs.batch_end();
        }
        let n = self.log.len();
        out.append(&mut self.log);
        n
    }

    /// Undo all edits in reverse order, restoring the exact pre-transaction
    /// instance.
    pub fn rollback(mut self) {
        self.undo();
    }

    fn undo(&mut self) {
        self.finished = true;
        let partial = self.instance.partial_mut();
        for op in std::mem::take(&mut self.log).into_iter().rev() {
            undo_op(partial, &op);
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.undone(&op);
            }
        }
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.batch_end();
        }
        debug_assert!(partial.is_instance(), "rollback restored a non-instance");
    }
}

impl Drop for InstanceTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.undo();
        }
    }
}

/// Apply the inverse of one op.
fn undo_op(partial: &mut PartialInstance, op: &DeltaOp) {
    match *op {
        // Reverse replay guarantees any edge incident to an added
        // node was logged later and is already gone, so the bare
        // node removal cannot dangle.
        DeltaOp::AddedNode(o) => {
            partial.remove_node(o);
        }
        DeltaOp::RemovedNode(o) => {
            partial.insert_node(o);
        }
        DeltaOp::AddedEdge(e) => {
            partial.remove_edge(&e);
        }
        DeltaOp::RemovedEdge(e) => {
            partial
                .insert_edge(e)
                .expect("edge was typed when originally present");
        }
    }
}

/// Undo an externally held delta log (as accumulated by
/// [`InstanceTxn::commit_into`]) in reverse order, notifying `observer` of
/// each reversal. Restores the instance — and any view maintained by the
/// observer — to the exact state before the first logged edit.
pub fn undo_ops(instance: &mut Instance, observer: &mut dyn DeltaObserver, ops: &[DeltaOp]) {
    let partial = instance.partial_mut();
    for op in ops.iter().rev() {
        undo_op(partial, op);
        observer.undone(op);
    }
    observer.batch_end();
    debug_assert!(partial.is_instance(), "undo_ops restored a non-instance");
}

/// Replay an externally produced delta log *forwards*, notifying
/// `observer` of each op — the commit half of a sharded application: each
/// worker records the ops its receivers would have logged under an
/// observed transaction, and the merge replays every shard's log into the
/// real instance in `commit_into` order.
///
/// Unlike a transaction commit this does **not** fire
/// [`DeltaObserver::batch_end`]: the caller batches — typically once per
/// shard — so a maintained view consolidates each shard's log as one
/// netted burst. Every op must be *effective* (add an absent item, remove
/// a present one), which holds whenever the log was derived against a
/// faithful replica of the region of the instance it touches; replaying an
/// ineffective op would desynchronize instance and observer, so it panics.
pub fn redo_ops(instance: &mut Instance, observer: &mut dyn DeltaObserver, ops: &[DeltaOp]) {
    let partial = instance.partial_mut();
    for op in ops {
        let effective = match *op {
            DeltaOp::AddedNode(o) => partial.insert_node(o),
            DeltaOp::RemovedNode(o) => partial.remove_node(o),
            DeltaOp::AddedEdge(e) => partial
                .insert_edge(e)
                .expect("edge was typed when originally logged"),
            DeltaOp::RemovedEdge(e) => partial.remove_edge(&e),
        };
        assert!(effective, "redo of ineffective op {op:?}");
        observer.applied(op);
    }
    debug_assert!(partial.is_instance(), "redo_ops produced a non-instance");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{beer_schema, figure2};

    #[test]
    fn commit_keeps_edits() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let before_edges = i.edge_count();
        let mut txn = InstanceTxn::begin(&mut i);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        assert_eq!(txn.op_count(), 3);
        txn.commit();
        assert_eq!(i.edge_count(), before_edges);
        assert!(i.contains_node(fresh));
        assert!(!i.contains_edge(&Edge::new(o.d1, s.frequents, o.bar1)));
    }

    #[test]
    fn rollback_restores_exact_instance() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut txn = InstanceTxn::begin(&mut i);
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.remove_object_cascade(o.bar1);
        assert_ne!(txn.instance(), &snapshot);
        txn.rollback();
        assert_eq!(i, snapshot);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        {
            let mut txn = InstanceTxn::begin(&mut i);
            txn.remove_object_cascade(o.d1);
        }
        assert_eq!(i, snapshot);
    }

    #[test]
    fn noop_edits_are_not_logged() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut txn = InstanceTxn::begin(&mut i);
        assert!(!txn.add_object(o.d1), "already present");
        assert!(!txn.remove_edge(&Edge::new(o.d1, s.likes, o.bar1)));
        assert_eq!(txn.op_count(), 0);
        txn.commit();
    }

    /// `redo_ops` of a committed log reproduces the exact post-commit
    /// instance, and `undo_ops` of the same log restores the original —
    /// the round-trip the sharded merge relies on.
    #[test]
    fn redo_ops_replays_a_committed_log_forwards() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut log = Vec::new();
        let mut txn = InstanceTxn::begin(&mut i);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.commit_into(&mut log);
        let applied = i.clone();

        undo_ops(&mut i, &mut crate::view::NullObserver, &log);
        assert_eq!(i, snapshot);
        redo_ops(&mut i, &mut crate::view::NullObserver, &log);
        assert_eq!(i, applied);
        i.check_index_consistent();
    }

    /// Replaying an op that is not effective (here: re-adding a present
    /// edge) must panic rather than silently desynchronize instance and
    /// observer.
    #[test]
    #[should_panic(expected = "redo of ineffective op")]
    fn redo_ops_rejects_ineffective_ops() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let present = DeltaOp::AddedEdge(Edge::new(o.d1, s.frequents, o.bar1));
        redo_ops(&mut i, &mut crate::view::NullObserver, &[present]);
    }

    #[test]
    fn commit_into_accumulates_and_undo_ops_restores() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let snapshot = i.clone();
        let mut seq_log = Vec::new();
        let mut txn = InstanceTxn::begin(&mut i);
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        assert_eq!(txn.commit_into(&mut seq_log), 2);
        let mut txn = InstanceTxn::begin(&mut i);
        txn.remove_object_cascade(o.bar2);
        txn.commit_into(&mut seq_log);
        assert_ne!(i, snapshot);
        undo_ops(&mut i, &mut crate::view::NullObserver, &seq_log);
        assert_eq!(i, snapshot);
        i.check_index_consistent();
    }
}
