//! Typed object identifiers.
//!
//! The paper assumes "for each class name `C` there is a universe of objects
//! of type `C`, such that different class names have disjoint universes"
//! (Section 2). We realise this by making the class id part of the object
//! identity: two [`Oid`]s with different classes are distinct values, so the
//! disjointness dependency of Section 5.1 holds by construction.

use std::fmt;

use crate::schema::ClassId;

/// An object identifier: the `n`-th object of the universe of class `class`.
///
/// The node labeling function λ of Definition 2.2 is [`Oid::class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Oid {
    /// The class (= type λ(o)) of the object.
    pub class: ClassId,
    /// Index within the class universe.
    pub index: u32,
}

impl Oid {
    /// The `index`-th object of class `class`.
    pub const fn new(class: ClassId, index: u32) -> Self {
        Self { class, index }
    }

    /// The type λ(o) of this object.
    pub const fn class(self) -> ClassId {
        self.class
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}#{}", self.class.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universes_are_disjoint() {
        let a = Oid::new(ClassId(0), 7);
        let b = Oid::new(ClassId(1), 7);
        assert_ne!(a, b);
        assert_eq!(a.class(), ClassId(0));
    }

    #[test]
    fn ordering_is_class_major() {
        let a = Oid::new(ClassId(0), 9);
        let b = Oid::new(ClassId(1), 0);
        assert!(a < b);
    }
}
