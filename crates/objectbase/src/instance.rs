//! Object-base instances (Definition 2.2): finite labeled directed graphs
//! whose nodes are objects and whose edges instantiate schema edges, with
//! *no dangling edges*.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::error::{ObjectBaseError, Result};
use crate::item::{Edge, Item};
use crate::oid::Oid;
use crate::partial::PartialInstance;
use crate::schema::{ClassId, PropId, Schema, SchemaItem};

/// A validated instance: a [`PartialInstance`] whose every edge has both
/// endpoints present.
///
/// `Instance` dereferences to [`PartialInstance`] for all read-only item-set
/// operations; mutation goes through the checked methods below, which
/// preserve the invariant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instance {
    inner: PartialInstance,
}

impl Instance {
    /// The empty instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            inner: PartialInstance::empty(schema),
        }
    }

    /// Validate a partial instance as an instance.
    pub fn from_partial(partial: PartialInstance) -> Result<Self> {
        if let Some(e) = partial
            .edges()
            .find(|e| !partial.contains_node(e.src) || !partial.contains_node(e.dst))
        {
            return Err(ObjectBaseError::DanglingEdge {
                property: partial.schema().prop_name(e.prop).to_owned(),
            });
        }
        Ok(Self { inner: partial })
    }

    pub(crate) fn from_partial_unchecked(partial: PartialInstance) -> Self {
        debug_assert!(partial.is_instance());
        Self { inner: partial }
    }

    /// View as a partial instance.
    pub fn as_partial(&self) -> &PartialInstance {
        &self.inner
    }

    /// Raw mutable access for the transaction log's rollback path, which
    /// must bypass the no-dangling-edges checks while replaying inverses.
    pub(crate) fn partial_mut(&mut self) -> &mut PartialInstance {
        &mut self.inner
    }

    /// Convert into the underlying partial instance.
    pub fn into_partial(self) -> PartialInstance {
        self.inner
    }

    /// Add an object node. Returns `true` when newly inserted.
    pub fn add_object(&mut self, o: Oid) -> bool {
        self.inner.insert_node(o)
    }

    /// Allocate a fresh object of class `class`: one past the largest index
    /// used by that class in this instance. `O(log n)`: the class-major
    /// [`Oid`] ordering makes each class a contiguous node range, so the
    /// largest member is one range probe away.
    pub fn fresh_object(&mut self, class: ClassId) -> Oid {
        let next = self
            .inner
            .class_members(class)
            .next_back()
            .map(|o| o.index + 1)
            .unwrap_or(0);
        let o = Oid::new(class, next);
        self.inner.insert_node(o);
        o
    }

    /// Add an edge, checking typing *and* endpoint presence.
    pub fn add_edge(&mut self, e: Edge) -> Result<bool> {
        if !self.inner.contains_node(e.src) || !self.inner.contains_node(e.dst) {
            return Err(ObjectBaseError::DanglingEdge {
                property: self.schema().prop_name(e.prop).to_owned(),
            });
        }
        self.inner.insert_edge(e)
    }

    /// Convenience: add edge by components.
    pub fn link(&mut self, src: Oid, prop: PropId, dst: Oid) -> Result<bool> {
        self.add_edge(Edge::new(src, prop, dst))
    }

    /// Remove an edge.
    pub fn remove_edge(&mut self, e: &Edge) -> bool {
        self.inner.remove_edge(e)
    }

    /// Remove an object together with all its incident edges, preserving
    /// the instance invariant (cf. the "automatic deletions" discussed after
    /// Lemma 4.11).
    pub fn remove_object_cascade(&mut self, o: Oid) -> bool {
        if !self.inner.contains_node(o) {
            return false;
        }
        // The adjacency indices hand us exactly the incident edges instead
        // of a full edge scan.
        let incident: Vec<Edge> = self.inner.edges_incident(o).collect();
        for e in &incident {
            self.inner.remove_edge(e);
        }
        self.inner.remove_node(o)
    }

    /// All objects of class `c` ("the class `C`" of Definition 2.2), via a
    /// contiguous range of the node set.
    pub fn class_members(&self, c: ClassId) -> impl DoubleEndedIterator<Item = Oid> + '_ {
        self.inner.class_members(c)
    }

    /// Objects reachable from `o` via property `p`, via the forward index.
    pub fn successors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.inner.successors(o, p)
    }

    /// Objects with a `p`-edge into `o`, via the reverse index.
    pub fn predecessors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.inner.predecessors(o, p)
    }

    /// Edges labeled `p`, via the per-property index.
    pub fn edges_labeled(&self, p: PropId) -> impl Iterator<Item = Edge> + '_ {
        self.inner.edges_labeled(p)
    }

    /// Edges incident to object `o` (either endpoint), via both adjacency
    /// indices.
    pub fn edges_incident(&self, o: Oid) -> impl Iterator<Item = Edge> + '_ {
        self.inner.edges_incident(o)
    }

    /// Restriction `I|X` (Definition 4.5). The result is a *partial*
    /// instance: removing nodes may leave edges dangling when `X` contains
    /// an edge label but not an incident node label.
    pub fn restrict(&self, allowed: &BTreeSet<SchemaItem>) -> PartialInstance {
        self.inner.restrict(allowed)
    }

    /// Restriction followed by `G`, convenient when `X` is closed under
    /// incident nodes (the condition of Definition 4.7, under which the
    /// restriction is always an instance).
    pub fn restrict_to_instance(&self, allowed: &BTreeSet<SchemaItem>) -> Instance {
        self.inner.restrict(allowed).largest_instance()
    }

    /// Item-wise union with a partial instance, then `G` — the combination
    /// pattern `G(M(I|X, t) ∪ (I − I|X))` of Definition 4.7.
    pub fn union_g(&self, other: &PartialInstance) -> Result<Instance> {
        Ok(self.inner.union(other)?.largest_instance())
    }
}

impl Deref for Instance {
    type Target = PartialInstance;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("nodes", &self.inner.nodes().collect::<Vec<_>>())
            .field("edges", &self.inner.edges().collect::<Vec<_>>())
            .finish()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instance {{")?;
        for o in self.inner.nodes() {
            writeln!(f, "  {}", Item::Node(o).display(self.schema()))?;
        }
        for e in self.inner.edges() {
            writeln!(f, "  {}", Item::Edge(e).display(self.schema()))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beer_schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let d = b.class("Drinker").unwrap();
        let bar = b.class("Bar").unwrap();
        let beer = b.class("Beer").unwrap();
        b.property(d, "frequents", bar).unwrap();
        b.property(d, "likes", beer).unwrap();
        b.property(bar, "serves", beer).unwrap();
        b.build()
    }

    #[test]
    fn add_edge_requires_endpoints() {
        let s = beer_schema();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let f = s.prop("frequents").unwrap();
        let mut i = Instance::empty(Arc::clone(&s));
        let drinker = Oid::new(d, 0);
        let b0 = Oid::new(bar, 0);
        i.add_object(drinker);
        assert!(matches!(
            i.link(drinker, f, b0),
            Err(ObjectBaseError::DanglingEdge { .. })
        ));
        i.add_object(b0);
        assert!(i.link(drinker, f, b0).unwrap());
        assert!(!i.link(drinker, f, b0).unwrap()); // set semantics
    }

    #[test]
    fn cascade_removal_keeps_invariant() {
        let s = beer_schema();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let f = s.prop("frequents").unwrap();
        let mut i = Instance::empty(Arc::clone(&s));
        let drinker = Oid::new(d, 0);
        let b0 = Oid::new(bar, 0);
        i.add_object(drinker);
        i.add_object(b0);
        i.link(drinker, f, b0).unwrap();
        assert!(i.remove_object_cascade(b0));
        assert!(i.as_partial().is_instance());
        assert_eq!(i.edge_count(), 0);
    }

    #[test]
    fn fresh_objects_do_not_collide() {
        let s = beer_schema();
        let bar = s.class("Bar").unwrap();
        let mut i = Instance::empty(Arc::clone(&s));
        i.add_object(Oid::new(bar, 5));
        let fresh = i.fresh_object(bar);
        assert_eq!(fresh.index, 6);
        assert!(i.contains_node(fresh));
    }

    #[test]
    fn class_members_and_successors() {
        let s = beer_schema();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let f = s.prop("frequents").unwrap();
        let mut i = Instance::empty(Arc::clone(&s));
        let drinker = Oid::new(d, 0);
        i.add_object(drinker);
        let bars: Vec<Oid> = (0..3).map(|k| Oid::new(bar, k)).collect();
        for &b in &bars {
            i.add_object(b);
        }
        i.link(drinker, f, bars[0]).unwrap();
        i.link(drinker, f, bars[2]).unwrap();
        assert_eq!(i.class_members(bar).count(), 3);
        let succ: Vec<_> = i.successors(drinker, f).collect();
        assert_eq!(succ, vec![bars[0], bars[2]]);
    }

    #[test]
    fn from_partial_validates() {
        let s = beer_schema();
        let d = s.class("Drinker").unwrap();
        let bar = s.class("Bar").unwrap();
        let f = s.prop("frequents").unwrap();
        let mut j = PartialInstance::empty(Arc::clone(&s));
        j.insert_edge(Edge::new(Oid::new(d, 0), f, Oid::new(bar, 0)))
            .unwrap();
        assert!(Instance::from_partial(j.clone()).is_err());
        j.insert_node(Oid::new(d, 0));
        j.insert_node(Oid::new(bar, 0));
        assert!(Instance::from_partial(j).is_ok());
    }
}
