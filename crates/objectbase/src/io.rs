//! Plain-text persistence for schemas and instances.
//!
//! A small, diff-friendly line format so object bases can be saved,
//! versioned and reloaded (examples and downstream tools use it; the
//! property test `round_trip` guarantees losslessness):
//!
//! ```text
//! # receivers object-base v1
//! class Drinker
//! class Bar
//! property frequents Drinker Bar
//! node Drinker 1
//! node Bar 3
//! edge frequents 1 3
//! ```
//!
//! Edge lines reference source/target objects by index; their classes are
//! implied by the property declaration. Blank lines and `#` comments are
//! ignored.

use std::sync::Arc;

use crate::error::{ObjectBaseError, Result};
use crate::instance::Instance;
use crate::item::Edge;
use crate::oid::Oid;
use crate::schema::{Schema, SchemaBuilder};

/// Header line written by [`to_text`] and required by [`from_text`].
pub const HEADER: &str = "# receivers object-base v1";

/// Serialize an instance (with its schema) to the text format.
pub fn to_text(instance: &Instance) -> String {
    let schema = instance.schema();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for c in schema.classes() {
        out.push_str(&format!("class {}\n", schema.class_name(c)));
    }
    for p in schema.properties() {
        let prop = schema.property(p);
        out.push_str(&format!(
            "property {} {} {}\n",
            prop.name,
            schema.class_name(prop.src),
            schema.class_name(prop.dst)
        ));
    }
    for o in instance.nodes() {
        out.push_str(&format!(
            "node {} {}\n",
            schema.class_name(o.class),
            o.index
        ));
    }
    for e in instance.edges() {
        out.push_str(&format!(
            "edge {} {} {}\n",
            schema.prop_name(e.prop),
            e.src.index,
            e.dst.index
        ));
    }
    out
}

fn parse_error(line_no: usize, detail: &str) -> ObjectBaseError {
    ObjectBaseError::IllTypedEdge {
        property: format!("<line {line_no}>"),
        detail: detail.to_owned(),
    }
}

/// Parse the text format back into a schema and instance.
pub fn from_text(text: &str) -> Result<Instance> {
    let mut lines = text.lines().enumerate();
    // Header.
    let header = lines
        .by_ref()
        .map(|(_, l)| l.trim())
        .find(|l| !l.is_empty())
        .unwrap_or("");
    if header != HEADER {
        return Err(parse_error(1, "missing or unrecognized header"));
    }

    // Two passes are avoided by deferring node/edge lines until the
    // schema is complete: collect declarations first.
    let mut builder = SchemaBuilder::default();
    let mut deferred: Vec<(usize, Vec<String>)> = Vec::new();
    let mut schema: Option<Arc<Schema>> = None;
    let mut instance: Option<Instance> = None;

    let freeze = |builder: SchemaBuilder| -> (Arc<Schema>, Instance) {
        let s = builder.build();
        (Arc::clone(&s), Instance::empty(s))
    };

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        match tokens[0].as_str() {
            "class" => {
                if schema.is_some() {
                    return Err(parse_error(line_no, "class after instance data"));
                }
                if tokens.len() != 2 {
                    return Err(parse_error(line_no, "class expects one name"));
                }
                builder.class(tokens[1].clone())?;
            }
            "property" => {
                if schema.is_some() {
                    return Err(parse_error(line_no, "property after instance data"));
                }
                if tokens.len() != 4 {
                    return Err(parse_error(line_no, "property expects name src dst"));
                }
                // Classes must already be declared; find their ids by
                // rebuilding the index from the builder via a temp pass is
                // awkward, so defer properties? Simpler: builder tracks
                // names — we re-resolve through a probe build at the end.
                deferred.push((line_no, tokens));
            }
            "node" | "edge" => {
                if schema.is_none() {
                    // First pass the deferred property declarations.
                    for (ln, toks) in deferred.drain(..) {
                        // Resolve against the classes declared so far by
                        // probing a clone of the final name set.
                        let src = probe_class(&builder, &toks[2])
                            .ok_or_else(|| parse_error(ln, "unknown class in property"))?;
                        let dst = probe_class(&builder, &toks[3])
                            .ok_or_else(|| parse_error(ln, "unknown class in property"))?;
                        builder.property(src, toks[1].clone(), dst)?;
                    }
                    let (s, i) = freeze(std::mem::take(&mut builder));
                    schema = Some(s);
                    instance = Some(i);
                }
                let s = schema.as_ref().expect("just set");
                let i = instance.as_mut().expect("just set");
                if tokens[0] == "node" {
                    if tokens.len() != 3 {
                        return Err(parse_error(line_no, "node expects class index"));
                    }
                    let class = s.class_checked(&tokens[1])?;
                    let index: u32 = tokens[2]
                        .parse()
                        .map_err(|_| parse_error(line_no, "bad node index"))?;
                    i.add_object(Oid::new(class, index));
                } else {
                    if tokens.len() != 4 {
                        return Err(parse_error(line_no, "edge expects prop src dst"));
                    }
                    let prop = s.prop_checked(&tokens[1])?;
                    let def = s.property(prop).clone();
                    let src: u32 = tokens[2]
                        .parse()
                        .map_err(|_| parse_error(line_no, "bad edge source index"))?;
                    let dst: u32 = tokens[3]
                        .parse()
                        .map_err(|_| parse_error(line_no, "bad edge target index"))?;
                    i.add_edge(Edge::new(
                        Oid::new(def.src, src),
                        prop,
                        Oid::new(def.dst, dst),
                    ))?;
                }
            }
            other => {
                return Err(parse_error(
                    line_no,
                    &format!("unknown directive `{other}`"),
                ))
            }
        }
    }

    match (schema, instance) {
        (Some(_), Some(i)) => Ok(i),
        _ => {
            // Schema-only file: finish deferred properties and return the
            // empty instance.
            for (ln, toks) in deferred {
                let src = probe_class(&builder, &toks[2])
                    .ok_or_else(|| parse_error(ln, "unknown class in property"))?;
                let dst = probe_class(&builder, &toks[3])
                    .ok_or_else(|| parse_error(ln, "unknown class in property"))?;
                builder.property(src, toks[1].clone(), dst)?;
            }
            let (_, i) = freeze(builder);
            Ok(i)
        }
    }
}

/// Resolve a class name against a builder-in-progress. `SchemaBuilder`
/// assigns ids in declaration order, so a probe build of the names seen
/// so far yields the same ids the final build will.
fn probe_class(builder: &SchemaBuilder, name: &str) -> Option<crate::schema::ClassId> {
    builder.declared_class(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{beer_schema, figure1, figure2};
    use crate::gen::{random_instance, random_schema, InstanceParams, SchemaParams};

    #[test]
    fn round_trip_figures() {
        let s = beer_schema();
        for i in [figure1(&s), figure2(&s).0] {
            let text = to_text(&i);
            let back = from_text(&text).unwrap();
            assert_eq!(back, i);
            assert_eq!(*back.schema(), *i.schema());
        }
    }

    #[test]
    fn round_trip_random() {
        for seed in 0..10u64 {
            let schema = random_schema(
                SchemaParams {
                    classes: 4,
                    properties: 5,
                },
                seed,
            );
            let i = random_instance(
                &schema,
                InstanceParams {
                    objects_per_class: 3,
                    edge_density: 0.4,
                },
                seed ^ 0x10,
            );
            let back = from_text(&to_text(&i)).unwrap();
            assert_eq!(back, i);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_text("").is_err());
        assert!(from_text("# wrong header\nclass A\n").is_err());
        let s = format!("{HEADER}\nclass A\nnode B 0\n");
        assert!(from_text(&s).is_err()); // unknown class B
        let s = format!("{HEADER}\nclass A\nfrobnicate A\n");
        assert!(from_text(&s).is_err()); // unknown directive
        let s = format!("{HEADER}\nproperty e A B\nnode A 0\n");
        assert!(from_text(&s).is_err()); // property over undeclared classes
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = beer_schema();
        let (i, _) = figure2(&s);
        let mut text = to_text(&i);
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(from_text(&text).unwrap(), i);
    }

    #[test]
    fn schema_only_file_gives_empty_instance() {
        let text = format!("{HEADER}\nclass A\nclass B\nproperty e A B\n");
        let i = from_text(&text).unwrap();
        assert_eq!(i.node_count(), 0);
        assert_eq!(i.schema().property_count(), 1);
    }
}
