//! The extended object data model of footnote 1: inheritance (ISA) and a
//! distinction between single- and multi-valued properties, following the
//! model the paper attributes to [Cabibbo 1996] ("many of our results
//! also hold for a more involved object data model featuring inheritance
//! and a distinction between single- and multi-valued properties").
//!
//! * An [`ExtSchema`] adds to the plain schema an acyclic ISA relation
//!   between classes and a multiplicity per property.
//! * An [`ExtInstance`] labels each object with its *most specific*
//!   class; an edge `(o, e, p)` is well typed when `λ(o)` is a (possibly
//!   indirect) subclass of `e`'s declared source and `λ(p)` of its
//!   declared target. Single-valued properties admit at most one outgoing
//!   edge per object.
//! * [`ExtInstance::flatten`] reduces the extended model to the plain one
//!   — each property `(B, e, C)` is expanded into one plain property per
//!   subclass pair `(B' ⊑ B, C' ⊑ C)` — so the whole analysis stack
//!   (colorings, algebraic methods, decision procedures) applies to
//!   extended schemas unchanged, which is how the footnote's claim is
//!   realized here.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::error::{ObjectBaseError, Result};
use crate::instance::Instance;
use crate::item::Edge;
use crate::oid::Oid;
use crate::schema::{ClassId, PropId, Schema, SchemaBuilder};

/// Multiplicity of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// At most one value per object.
    Single,
    /// Any number of values.
    Multi,
}

/// An extended schema: classes, ISA edges, and typed properties with
/// multiplicities.
#[derive(Debug, Clone)]
pub struct ExtSchema {
    class_names: Vec<String>,
    /// `isa[sub]` = direct superclasses.
    isa: Vec<Vec<ClassId>>,
    properties: Vec<ExtProperty>,
}

/// An extended property declaration.
#[derive(Debug, Clone)]
pub struct ExtProperty {
    /// The property name.
    pub name: String,
    /// Declared source class.
    pub src: ClassId,
    /// Declared target class.
    pub dst: ClassId,
    /// Multiplicity.
    pub multiplicity: Multiplicity,
}

/// Builder for [`ExtSchema`].
#[derive(Debug, Default)]
pub struct ExtSchemaBuilder {
    class_names: Vec<String>,
    isa: Vec<Vec<ClassId>>,
    properties: Vec<ExtProperty>,
}

impl ExtSchemaBuilder {
    /// Declare a class.
    pub fn class(&mut self, name: impl Into<String>) -> Result<ClassId> {
        let name = name.into();
        if self.class_names.contains(&name) {
            return Err(ObjectBaseError::DuplicateClass(name));
        }
        let id = ClassId(self.class_names.len() as u32);
        self.class_names.push(name);
        self.isa.push(Vec::new());
        Ok(id)
    }

    /// Declare `sub ISA sup`. Cycles are rejected at [`Self::build`].
    pub fn isa(&mut self, sub: ClassId, sup: ClassId) -> &mut Self {
        if !self.isa[sub.0 as usize].contains(&sup) {
            self.isa[sub.0 as usize].push(sup);
        }
        self
    }

    /// Declare a property.
    pub fn property(
        &mut self,
        src: ClassId,
        name: impl Into<String>,
        dst: ClassId,
        multiplicity: Multiplicity,
    ) -> Result<PropId> {
        let name = name.into();
        if self.properties.iter().any(|p| p.name == name) {
            return Err(ObjectBaseError::DuplicateProperty(name));
        }
        let id = PropId(self.properties.len() as u32);
        self.properties.push(ExtProperty {
            name,
            src,
            dst,
            multiplicity,
        });
        Ok(id)
    }

    /// Finish, rejecting ISA cycles.
    pub fn build(self) -> Result<Arc<ExtSchema>> {
        // Cycle detection via DFS colors.
        let n = self.class_names.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        fn dfs(v: usize, isa: &[Vec<ClassId>], state: &mut [u8]) -> bool {
            state[v] = 1;
            for &s in &isa[v] {
                let tag = state[s.0 as usize];
                if tag == 1 || (tag == 0 && !dfs(s.0 as usize, isa, state)) {
                    return false;
                }
            }
            state[v] = 2;
            true
        }
        for v in 0..n {
            if state[v] == 0 && !dfs(v, &self.isa, &mut state) {
                return Err(ObjectBaseError::DuplicateClass(format!(
                    "ISA cycle through `{}`",
                    self.class_names[v]
                )));
            }
        }
        Ok(Arc::new(ExtSchema {
            class_names: self.class_names,
            isa: self.isa,
            properties: self.properties,
        }))
    }
}

impl ExtSchema {
    /// Start building.
    pub fn builder() -> ExtSchemaBuilder {
        ExtSchemaBuilder::default()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// The name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.0 as usize]
    }

    /// The properties.
    pub fn properties(&self) -> &[ExtProperty] {
        &self.properties
    }

    /// Property definition.
    pub fn property(&self, p: PropId) -> &ExtProperty {
        &self.properties[p.0 as usize]
    }

    /// Reflexive-transitive ISA: is `sub` a subclass of `sup`?
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for &s in &self.isa[c.0 as usize] {
                if s == sup {
                    return true;
                }
                stack.push(s);
            }
        }
        false
    }

    /// All subclasses of `c` (including `c`).
    pub fn subclasses(&self, c: ClassId) -> Vec<ClassId> {
        (0..self.class_names.len() as u32)
            .map(ClassId)
            .filter(|&s| self.is_subclass(s, c))
            .collect()
    }
}

/// An instance of an extended schema: each object carries its most
/// specific class; edges are typed up to ISA; single-valued properties
/// are functional. Equality is structural on the item sets.
#[derive(Debug, Clone)]
pub struct ExtInstance {
    schema: Arc<ExtSchema>,
    nodes: BTreeSet<Oid>,
    edges: BTreeSet<Edge>,
}

impl ExtInstance {
    /// The empty instance.
    pub fn empty(schema: Arc<ExtSchema>) -> Self {
        Self {
            schema,
            nodes: BTreeSet::new(),
            edges: BTreeSet::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<ExtSchema> {
        &self.schema
    }

    /// Add an object (its [`Oid::class`] is its most specific class).
    pub fn add_object(&mut self, o: Oid) -> bool {
        self.nodes.insert(o)
    }

    /// Add an edge, checking ISA-typing, endpoint presence and
    /// single-valuedness.
    pub fn add_edge(&mut self, e: Edge) -> Result<bool> {
        let prop = self.schema.property(e.prop);
        if !self.schema.is_subclass(e.src.class, prop.src)
            || !self.schema.is_subclass(e.dst.class, prop.dst)
        {
            return Err(ObjectBaseError::IllTypedEdge {
                property: prop.name.clone(),
                detail: format!(
                    "expected (a subclass of) {} -> {}, got {} -> {}",
                    self.schema.class_name(prop.src),
                    self.schema.class_name(prop.dst),
                    self.schema.class_name(e.src.class),
                    self.schema.class_name(e.dst.class),
                ),
            });
        }
        if !self.nodes.contains(&e.src) || !self.nodes.contains(&e.dst) {
            return Err(ObjectBaseError::DanglingEdge {
                property: prop.name.clone(),
            });
        }
        if prop.multiplicity == Multiplicity::Single
            && self
                .edges
                .iter()
                .any(|x| x.src == e.src && x.prop == e.prop && x.dst != e.dst)
        {
            return Err(ObjectBaseError::IllTypedEdge {
                property: prop.name.clone(),
                detail: format!("single-valued property already set for {}", e.src),
            });
        }
        Ok(self.edges.insert(e))
    }

    /// Members of class `c` *up to ISA*: objects whose most specific
    /// class is a subclass of `c`.
    pub fn members_of(&self, c: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.nodes
            .iter()
            .copied()
            .filter(move |o| self.schema.is_subclass(o.class, c))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Flatten into the plain model: each extended property `(B, e, C)`
    /// becomes one plain property `e@B'→C'` per subclass pair, and each
    /// edge is routed to the expanded property matching its endpoints'
    /// most specific classes. Returns the plain schema, the plain
    /// instance, and the mapping `(extended prop, src class, dst class) →
    /// plain prop`.
    pub fn flatten(&self) -> Result<FlattenedModel> {
        let mut b = SchemaBuilder::default();
        let mut class_map: BTreeMap<ClassId, ClassId> = BTreeMap::new();
        for c in 0..self.schema.class_count() as u32 {
            let plain = b.class(self.schema.class_name(ClassId(c)))?;
            class_map.insert(ClassId(c), plain);
        }
        let mut prop_map: BTreeMap<(PropId, ClassId, ClassId), PropId> = BTreeMap::new();
        for (pi, prop) in self.schema.properties().iter().enumerate() {
            let p = PropId(pi as u32);
            for &src_sub in &self.schema.subclasses(prop.src) {
                for &dst_sub in &self.schema.subclasses(prop.dst) {
                    let label = format!(
                        "{}@{}→{}",
                        prop.name,
                        self.schema.class_name(src_sub),
                        self.schema.class_name(dst_sub)
                    );
                    let plain = b.property(class_map[&src_sub], label, class_map[&dst_sub])?;
                    prop_map.insert((p, src_sub, dst_sub), plain);
                }
            }
        }
        let plain_schema = b.build();
        let mut instance = Instance::empty(Arc::clone(&plain_schema));
        for &o in &self.nodes {
            instance.add_object(Oid::new(class_map[&o.class], o.index));
        }
        for e in &self.edges {
            let plain_prop = prop_map[&(e.prop, e.src.class, e.dst.class)];
            instance.add_edge(Edge::new(
                Oid::new(class_map[&e.src.class], e.src.index),
                plain_prop,
                Oid::new(class_map[&e.dst.class], e.dst.index),
            ))?;
        }
        Ok(FlattenedModel {
            schema: plain_schema,
            instance,
            prop_map,
        })
    }
}

impl PartialEq for ExtInstance {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for ExtInstance {}

/// The result of flattening an extended instance.
pub struct FlattenedModel {
    /// The plain schema with expanded properties.
    pub schema: Arc<Schema>,
    /// The plain instance.
    pub instance: Instance,
    /// `(extended property, most-specific src, most-specific dst)` →
    /// plain property.
    pub prop_map: BTreeMap<(PropId, ClassId, ClassId), PropId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Person ⊒ Employee; `manages : Employee → Person` multi;
    /// `worksAt : Employee → Company` single.
    fn office() -> (Arc<ExtSchema>, ClassId, ClassId, ClassId, PropId, PropId) {
        let mut b = ExtSchema::builder();
        let person = b.class("Person").unwrap();
        let employee = b.class("Employee").unwrap();
        let company = b.class("Company").unwrap();
        b.isa(employee, person);
        let manages = b
            .property(employee, "manages", person, Multiplicity::Multi)
            .unwrap();
        let works_at = b
            .property(employee, "worksAt", company, Multiplicity::Single)
            .unwrap();
        let s = b.build().unwrap();
        (s, person, employee, company, manages, works_at)
    }

    #[test]
    fn isa_is_reflexive_transitive() {
        let (s, person, employee, company, _, _) = office();
        assert!(s.is_subclass(employee, person));
        assert!(s.is_subclass(person, person));
        assert!(!s.is_subclass(person, employee));
        assert!(!s.is_subclass(company, person));
        assert_eq!(s.subclasses(person), vec![person, employee]);
    }

    #[test]
    fn isa_cycles_rejected() {
        let mut b = ExtSchema::builder();
        let a = b.class("A").unwrap();
        let c = b.class("B").unwrap();
        b.isa(a, c);
        b.isa(c, a);
        assert!(b.build().is_err());
    }

    #[test]
    fn subclass_objects_fill_superclass_positions() {
        let (s, person, employee, _company, manages, _) = office();
        let mut i = ExtInstance::empty(Arc::clone(&s));
        let boss = Oid::new(employee, 0);
        let emp = Oid::new(employee, 1);
        let visitor = Oid::new(person, 0);
        for o in [boss, emp, visitor] {
            i.add_object(o);
        }
        // An Employee managing an Employee: ok (Employee ⊑ Person at the
        // target).
        assert!(i.add_edge(Edge::new(boss, manages, emp)).unwrap());
        // An Employee managing a plain Person: ok.
        assert!(i.add_edge(Edge::new(boss, manages, visitor)).unwrap());
        // A plain Person managing: ill-typed (source must be ⊑ Employee).
        assert!(i.add_edge(Edge::new(visitor, manages, emp)).is_err());
        // Membership up to ISA.
        assert_eq!(i.members_of(person).count(), 3);
        assert_eq!(i.members_of(employee).count(), 2);
    }

    #[test]
    fn single_valued_properties_are_functional() {
        let (s, _person, employee, company, _, works_at) = office();
        let mut i = ExtInstance::empty(Arc::clone(&s));
        let emp = Oid::new(employee, 0);
        let c1 = Oid::new(company, 0);
        let c2 = Oid::new(company, 1);
        for o in [emp, c1, c2] {
            i.add_object(o);
        }
        assert!(i.add_edge(Edge::new(emp, works_at, c1)).unwrap());
        // Re-adding the same value is a set-semantics no-op.
        assert!(!i.add_edge(Edge::new(emp, works_at, c1)).unwrap());
        // A second value violates single-valuedness.
        assert!(i.add_edge(Edge::new(emp, works_at, c2)).is_err());
    }

    #[test]
    fn flattening_preserves_structure() {
        let (s, person, employee, company, manages, works_at) = office();
        let mut i = ExtInstance::empty(Arc::clone(&s));
        let boss = Oid::new(employee, 0);
        let visitor = Oid::new(person, 0);
        let c1 = Oid::new(company, 0);
        for o in [boss, visitor, c1] {
            i.add_object(o);
        }
        i.add_edge(Edge::new(boss, manages, visitor)).unwrap();
        i.add_edge(Edge::new(boss, works_at, c1)).unwrap();

        let flat = i.flatten().unwrap();
        assert_eq!(flat.instance.node_count(), 3);
        assert_eq!(flat.instance.edge_count(), 2);
        // manages: Employee×{Person,Employee} = 2 expansions;
        // worksAt: Employee×Company = 1.
        assert_eq!(flat.schema.property_count(), 3);
        // The boss→visitor edge lands on the (manages, Employee, Person)
        // expansion.
        let plain_prop = flat.prop_map[&(manages, employee, person)];
        assert_eq!(flat.instance.edges_labeled(plain_prop).count(), 1);
        // The flattened instance is a valid plain instance — the whole
        // analysis stack applies.
        assert!(flat.instance.as_partial().is_instance());
    }
}
