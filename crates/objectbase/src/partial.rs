//! Partial instances (Definition 4.3) and the set-theoretic view of graphs.
//!
//! A *partial instance* is a subset of some instance, viewed as the set of
//! its items; it may contain "dangling edges" whose endpoints were removed.
//! The operator `G` (Definition 4.4) eliminates all dangling edges, yielding
//! the largest instance contained in the partial instance.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::{ObjectBaseError, Result};
use crate::index::EdgeIndex;
use crate::instance::Instance;
use crate::item::{Edge, Item};
use crate::oid::Oid;
use crate::schema::{ClassId, PropId, Schema, SchemaItem};

/// A possibly-dangling set of instance items over a fixed schema.
///
/// Equality, ordering and hashing are *structural* on the item sets, i.e. a
/// graph is identified with the set of its items (Definition 4.1 and the
/// remark following it). All operations require both operands to share the
/// same schema.
#[derive(Clone)]
pub struct PartialInstance {
    schema: Arc<Schema>,
    nodes: BTreeSet<Oid>,
    edges: EdgeIndex,
}

impl PartialInstance {
    /// The empty partial instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            nodes: BTreeSet::new(),
            edges: EdgeIndex::new(),
        }
    }

    /// The schema this partial instance is constrained by.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of items (nodes + edges).
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// True when there are no items at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over the nodes in canonical order.
    pub fn nodes(&self) -> impl Iterator<Item = Oid> + '_ {
        self.nodes.iter().copied()
    }

    /// Iterate over the edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter()
    }

    /// The adjacency indices backing the edge set, for direct index reads.
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edges
    }

    /// Edges labeled `p`, in the canonical order of a label-filtered scan.
    /// `O(log E + result)` via the per-property index.
    pub fn edges_labeled(&self, p: PropId) -> impl Iterator<Item = Edge> + '_ {
        self.edges.labeled(p)
    }

    /// The `(src, dst)` pairs of edges labeled `p`, ordered by `(src, dst)`.
    /// `O(log E + result)` via the per-property index, with no `Edge`
    /// re-construction — the shape relational views consume directly.
    pub fn edges_labeled_pairs(&self, p: PropId) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        self.edges.labeled_pairs(p)
    }

    /// Objects reachable from `o` via property `p`, ascending.
    /// `O(log E + result)` via the forward index.
    pub fn successors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.edges.successors(o, p)
    }

    /// Objects with a `p`-edge into `o`, ascending.
    /// `O(log E + result)` via the reverse index.
    pub fn predecessors(&self, o: Oid, p: PropId) -> impl Iterator<Item = Oid> + '_ {
        self.edges.predecessors(o, p)
    }

    /// Edges incident to `o` (either endpoint), in canonical order.
    /// `O(log E + d log d)` for degree `d`, via both adjacency indices.
    pub fn edges_incident(&self, o: Oid) -> impl Iterator<Item = Edge> + '_ {
        self.edges.incident(o)
    }

    /// Nodes of class `c`, ascending by index. `O(log N + result)`:
    /// [`Oid`]'s class-major ordering makes each class a contiguous range
    /// of the node set.
    pub fn class_members(&self, c: ClassId) -> impl DoubleEndedIterator<Item = Oid> + '_ {
        self.nodes
            .range(Oid::new(c, 0)..=Oid::new(c, u32::MAX))
            .copied()
    }

    /// Iterate over all items, nodes first.
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        self.nodes()
            .map(Item::Node)
            .chain(self.edges().map(Item::Edge))
    }

    /// Membership test for a node.
    pub fn contains_node(&self, o: Oid) -> bool {
        self.nodes.contains(&o)
    }

    /// Membership test for an edge.
    pub fn contains_edge(&self, e: &Edge) -> bool {
        self.edges.contains(e)
    }

    /// Membership test for an item.
    pub fn contains(&self, item: &Item) -> bool {
        match item {
            Item::Node(o) => self.contains_node(*o),
            Item::Edge(e) => self.contains_edge(e),
        }
    }

    /// Insert a node. Returns `true` when newly inserted.
    pub fn insert_node(&mut self, o: Oid) -> bool {
        self.nodes.insert(o)
    }

    /// Insert an edge after checking it is well typed against the schema.
    /// Endpoints need *not* be present: partial instances may dangle.
    pub fn insert_edge(&mut self, e: Edge) -> Result<bool> {
        let prop = self.schema.property(e.prop);
        if prop.src != e.src.class || prop.dst != e.dst.class {
            return Err(ObjectBaseError::IllTypedEdge {
                property: prop.name.clone(),
                detail: format!(
                    "expected {} -> {}, got {} -> {}",
                    self.schema.class_name(prop.src),
                    self.schema.class_name(prop.dst),
                    self.schema.class_name(e.src.class),
                    self.schema.class_name(e.dst.class),
                ),
            });
        }
        Ok(self.edges.insert(e))
    }

    /// Insert an arbitrary item (edge typing still checked).
    pub fn insert(&mut self, item: Item) -> Result<bool> {
        match item {
            Item::Node(o) => Ok(self.insert_node(o)),
            Item::Edge(e) => self.insert_edge(e),
        }
    }

    /// Remove a node *without* touching incident edges (they dangle).
    pub fn remove_node(&mut self, o: Oid) -> bool {
        self.nodes.remove(&o)
    }

    /// Remove an edge.
    pub fn remove_edge(&mut self, e: &Edge) -> bool {
        self.edges.remove(e)
    }

    /// Remove an arbitrary item.
    pub fn remove(&mut self, item: &Item) -> bool {
        match item {
            Item::Node(o) => self.remove_node(*o),
            Item::Edge(e) => self.remove_edge(e),
        }
    }

    fn check_same_schema(&self, other: &Self) -> Result<()> {
        if Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema {
            Ok(())
        } else {
            Err(ObjectBaseError::SchemaMismatch)
        }
    }

    /// Item-wise union (Section 4.1).
    pub fn union(&self, other: &Self) -> Result<Self> {
        self.check_same_schema(other)?;
        let (big, small) = if self.edge_count() >= other.edge_count() {
            (&self.edges, &other.edges)
        } else {
            (&other.edges, &self.edges)
        };
        let mut edges = big.clone();
        for e in small.iter() {
            edges.insert(e);
        }
        Ok(Self {
            schema: Arc::clone(&self.schema),
            nodes: self.nodes.union(&other.nodes).copied().collect(),
            edges,
        })
    }

    /// Item-wise difference (Section 4.1).
    pub fn difference(&self, other: &Self) -> Result<Self> {
        self.check_same_schema(other)?;
        Ok(Self {
            schema: Arc::clone(&self.schema),
            nodes: self.nodes.difference(&other.nodes).copied().collect(),
            edges: self
                .edges
                .iter()
                .filter(|e| !other.edges.contains(e))
                .collect(),
        })
    }

    /// Item-wise intersection.
    pub fn intersection(&self, other: &Self) -> Result<Self> {
        self.check_same_schema(other)?;
        let (small, big) = if self.edge_count() <= other.edge_count() {
            (&self.edges, &other.edges)
        } else {
            (&other.edges, &self.edges)
        };
        Ok(Self {
            schema: Arc::clone(&self.schema),
            nodes: self.nodes.intersection(&other.nodes).copied().collect(),
            edges: small.iter().filter(|e| big.contains(e)).collect(),
        })
    }

    /// Item-wise subset test.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.nodes.is_subset(&other.nodes)
            && self.edges.len() <= other.edges.len()
            && self.edges.iter().all(|e| other.edges.contains(&e))
    }

    /// The operator **G** of Definition 4.4: the largest instance contained
    /// in this partial instance, obtained by eliminating all dangling edges.
    pub fn largest_instance(&self) -> Instance {
        let keep = Self {
            schema: Arc::clone(&self.schema),
            nodes: self.nodes.clone(),
            edges: self
                .edges
                .iter()
                .filter(|e| self.nodes.contains(&e.src) && self.nodes.contains(&e.dst))
                .collect(),
        };
        // Edges were type-checked on insertion and all dangling edges are
        // gone, so this cannot fail.
        Instance::from_partial_unchecked(keep)
    }

    /// Restriction `J|X` (Definition 4.5): remove all items whose label is
    /// not in `allowed`.
    pub fn restrict(&self, allowed: &BTreeSet<SchemaItem>) -> Self {
        // Whole properties are kept or dropped, so filter by the
        // per-property index instead of scanning every edge.
        let props: Vec<PropId> = self
            .edges
            .properties()
            .filter(|p| allowed.contains(&SchemaItem::Prop(*p)))
            .collect();
        Self {
            schema: Arc::clone(&self.schema),
            nodes: self
                .nodes
                .iter()
                .copied()
                .filter(|o| allowed.contains(&SchemaItem::Class(o.class)))
                .collect(),
            edges: props
                .into_iter()
                .flat_map(|p| self.edges.labeled(p))
                .collect(),
        }
    }

    /// True when every edge has both endpoints present (i.e. this partial
    /// instance is in fact an instance).
    pub fn is_instance(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.nodes.contains(&e.src) && self.nodes.contains(&e.dst))
    }

    /// Invariant check (for tests) that all three index views agree.
    pub fn check_index_consistent(&self) {
        self.edges.check_consistent();
    }
}

impl PartialEq for PartialInstance {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for PartialInstance {}

impl PartialOrd for PartialInstance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PartialInstance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.nodes
            .cmp(&other.nodes)
            .then_with(|| self.edges.cmp(&other.edges))
    }
}

impl std::hash::Hash for PartialInstance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.nodes.hash(state);
        self.edges.hash(state);
    }
}

impl fmt::Debug for PartialInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartialInstance")
            .field("nodes", &self.nodes)
            .field("edges", &self.edges)
            .finish()
    }
}

impl fmt::Display for PartialInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "partial instance {{")?;
        for o in &self.nodes {
            writeln!(f, "  {}", Item::Node(*o).display(&self.schema))?;
        }
        for e in self.edges.iter() {
            writeln!(f, "  {}", Item::Edge(e).display(&self.schema))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassId;

    fn loop_schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let c = b.class("C").unwrap();
        b.property(c, "e", c).unwrap();
        b.build()
    }

    #[test]
    fn dangling_edges_allowed_then_eliminated_by_g() {
        let s = loop_schema();
        let c = s.class("C").unwrap();
        let p = s.prop("e").unwrap();
        let (o1, o2) = (Oid::new(c, 1), Oid::new(c, 2));
        let mut j = PartialInstance::empty(Arc::clone(&s));
        j.insert_node(o1);
        j.insert_edge(Edge::new(o1, p, o2)).unwrap();
        assert!(!j.is_instance());
        let g = j.largest_instance();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn typing_enforced_even_when_dangling() {
        let mut b = Schema::builder();
        let a = b.class("A").unwrap();
        let c = b.class("B").unwrap();
        b.property(a, "e", c).unwrap();
        let s = b.build();
        let p = s.prop("e").unwrap();
        let mut j = PartialInstance::empty(Arc::clone(&s));
        let bad = Edge::new(Oid::new(ClassId(1), 0), p, Oid::new(ClassId(0), 0));
        assert!(j.insert_edge(bad).is_err());
    }

    #[test]
    fn set_operations_are_item_wise() {
        let s = loop_schema();
        let c = s.class("C").unwrap();
        let p = s.prop("e").unwrap();
        let (o1, o2) = (Oid::new(c, 1), Oid::new(c, 2));
        let mut x = PartialInstance::empty(Arc::clone(&s));
        x.insert_node(o1);
        x.insert_edge(Edge::new(o1, p, o2)).unwrap();
        let mut y = PartialInstance::empty(Arc::clone(&s));
        y.insert_node(o1);
        y.insert_node(o2);

        let u = x.union(&y).unwrap();
        assert_eq!(u.node_count(), 2);
        assert_eq!(u.edge_count(), 1);

        let d = x.difference(&y).unwrap();
        assert_eq!(d.node_count(), 0);
        assert_eq!(d.edge_count(), 1); // the edge dangles in the difference

        let i = x.intersection(&y).unwrap();
        assert_eq!(i.node_count(), 1);
        assert_eq!(i.edge_count(), 0);
    }

    #[test]
    fn restriction_filters_by_label() {
        let s = loop_schema();
        let c = s.class("C").unwrap();
        let p = s.prop("e").unwrap();
        let o = Oid::new(c, 0);
        let mut j = PartialInstance::empty(Arc::clone(&s));
        j.insert_node(o);
        j.insert_edge(Edge::new(o, p, o)).unwrap();

        let only_nodes: BTreeSet<_> = [SchemaItem::Class(c)].into();
        let r = j.restrict(&only_nodes);
        assert_eq!(r.node_count(), 1);
        assert_eq!(r.edge_count(), 0);

        let nothing: BTreeSet<SchemaItem> = BTreeSet::new();
        assert!(j.restrict(&nothing).is_empty());
    }

    #[test]
    fn structural_equality_ignores_schema_pointer() {
        let s1 = loop_schema();
        let s2 = loop_schema();
        let c = s1.class("C").unwrap();
        let mut x = PartialInstance::empty(s1);
        let mut y = PartialInstance::empty(s2);
        x.insert_node(Oid::new(c, 0));
        y.insert_node(Oid::new(c, 0));
        assert_eq!(x, y);
    }
}
