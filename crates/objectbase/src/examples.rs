//! The paper's running examples as ready-made constructors.
//!
//! * [`beer_schema`] — Ullman's drinker/bar/beer schema (Example 2.3);
//! * [`figure1`] — the instance of Figure 1 (reconstructed; see below);
//! * [`figure2`] — the instance `I` of Figure 2 (one drinker, three bars,
//!   two of which are frequented);
//! * [`figure3`], [`figure4`], [`figure5`] — the *expected results* of the
//!   updates shown in Figures 3–5, built directly so tests can compare them
//!   against what the update machinery actually produces;
//! * [`employee_schema`] — the relational Employee/Fire/NewSal setting of
//!   Section 7 modelled as an object-base schema (as that section
//!   prescribes: tuples as objects, foreign keys as properties).
//!
//! **Note on Figure 1.** The figure in the source scan names individual
//! objects (Mary, John, Cheers, Old Tavern, Jug, Duvel, …) but the exact
//! edge list is partly illegible. We reconstruct a faithful instance on the
//! same schema: two drinkers, two bars, three beers, with `likes`,
//! `frequents` and `serves` edges exercising every property. All theorems
//! and tests are insensitive to this choice; Figures 2–5, on which the
//! worked examples rest, are unambiguous in the text (Examples 2.7 and 3.2)
//! and are reproduced exactly.

use std::sync::Arc;

use crate::instance::Instance;
use crate::oid::Oid;
use crate::schema::{Schema, SchemaBuilder};

/// Handles into the drinker/bar/beer schema.
#[derive(Debug, Clone)]
pub struct BeerSchema {
    /// The schema itself.
    pub schema: Arc<Schema>,
    /// Class `Drinker`.
    pub drinker: crate::schema::ClassId,
    /// Class `Bar`.
    pub bar: crate::schema::ClassId,
    /// Class `Beer`.
    pub beer: crate::schema::ClassId,
    /// Property `frequents : Drinker -> Bar`.
    pub frequents: crate::schema::PropId,
    /// Property `likes : Drinker -> Beer`.
    pub likes: crate::schema::PropId,
    /// Property `serves : Bar -> Beer`.
    pub serves: crate::schema::PropId,
}

/// Ullman's well-known example schema (Example 2.3).
pub fn beer_schema() -> BeerSchema {
    let mut b = SchemaBuilder::default();
    let drinker = b.class("Drinker").expect("fresh builder");
    let bar = b.class("Bar").expect("fresh builder");
    let beer = b.class("Beer").expect("fresh builder");
    let frequents = b.property(drinker, "frequents", bar).expect("unique label");
    let likes = b.property(drinker, "likes", beer).expect("unique label");
    let serves = b.property(bar, "serves", beer).expect("unique label");
    BeerSchema {
        schema: b.build(),
        drinker,
        bar,
        beer,
        frequents,
        likes,
        serves,
    }
}

/// Figure 1: a full instance exercising all three properties
/// (reconstruction; see the module docs).
pub fn figure1(s: &BeerSchema) -> Instance {
    let mut i = Instance::empty(Arc::clone(&s.schema));
    let mary = Oid::new(s.drinker, 1); // Drinker_Mary
    let john = Oid::new(s.drinker, 2); // Drinker_John
    let cheers = Oid::new(s.bar, 1); // Bar_Cheers
    let tavern = Oid::new(s.bar, 2); // Bar_Old_Tavern
    let petre = Oid::new(s.beer, 1); // Beer_Petre
    let jug = Oid::new(s.beer, 2); // Beer_Jug
    let duvel = Oid::new(s.beer, 3); // Beer_Duvel
    for o in [mary, john, cheers, tavern, petre, jug, duvel] {
        i.add_object(o);
    }
    let edges = [
        (mary, s.likes, petre),
        (mary, s.frequents, cheers),
        (cheers, s.serves, petre),
        (cheers, s.serves, jug),
        (tavern, s.serves, jug),
        (tavern, s.serves, duvel),
        (john, s.frequents, tavern),
        (john, s.likes, duvel),
    ];
    for (src, p, dst) in edges {
        i.link(src, p, dst).expect("endpoints inserted above");
    }
    i
}

/// The distinguished objects of Figures 2–5.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Objects {
    /// `Drinker₁`.
    pub d1: Oid,
    /// `Bar₁`.
    pub bar1: Oid,
    /// `Bar₂`.
    pub bar2: Oid,
    /// `Bar₃`.
    pub bar3: Oid,
}

/// Figure 2: instance `I` — a single drinker frequenting `Bar₁` and `Bar₂`;
/// `Bar₃` is present but not frequented (Example 2.7; beers left out).
pub fn figure2(s: &BeerSchema) -> (Instance, Fig2Objects) {
    let objs = Fig2Objects {
        d1: Oid::new(s.drinker, 1),
        bar1: Oid::new(s.bar, 1),
        bar2: Oid::new(s.bar, 2),
        bar3: Oid::new(s.bar, 3),
    };
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for o in [objs.d1, objs.bar1, objs.bar2, objs.bar3] {
        i.add_object(o);
    }
    i.link(objs.d1, s.frequents, objs.bar1).expect("typed");
    i.link(objs.d1, s.frequents, objs.bar2).expect("typed");
    (i, objs)
}

/// Figure 3: the expected value of `add_bar(I, [Drinker₁, Bar₃])` — the
/// drinker now frequents all three bars.
pub fn figure3(s: &BeerSchema) -> Instance {
    let (mut i, o) = figure2(s);
    i.link(o.d1, s.frequents, o.bar3).expect("typed");
    i
}

/// Figure 4: the expected value of `favorite_bar(I, [Drinker₁, Bar₁])` —
/// all `frequents` edges replaced by a single edge to `Bar₁`.
pub fn figure4(s: &BeerSchema) -> Instance {
    let (i, o) = figure2(s);
    let mut out = Instance::empty(Arc::clone(&s.schema));
    for n in i.nodes() {
        out.add_object(n);
    }
    out.link(o.d1, s.frequents, o.bar1).expect("typed");
    out
}

/// Figure 5: the expected value of
/// `favorite_bar(I, [Drinker₁, Bar₁], [Drinker₁, Bar₃])` — a single
/// `frequents` edge to `Bar₃` (order dependence: the other order yields
/// Figure 4).
pub fn figure5(s: &BeerSchema) -> Instance {
    let (i, o) = figure2(s);
    let mut out = Instance::empty(Arc::clone(&s.schema));
    for n in i.nodes() {
        out.add_object(n);
    }
    out.link(o.d1, s.frequents, o.bar3).expect("typed");
    out
}

/// Handles into the Employee/Fire/NewSal schema of Section 7.
///
/// Tuples are objects; attributes and foreign keys are properties:
/// `Employee` has `salary : Employee -> Amount`, `manager : Employee ->
/// Employee`; `Fire` is a class of amounts listed for deletion, linked by
/// `fireAmount : Fire -> Amount`; `NewSal` has `old : NewSal -> Amount` and
/// `new : NewSal -> Amount`.
#[derive(Debug, Clone)]
pub struct EmployeeSchema {
    /// The schema itself.
    pub schema: Arc<Schema>,
    /// Class `Employee`.
    pub employee: crate::schema::ClassId,
    /// Class `Amount` (the shared domain of salaries).
    pub amount: crate::schema::ClassId,
    /// Class `Fire` (the list of salary amounts to fire).
    pub fire: crate::schema::ClassId,
    /// Class `NewSal` (old/new salary pairs).
    pub newsal: crate::schema::ClassId,
    /// `salary : Employee -> Amount`.
    pub salary: crate::schema::PropId,
    /// `manager : Employee -> Employee`.
    pub manager: crate::schema::PropId,
    /// `fireAmount : Fire -> Amount`.
    pub fire_amount: crate::schema::PropId,
    /// `old : NewSal -> Amount`.
    pub old: crate::schema::PropId,
    /// `new : NewSal -> Amount`.
    pub new: crate::schema::PropId,
}

/// Build the Section 7 schema.
pub fn employee_schema() -> EmployeeSchema {
    let mut b = SchemaBuilder::default();
    let employee = b.class("Employee").expect("fresh builder");
    let amount = b.class("Amount").expect("fresh builder");
    let fire = b.class("Fire").expect("fresh builder");
    let newsal = b.class("NewSal").expect("fresh builder");
    let salary = b.property(employee, "salary", amount).expect("unique");
    let manager = b.property(employee, "manager", employee).expect("unique");
    let fire_amount = b.property(fire, "fireAmount", amount).expect("unique");
    let old = b.property(newsal, "old", amount).expect("unique");
    let new = b.property(newsal, "new", amount).expect("unique");
    EmployeeSchema {
        schema: b.build(),
        employee,
        amount,
        fire,
        newsal,
        salary,
        manager,
        fire_amount,
        old,
        new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_exercises_every_property() {
        let s = beer_schema();
        let i = figure1(&s);
        assert_eq!(i.class_members(s.drinker).count(), 2);
        assert_eq!(i.class_members(s.bar).count(), 2);
        assert_eq!(i.class_members(s.beer).count(), 3);
        assert!(i.edges_labeled(s.likes).count() >= 2);
        assert!(i.edges_labeled(s.serves).count() >= 3);
        assert!(i.edges_labeled(s.frequents).count() >= 2);
    }

    #[test]
    fn figure2_matches_example_2_7() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        assert_eq!(i.class_members(s.bar).count(), 3);
        let freq: Vec<_> = i.successors(o.d1, s.frequents).collect();
        assert_eq!(freq, vec![o.bar1, o.bar2]);
    }

    #[test]
    fn figures_3_4_5_differ_as_in_the_paper() {
        let s = beer_schema();
        let f3 = figure3(&s);
        let f4 = figure4(&s);
        let f5 = figure5(&s);
        assert_eq!(f3.edges_labeled(s.frequents).count(), 3);
        assert_eq!(f4.edges_labeled(s.frequents).count(), 1);
        assert_eq!(f5.edges_labeled(s.frequents).count(), 1);
        assert_ne!(f4, f5); // the order-dependence witness of Example 3.2
    }

    #[test]
    fn employee_schema_builds() {
        let e = employee_schema();
        assert_eq!(e.schema.class_count(), 4);
        assert_eq!(e.schema.property_count(), 5);
        assert_eq!(e.schema.property(e.manager).dst, e.employee);
    }
}
