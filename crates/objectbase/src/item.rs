//! Instance items (Definition 4.1): nodes and edges of the instance graph.

use std::fmt;

use crate::oid::Oid;
use crate::schema::{PropId, Schema, SchemaItem};

/// An instance edge `(o, e, p)` (Definition 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Source object `o`.
    pub src: Oid,
    /// Property name `e`.
    pub prop: PropId,
    /// Target object `p`.
    pub dst: Oid,
}

impl Edge {
    /// Construct an edge.
    pub const fn new(src: Oid, prop: PropId, dst: Oid) -> Self {
        Self { src, prop, dst }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, p{}, {})", self.src, self.prop.0, self.dst)
    }
}

/// An *item* of an instance graph: a node or an edge (Definition 4.1).
/// A graph is identified with the set of its items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Item {
    /// An object node.
    Node(Oid),
    /// A property edge.
    Edge(Edge),
}

impl Item {
    /// The schema item labeling this instance item: λ(o) for a node, the
    /// property name for an edge.
    pub fn label(&self) -> SchemaItem {
        match self {
            Item::Node(o) => SchemaItem::Class(o.class),
            Item::Edge(e) => SchemaItem::Prop(e.prop),
        }
    }

    /// True when this item is a node.
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    /// True when this item is an edge.
    pub fn is_edge(&self) -> bool {
        matches!(self, Item::Edge(_))
    }

    /// Render with names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> ItemDisplay<'a> {
        ItemDisplay { item: self, schema }
    }
}

impl From<Oid> for Item {
    fn from(o: Oid) -> Self {
        Item::Node(o)
    }
}

impl From<Edge> for Item {
    fn from(e: Edge) -> Self {
        Item::Edge(e)
    }
}

/// Helper for schema-aware item rendering.
pub struct ItemDisplay<'a> {
    item: &'a Item,
    schema: &'a Schema,
}

impl fmt::Display for ItemDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.item {
            Item::Node(o) => write!(f, "{}#{}", self.schema.class_name(o.class), o.index),
            Item::Edge(e) => write!(
                f,
                "{}#{} --{}--> {}#{}",
                self.schema.class_name(e.src.class),
                e.src.index,
                self.schema.prop_name(e.prop),
                self.schema.class_name(e.dst.class),
                e.dst.index,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassId, Schema};

    #[test]
    fn labels() {
        let o = Oid::new(ClassId(2), 1);
        assert_eq!(Item::Node(o).label(), SchemaItem::Class(ClassId(2)));
        let e = Edge::new(o, PropId(0), o);
        assert_eq!(Item::Edge(e).label(), SchemaItem::Prop(PropId(0)));
    }

    #[test]
    fn display_resolves_names() {
        let mut b = Schema::builder();
        let c = b.class("C").unwrap();
        let p = b.property(c, "e", c).unwrap();
        let s = b.build();
        let o = Oid::new(c, 0);
        let item = Item::Edge(Edge::new(o, p, o));
        assert_eq!(item.display(&s).to_string(), "C#0 --e--> C#0");
    }
}
