//! Differential test of the indexed edge storage: drive a
//! [`PartialInstance`] and a naive flat-set oracle through identical
//! random insert/remove sequences and require every public view — nodes,
//! edges, labeled scans, successor/predecessor/incidence lookups,
//! equality, ordering, hashing — to agree at every step.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use receivers_objectbase::examples::beer_schema;
use receivers_objectbase::{Edge, Oid, PartialInstance, PropId};

/// The reference model: the flat item sets the pre-index implementation
/// stored directly.
#[derive(Default, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Oracle {
    nodes: BTreeSet<Oid>,
    edges: BTreeSet<Edge>,
}

impl Oracle {
    fn successors(&self, o: Oid, p: PropId) -> Vec<Oid> {
        self.edges
            .iter()
            .filter(|e| e.src == o && e.prop == p)
            .map(|e| e.dst)
            .collect()
    }

    fn predecessors(&self, o: Oid, p: PropId) -> Vec<Oid> {
        self.edges
            .iter()
            .filter(|e| e.dst == o && e.prop == p)
            .map(|e| e.src)
            .collect()
    }
}

struct Universe {
    props: Vec<(
        PropId,
        receivers_objectbase::ClassId,
        receivers_objectbase::ClassId,
    )>,
    classes: Vec<receivers_objectbase::ClassId>,
    objects_per_class: u32,
}

impl Universe {
    fn random_node(&self, rng: &mut StdRng) -> Oid {
        let c = self.classes[rng.random_range(0..self.classes.len())];
        Oid::new(c, rng.random_range(0..self.objects_per_class))
    }

    /// A well-typed (possibly dangling) edge.
    fn random_edge(&self, rng: &mut StdRng) -> Edge {
        let (p, src, dst) = self.props[rng.random_range(0..self.props.len())];
        Edge::new(
            Oid::new(src, rng.random_range(0..self.objects_per_class)),
            p,
            Oid::new(dst, rng.random_range(0..self.objects_per_class)),
        )
    }
}

fn check_agreement(subject: &PartialInstance, oracle: &Oracle, u: &Universe) {
    subject.check_index_consistent();

    assert_eq!(
        subject.nodes().collect::<Vec<_>>(),
        oracle.nodes.iter().copied().collect::<Vec<_>>(),
        "node views diverged"
    );
    assert_eq!(
        subject.edges().collect::<Vec<_>>(),
        oracle.edges.iter().copied().collect::<Vec<_>>(),
        "edge views diverged (canonical order)"
    );
    assert_eq!(subject.node_count(), oracle.nodes.len());
    assert_eq!(subject.edge_count(), oracle.edges.len());

    for &(p, _, _) in &u.props {
        assert_eq!(
            subject.edges_labeled(p).collect::<Vec<_>>(),
            oracle
                .edges
                .iter()
                .filter(|e| e.prop == p)
                .copied()
                .collect::<Vec<_>>(),
            "labeled scan diverged"
        );
    }
    for &c in &u.classes {
        assert_eq!(
            subject.class_members(c).collect::<Vec<_>>(),
            oracle
                .nodes
                .iter()
                .filter(|o| o.class == c)
                .copied()
                .collect::<Vec<_>>(),
            "class members diverged"
        );
    }
    // Point lookups on every node that occurs in some edge, plus a few
    // absent ones.
    let touched: BTreeSet<Oid> = oracle
        .edges
        .iter()
        .flat_map(|e| [e.src, e.dst])
        .chain(oracle.nodes.iter().copied())
        .collect();
    for &o in &touched {
        for &(p, _, _) in &u.props {
            assert_eq!(
                subject.successors(o, p).collect::<Vec<_>>(),
                oracle.successors(o, p),
                "successors diverged"
            );
            assert_eq!(
                subject.predecessors(o, p).collect::<Vec<_>>(),
                oracle.predecessors(o, p),
                "predecessors diverged"
            );
        }
        assert_eq!(
            subject.edges_incident(o).collect::<Vec<_>>(),
            oracle
                .edges
                .iter()
                .filter(|e| e.src == o || e.dst == o)
                .copied()
                .collect::<Vec<_>>(),
            "incident edges diverged"
        );
    }
}

fn hash_of(p: &PartialInstance) -> u64 {
    let mut h = DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// Rebuild a partial instance from an oracle state by inserting items in
/// a shuffled order, so equality/ordering/hashing are exercised across
/// different construction histories.
fn rebuild_shuffled(
    oracle: &Oracle,
    schema: &Arc<receivers_objectbase::Schema>,
    rng: &mut StdRng,
) -> PartialInstance {
    let mut p = PartialInstance::empty(Arc::clone(schema));
    let mut edges: Vec<Edge> = oracle.edges.iter().copied().collect();
    // Fisher–Yates on the insertion order.
    for i in (1..edges.len()).rev() {
        edges.swap(i, rng.random_range(0..i + 1));
    }
    for e in edges {
        p.insert_edge(e).expect("oracle edges are well typed");
    }
    for &o in &oracle.nodes {
        p.insert_node(o);
    }
    p
}

#[test]
fn random_sequences_agree_with_flat_set_oracle() {
    let s = beer_schema();
    let u = Universe {
        props: [s.frequents, s.likes, s.serves]
            .iter()
            .map(|&p| {
                let prop = s.schema.property(p);
                (p, prop.src, prop.dst)
            })
            .collect(),
        classes: vec![s.drinker, s.bar, s.beer],
        objects_per_class: 12,
    };

    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xED6E ^ seed);
        let mut subject = PartialInstance::empty(Arc::clone(&s.schema));
        let mut oracle = Oracle::default();

        for step in 0..400 {
            match rng.random_range(0..10u32) {
                // Inserts dominate so the structures actually grow.
                0..=2 => {
                    let o = u.random_node(&mut rng);
                    assert_eq!(subject.insert_node(o), oracle.nodes.insert(o));
                }
                3..=6 => {
                    let e = u.random_edge(&mut rng);
                    assert_eq!(
                        subject.insert_edge(e).expect("well typed"),
                        oracle.edges.insert(e)
                    );
                }
                7 => {
                    let o = u.random_node(&mut rng);
                    assert_eq!(subject.remove_node(o), oracle.nodes.remove(&o));
                }
                8 => {
                    let e = u.random_edge(&mut rng);
                    assert_eq!(subject.remove_edge(&e), oracle.edges.remove(&e));
                }
                // Remove an *existing* edge, so removals hit often enough
                // to exercise index pruning.
                _ => {
                    if !oracle.edges.is_empty() {
                        let k = rng.random_range(0..oracle.edges.len());
                        let e = *oracle.edges.iter().nth(k).expect("index in range");
                        assert!(subject.remove_edge(&e));
                        assert!(oracle.edges.remove(&e));
                    }
                }
            }
            if step % 40 == 0 {
                check_agreement(&subject, &oracle, &u);
            }
        }
        check_agreement(&subject, &oracle, &u);

        // Equality, ordering, and hashing must be insertion-order
        // independent and match the oracle's set semantics.
        let rebuilt = rebuild_shuffled(&oracle, &s.schema, &mut rng);
        assert_eq!(subject, rebuilt);
        assert_eq!(subject.cmp(&rebuilt), std::cmp::Ordering::Equal);
        assert_eq!(hash_of(&subject), hash_of(&rebuilt));

        // Mutating one edge must be visible to Eq/Ord exactly as it is on
        // the flat sets.
        let mut other = rebuilt.clone();
        let mut other_oracle = oracle.clone();
        let e = u.random_edge(&mut rng);
        if other.insert_edge(e).expect("well typed") {
            other_oracle.edges.insert(e);
            assert_ne!(subject, other);
            assert_eq!(
                subject.cmp(&other),
                (oracle.nodes.clone(), oracle.edges.clone())
                    .cmp(&(other_oracle.nodes.clone(), other_oracle.edges.clone())),
                "ordering diverged from flat-set lexicographic order"
            );
        }
    }
}
