//! Deterministic fork-join primitives for the decision procedures.
//!
//! The external `rayon` crate is unavailable in this build environment, so
//! this crate provides the three combinators the workspace actually needs,
//! built on `std::thread::scope`:
//!
//! * [`par_map`] — map over a slice, results in input order;
//! * [`par_find_map_first`] — first (lowest-index) `Some`, with
//!   cross-thread early exit;
//! * [`par_join`] — run two closures concurrently.
//!
//! **Determinism.** Every combinator returns exactly what its sequential
//! counterpart would: `par_map` preserves order, `par_find_map_first`
//! always reports the lowest-index hit regardless of thread timing, and
//! `par_join` is pure composition. Disabling the `parallel` feature (or
//! setting `RECEIVERS_RT_THREADS=1`) degrades to plain loops with
//! bit-identical results, which is what keeps single-threaded builds and
//! CI runs reproducible.

#![warn(missing_docs)]

#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// Worker count: `RECEIVERS_RT_THREADS` when set, else the machine's
/// available parallelism. Always at least 1; without the `parallel`
/// feature, exactly 1.
pub fn num_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if let Ok(v) = std::env::var("RECEIVERS_RT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Map `f` over `items`, returning results in input order.
///
/// Splits the slice into one contiguous chunk per worker. Falls back to a
/// sequential loop for short inputs or single-threaded configurations.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let chunk = items.len().div_ceil(workers);
            return std::thread::scope(|s| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|part| s.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
                    .collect();
                let mut out = Vec::with_capacity(items.len());
                for h in handles {
                    out.extend(h.join().expect("rt worker panicked"));
                }
                out
            });
        }
    }
    items.iter().map(f).collect()
}

/// The first (lowest-index) `Some(f(item))`, or `None`.
///
/// Work-stealing split: instead of fixed per-worker strides, all workers
/// claim indices from one shared atomic cursor. A worker stuck on an
/// expensive item simply stops claiming while the others drain the rest of
/// the slice, so skewed per-item costs (one hard containment disjunct
/// among cheap ones) cannot idle `workers − 1` threads the way a fixed
/// stride could.
///
/// **Determinism.** The result is still exactly the sequential one:
///
/// * cursor claims ascend, so every index below a claimed `i` was claimed
///   before `i`;
/// * the shared best-hit index only ever decreases, and a worker abandons
///   its claim only when `best < i` — the final best is then `≤ best < i`,
///   so no abandoned index can beat the reported hit;
/// * competing hits resolve under one mutex, lowest index wins.
pub fn par_find_map_first<T, R, F>(items: &[T], f: F) -> Option<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let cursor = AtomicUsize::new(0);
            let best_idx = AtomicUsize::new(usize::MAX);
            let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    let (f, best, best_idx, cursor) = (&f, &best, &best_idx, &cursor);
                    s.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return;
                        }
                        // Claims ascend, so one earlier hit ends this
                        // worker for good.
                        if best_idx.load(Ordering::Acquire) < i {
                            return;
                        }
                        if let Some(r) = f(&items[i]) {
                            let mut slot = best.lock().expect("rt lock poisoned");
                            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                *slot = Some((i, r));
                                best_idx.fetch_min(i, Ordering::Release);
                            }
                            return;
                        }
                    });
                }
            });
            return best.into_inner().expect("rt lock poisoned").map(|(_, r)| r);
        }
    }
    items.iter().find_map(f)
}

/// Run `a` and `b` concurrently, returning both results.
pub fn par_join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    #[cfg(feature = "parallel")]
    {
        if num_threads() > 1 {
            return std::thread::scope(|s| {
                let hb = s.spawn(b);
                let ra = a();
                (ra, hb.join().expect("rt worker panicked"))
            });
        }
    }
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn find_returns_lowest_index_hit() {
        // Many hits: must always report the first one.
        let items: Vec<u64> = (0..10_000).collect();
        for _ in 0..10 {
            let hit = par_find_map_first(&items, |&x| (x >= 137).then_some(x));
            assert_eq!(hit, Some(137));
        }
        let miss = par_find_map_first(&items, |&x| (x > 1_000_000).then_some(x));
        assert_eq!(miss, None);
    }

    #[test]
    fn find_handles_slow_early_hit() {
        // The earliest hit is artificially the slowest to compute; the
        // result must still be the lowest index.
        let items: Vec<u64> = (0..64).collect();
        let hit = par_find_map_first(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Some(x)
            } else if x > 10 {
                Some(x)
            } else {
                None
            }
        });
        assert_eq!(hit, Some(0));
    }

    /// Skewed per-item costs: the worker that claims the one expensive
    /// item must not also end up owning a fixed 1/workers share of the
    /// slice — the shared cursor lets the other workers drain it while the
    /// expensive item computes. (Timing-based; skipped under Miri, where
    /// the determinism test below covers the same code path.)
    #[test]
    #[cfg_attr(miri, ignore)]
    fn work_stealing_balances_skewed_costs() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        if num_threads() < 2 {
            eprintln!("skipping: single-threaded configuration");
            return;
        }
        let items: Vec<u64> = (0..512).collect();
        // Per-thread: (items processed, processed the expensive item).
        let counts: Mutex<HashMap<ThreadId, (usize, bool)>> = Mutex::new(HashMap::new());
        let miss = par_find_map_first(&items, |&x| {
            {
                let mut m = counts.lock().unwrap();
                let entry = m.entry(std::thread::current().id()).or_insert((0, false));
                entry.0 += 1;
                if x == 0 {
                    entry.1 = true;
                }
            }
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            None::<u64>
        });
        assert_eq!(miss, None);
        let counts = counts.into_inner().unwrap();
        let total: usize = counts.values().map(|&(n, _)| n).sum();
        assert_eq!(total, 512, "every index claimed exactly once");
        let &(slow_count, _) = counts
            .values()
            .find(|&&(_, slow)| slow)
            .expect("someone processed item 0");
        // With fixed strides the slow worker would own 512/workers ≥ 256
        // items; with the cursor the cheap items drain while it sleeps.
        assert!(
            slow_count <= 16,
            "expensive-item worker processed {slow_count} items; stealing failed"
        );
    }

    /// Lowest-index-wins determinism of the shared-cursor claim loop,
    /// small enough to run under Miri (which exercises its weak-memory
    /// model against the Relaxed cursor / Acquire-Release best-index
    /// pair).
    #[test]
    fn cursor_claims_keep_lowest_index_determinism() {
        let items: Vec<u64> = (0..48).collect();
        for rep in 0..8 {
            let hit = par_find_map_first(&items, |&x| {
                if x % 7 == 3 {
                    Some(x)
                } else {
                    std::thread::yield_now();
                    None
                }
            });
            assert_eq!(hit, Some(3), "rep {rep}");
        }
        assert_eq!(par_find_map_first(&items, |_| None::<u64>), None);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
