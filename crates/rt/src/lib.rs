//! Deterministic fork-join primitives for the decision procedures.
//!
//! The external `rayon` crate is unavailable in this build environment, so
//! this crate provides the three combinators the workspace actually needs,
//! built on `std::thread::scope`:
//!
//! * [`par_map`] — map over a slice, results in input order;
//! * [`par_find_map_first`] — first (lowest-index) `Some`, with
//!   cross-thread early exit;
//! * [`par_join`] — run two closures concurrently.
//!
//! **Determinism.** Every combinator returns exactly what its sequential
//! counterpart would: `par_map` preserves order, `par_find_map_first`
//! always reports the lowest-index hit regardless of thread timing, and
//! `par_join` is pure composition. Disabling the `parallel` feature (or
//! setting `RECEIVERS_RT_THREADS=1`) degrades to plain loops with
//! bit-identical results, which is what keeps single-threaded builds and
//! CI runs reproducible.
//!
//! **Observability.** With `RECEIVERS_METRICS` set the combinators export
//! `rt.*` counters and histograms through `receivers-obs` — tasks
//! spawned, cursor claims, steals, per-worker item counts, and the
//! witness index of each find-first — and with `RECEIVERS_TRACE` set
//! every worker runs under an `rt.worker` span parented to the span that
//! was open at the spawn site. [`par_find_map_first_stats`] additionally
//! returns the per-call split statistics directly to the caller, so tests
//! can assert on the stealing behaviour without global state.

#![warn(missing_docs)]

pub mod shard;

use receivers_obs as obs;

use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

pub use shard::{shard_map, ShardPoolConfig, ShardTasks};

obs::counter!(C_PAR_MAP_CALLS, "rt.par_map.calls");
obs::counter!(C_TASKS_SPAWNED, "rt.tasks_spawned");
obs::counter!(C_FIND_CALLS, "rt.find_first.calls");
obs::counter!(C_FIND_CLAIMS, "rt.find_first.claims");
obs::counter!(C_STEALS, "rt.steals");
obs::counter!(C_PAR_JOIN_CALLS, "rt.par_join.calls");
obs::histogram!(H_WITNESS_INDEX, "rt.find_first.witness_index");
obs::histogram!(H_ITEMS_PER_WORKER, "rt.find_first.items_per_worker");

/// Process-wide programmatic thread-count override; 0 means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set (or with `None` clear) the process-wide worker count.
///
/// The builder-style counterpart of the `RECEIVERS_RT_THREADS` variable,
/// for callers — benchmarks sweeping a core-count axis, embedders with
/// their own topology knowledge — that cannot reach the environment before
/// the first combinator runs. Takes precedence over the environment;
/// clamped to at least 1.
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Worker count: the [`set_num_threads`] override when set, else
/// `RECEIVERS_RT_THREADS` when set, else the machine's available
/// parallelism. Always at least 1; without the `parallel` feature,
/// exactly 1.
pub fn num_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if over > 0 {
            return over;
        }
        if let Ok(v) = std::env::var("RECEIVERS_RT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Map `f` over `items`, returning results in input order.
///
/// Splits the slice into one contiguous chunk per worker. Falls back to a
/// sequential loop for short inputs or single-threaded configurations.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    C_PAR_MAP_CALLS.incr();
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let chunk = items.len().div_ceil(workers);
            let parent = obs::current_span();
            return std::thread::scope(|s| {
                let f = &f;
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|part| {
                        C_TASKS_SPAWNED.incr();
                        s.spawn(move || {
                            let _w = obs::span_under("rt.worker", parent);
                            part.iter().map(f).collect::<Vec<R>>()
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(items.len());
                for h in handles {
                    out.extend(h.join().expect("rt worker panicked"));
                }
                out
            });
        }
    }
    items.iter().map(f).collect()
}

/// How one worker participated in a [`par_find_map_first_stats`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// The first index this worker claimed (`None`: it never got one).
    pub first_claim: Option<usize>,
    /// How many indices this worker claimed in total.
    pub claims: usize,
}

/// Work-split statistics of one [`par_find_map_first_stats`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindFirstStats {
    /// Worker threads the call ran with (1 = sequential fallback).
    pub workers: usize,
    /// One entry per worker, in spawn order.
    pub per_worker: Vec<WorkerStats>,
    /// Index of the reported hit, if any.
    pub witness_index: Option<usize>,
}

impl FindFirstStats {
    /// Total indices claimed across all workers.
    pub fn total_claims(&self) -> usize {
        self.per_worker.iter().map(|w| w.claims).sum()
    }

    /// Claims beyond each participating worker's first: with a shared
    /// cursor there is no fixed ownership, so every subsequent claim is
    /// work taken from the common pool ("stolen" from the static split a
    /// strided scheduler would have imposed).
    pub fn steals(&self) -> usize {
        self.total_claims()
            - self
                .per_worker
                .iter()
                .filter(|w| w.first_claim.is_some())
                .count()
    }
}

/// The first (lowest-index) `Some(f(item))`, or `None`.
///
/// Work-stealing split: instead of fixed per-worker strides, all workers
/// claim indices from one shared atomic cursor. A worker stuck on an
/// expensive item simply stops claiming while the others drain the rest of
/// the slice, so skewed per-item costs (one hard containment disjunct
/// among cheap ones) cannot idle `workers − 1` threads the way a fixed
/// stride could.
///
/// **Determinism.** The result is still exactly the sequential one:
///
/// * cursor claims ascend, so every index below a claimed `i` was claimed
///   before `i`;
/// * the shared best-hit index only ever decreases, and a worker abandons
///   its claim only when `best < i` — the final best is then `≤ best < i`,
///   so no abandoned index can beat the reported hit;
/// * competing hits resolve under one mutex, lowest index wins.
pub fn par_find_map_first<T, R, F>(items: &[T], f: F) -> Option<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    find_first_impl(items, f, false).0
}

/// [`par_find_map_first`], also returning how the work split across
/// workers. The statistics are collected unconditionally (they are a few
/// thread-local integers), so callers — the skew-balance tests, the
/// examples — can assert on stealing behaviour even with metrics off.
pub fn par_find_map_first_stats<T, R, F>(items: &[T], f: F) -> (Option<R>, FindFirstStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    let (r, stats) = find_first_impl(items, f, true);
    (r, stats.expect("stats requested"))
}

fn find_first_impl<T, R, F>(items: &[T], f: F, collect: bool) -> (Option<R>, Option<FindFirstStats>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    C_FIND_CALLS.incr();
    let record = obs::metrics_enabled();
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let cursor = AtomicUsize::new(0);
            let best_idx = AtomicUsize::new(usize::MAX);
            let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
            // Worker stats land here in spawn order; tracked as two local
            // integers per worker, so the disabled path stays allocation-
            // and atomic-free inside the claim loop.
            let track = collect || record;
            let stats: Mutex<Vec<(usize, WorkerStats)>> = Mutex::new(Vec::new());
            let parent = obs::current_span();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (f, best, best_idx, cursor, stats) =
                        (&f, &best, &best_idx, &cursor, &stats);
                    C_TASKS_SPAWNED.incr();
                    s.spawn(move || {
                        let _w = obs::span_under("rt.worker", parent);
                        let mut first_claim = None;
                        let mut claims = 0usize;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            claims += 1;
                            if first_claim.is_none() {
                                first_claim = Some(i);
                            }
                            // Claims ascend, so one earlier hit ends this
                            // worker for good.
                            if best_idx.load(Ordering::Acquire) < i {
                                break;
                            }
                            if let Some(r) = f(&items[i]) {
                                let mut slot = best.lock().expect("rt lock poisoned");
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, r));
                                    best_idx.fetch_min(i, Ordering::Release);
                                }
                                break;
                            }
                        }
                        if track {
                            stats.lock().expect("rt lock poisoned").push((
                                w,
                                WorkerStats {
                                    first_claim,
                                    claims,
                                },
                            ));
                        }
                    });
                }
            });
            let hit = best.into_inner().expect("rt lock poisoned");
            let witness_index = hit.as_ref().map(|&(i, _)| i);
            let result = hit.map(|(_, r)| r);
            let stats = track.then(|| {
                let mut per = stats.into_inner().expect("rt lock poisoned");
                per.sort_by_key(|&(w, _)| w);
                FindFirstStats {
                    workers,
                    per_worker: per.into_iter().map(|(_, s)| s).collect(),
                    witness_index,
                }
            });
            if record {
                if let Some(stats) = &stats {
                    record_find_metrics(stats);
                }
            }
            return (result, collect.then(|| stats.expect("tracked")));
        }
    }
    // Sequential fallback: one "worker" claiming every index in order.
    let mut claims = 0usize;
    let mut witness_index = None;
    let mut result = None;
    for (i, item) in items.iter().enumerate() {
        claims += 1;
        if let Some(r) = f(item) {
            witness_index = Some(i);
            result = Some(r);
            break;
        }
    }
    let stats = (collect || record).then(|| FindFirstStats {
        workers: 1,
        per_worker: vec![WorkerStats {
            first_claim: (claims > 0).then_some(0),
            claims,
        }],
        witness_index,
    });
    if record {
        if let Some(stats) = &stats {
            record_find_metrics(stats);
        }
    }
    (result, collect.then(|| stats.expect("tracked")))
}

fn record_find_metrics(stats: &FindFirstStats) {
    C_FIND_CLAIMS.add(stats.total_claims() as u64);
    C_STEALS.add(stats.steals() as u64);
    for w in &stats.per_worker {
        H_ITEMS_PER_WORKER.record(w.claims as u64);
    }
    if let Some(i) = stats.witness_index {
        H_WITNESS_INDEX.record(i as u64);
    }
}

/// Run `a` and `b` concurrently, returning both results.
pub fn par_join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    C_PAR_JOIN_CALLS.incr();
    #[cfg(feature = "parallel")]
    {
        if num_threads() > 1 {
            let parent = obs::current_span();
            return std::thread::scope(|s| {
                C_TASKS_SPAWNED.incr();
                let hb = s.spawn(move || {
                    let _w = obs::span_under("rt.worker", parent);
                    b()
                });
                let ra = a();
                (ra, hb.join().expect("rt worker panicked"))
            });
        }
    }
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn find_returns_lowest_index_hit() {
        // Many hits: must always report the first one.
        let items: Vec<u64> = (0..10_000).collect();
        for _ in 0..10 {
            let hit = par_find_map_first(&items, |&x| (x >= 137).then_some(x));
            assert_eq!(hit, Some(137));
        }
        let miss = par_find_map_first(&items, |&x| (x > 1_000_000).then_some(x));
        assert_eq!(miss, None);
    }

    #[test]
    fn find_handles_slow_early_hit() {
        // The earliest hit is artificially the slowest to compute; the
        // result must still be the lowest index.
        let items: Vec<u64> = (0..64).collect();
        let hit = par_find_map_first(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Some(x)
            } else if x > 10 {
                Some(x)
            } else {
                None
            }
        });
        assert_eq!(hit, Some(0));
    }

    /// Skewed per-item costs: the worker that claims the one expensive
    /// item must not also end up owning a fixed 1/workers share of the
    /// slice — the shared cursor lets the other workers drain it while the
    /// expensive item computes. Asserted on the exported split statistics.
    /// (Timing-based; skipped under Miri, where the determinism test below
    /// covers the same code path.)
    #[test]
    #[cfg_attr(miri, ignore)]
    fn work_stealing_balances_skewed_costs() {
        if num_threads() < 2 {
            eprintln!("skipping: single-threaded configuration");
            return;
        }
        let items: Vec<u64> = (0..512).collect();
        let (miss, stats) = par_find_map_first_stats(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            None::<u64>
        });
        assert_eq!(miss, None);
        assert_eq!(stats.witness_index, None);
        assert_eq!(stats.per_worker.len(), stats.workers);
        assert_eq!(
            stats.total_claims(),
            512,
            "every index claimed exactly once"
        );
        // Item 0 is the first claim handed out, so the worker whose first
        // claim is index 0 is the one that slept on the expensive item.
        let slow = stats
            .per_worker
            .iter()
            .find(|w| w.first_claim == Some(0))
            .expect("someone claimed item 0");
        // With fixed strides the slow worker would own 512/workers ≥ 256
        // items; with the cursor the cheap items drain while it sleeps.
        assert!(
            slow.claims <= 16,
            "expensive-item worker claimed {} items; stealing failed",
            slow.claims
        );
        // The other workers drained the rest: those claims are steals.
        assert!(
            stats.steals() >= 512 - 16 - stats.workers,
            "too few steals: {}",
            stats.steals()
        );
    }

    /// Lowest-index-wins determinism of the shared-cursor claim loop,
    /// small enough to run under Miri (which exercises its weak-memory
    /// model against the Relaxed cursor / Acquire-Release best-index
    /// pair).
    #[test]
    fn cursor_claims_keep_lowest_index_determinism() {
        let items: Vec<u64> = (0..48).collect();
        for rep in 0..8 {
            let hit = par_find_map_first(&items, |&x| {
                if x % 7 == 3 {
                    Some(x)
                } else {
                    std::thread::yield_now();
                    None
                }
            });
            assert_eq!(hit, Some(3), "rep {rep}");
        }
        assert_eq!(par_find_map_first(&items, |_| None::<u64>), None);
    }

    #[test]
    fn stats_report_the_witness_and_cover_every_worker() {
        let items: Vec<u64> = (0..256).collect();
        let (hit, stats) = par_find_map_first_stats(&items, |&x| (x >= 100).then_some(x));
        assert_eq!(hit, Some(100));
        assert_eq!(stats.witness_index, Some(100));
        assert_eq!(stats.per_worker.len(), stats.workers);
        assert!(stats.total_claims() >= 101, "indices 0..=100 all claimed");
        assert!(stats.workers >= 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
