//! Deterministic fork-join primitives for the decision procedures.
//!
//! The external `rayon` crate is unavailable in this build environment, so
//! this crate provides the three combinators the workspace actually needs,
//! built on `std::thread::scope`:
//!
//! * [`par_map`] — map over a slice, results in input order;
//! * [`par_find_map_first`] — first (lowest-index) `Some`, with
//!   cross-thread early exit;
//! * [`par_join`] — run two closures concurrently.
//!
//! **Determinism.** Every combinator returns exactly what its sequential
//! counterpart would: `par_map` preserves order, `par_find_map_first`
//! always reports the lowest-index hit regardless of thread timing, and
//! `par_join` is pure composition. Disabling the `parallel` feature (or
//! setting `RECEIVERS_RT_THREADS=1`) degrades to plain loops with
//! bit-identical results, which is what keeps single-threaded builds and
//! CI runs reproducible.

#![warn(missing_docs)]

#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "parallel")]
use std::sync::Mutex;

/// Worker count: `RECEIVERS_RT_THREADS` when set, else the machine's
/// available parallelism. Always at least 1; without the `parallel`
/// feature, exactly 1.
pub fn num_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        if let Ok(v) = std::env::var("RECEIVERS_RT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Map `f` over `items`, returning results in input order.
///
/// Splits the slice into one contiguous chunk per worker. Falls back to a
/// sequential loop for short inputs or single-threaded configurations.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let chunk = items.len().div_ceil(workers);
            return std::thread::scope(|s| {
                let handles: Vec<_> = items
                    .chunks(chunk)
                    .map(|part| s.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
                    .collect();
                let mut out = Vec::with_capacity(items.len());
                for h in handles {
                    out.extend(h.join().expect("rt worker panicked"));
                }
                out
            });
        }
    }
    items.iter().map(f).collect()
}

/// The first (lowest-index) `Some(f(item))`, or `None`.
///
/// Parallel workers walk the items in interleaved strides and share the
/// best hit index so far, so later items are skipped once an earlier hit
/// exists — an early exit that cannot change the result: the returned hit
/// is always the one the sequential loop would find.
pub fn par_find_map_first<T, R, F>(items: &[T], f: F) -> Option<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = num_threads().min(items.len());
        if workers > 1 {
            let best_idx = AtomicUsize::new(usize::MAX);
            let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
            std::thread::scope(|s| {
                for w in 0..workers {
                    let (f, best, best_idx) = (&f, &best, &best_idx);
                    s.spawn(move || {
                        let mut i = w;
                        while i < items.len() {
                            // Stride indices ascend, so one earlier hit
                            // ends this worker for good.
                            if best_idx.load(Ordering::Acquire) < i {
                                return;
                            }
                            if let Some(r) = f(&items[i]) {
                                let mut slot = best.lock().expect("rt lock poisoned");
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, r));
                                    best_idx.fetch_min(i, Ordering::Release);
                                }
                                return;
                            }
                            i += workers;
                        }
                    });
                }
            });
            return best.into_inner().expect("rt lock poisoned").map(|(_, r)| r);
        }
    }
    items.iter().find_map(f)
}

/// Run `a` and `b` concurrently, returning both results.
pub fn par_join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    #[cfg(feature = "parallel")]
    {
        if num_threads() > 1 {
            return std::thread::scope(|s| {
                let hb = s.spawn(b);
                let ra = a();
                (ra, hb.join().expect("rt worker panicked"))
            });
        }
    }
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn find_returns_lowest_index_hit() {
        // Many hits: must always report the first one.
        let items: Vec<u64> = (0..10_000).collect();
        for _ in 0..10 {
            let hit = par_find_map_first(&items, |&x| (x >= 137).then_some(x));
            assert_eq!(hit, Some(137));
        }
        let miss = par_find_map_first(&items, |&x| (x > 1_000_000).then_some(x));
        assert_eq!(miss, None);
    }

    #[test]
    fn find_handles_slow_early_hit() {
        // The earliest hit is artificially the slowest to compute; the
        // result must still be the lowest index.
        let items: Vec<u64> = (0..64).collect();
        let hit = par_find_map_first(&items, |&x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Some(x)
            } else if x > 10 {
                Some(x)
            } else {
                None
            }
        });
        assert_eq!(hit, Some(0));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }
}
