//! Per-shard worker loops with a batch scheduler.
//!
//! [`par_map`](crate::par_map) hands each worker one contiguous chunk and
//! joins; that shape cannot express the sharded application of an update
//! method, where work arrives as *per-shard streams* that must be consumed
//! in order (each shard's receivers see the effects of the previous ones)
//! while distinct shards proceed independently. [`shard_map`] provides
//! that shape:
//!
//! * the caller's items are already partitioned into shards; within a
//!   shard, order is preserved end to end;
//! * each shard is claimed by exactly **one** worker, which processes the
//!   shard's batches through a [`ShardTasks`] pull-iterator — a worker
//!   that finishes its shard claims the next unclaimed one (shard-granular
//!   work stealing, so `shards > workers` balances skew);
//! * the caller's thread acts as the **batch scheduler**: it chops every
//!   shard into batches and feeds them into bounded per-shard MPSC run
//!   queues, parking only when every queue with pending work is full, so
//!   a stalled shard cannot wedge the feed of the others;
//! * results come back indexed by shard, so the output — like everything
//!   in this crate — is bit-identical to the sequential fallback
//!   regardless of thread timing.
//!
//! Worker count comes from [`ShardPoolConfig::workers`], defaulting to
//! [`num_threads`](crate::num_threads) (the `RECEIVERS_RT_THREADS` /
//! [`set_num_threads`](crate::set_num_threads) override); batch size and
//! queue capacity come from `RECEIVERS_RT_BATCH` / `RECEIVERS_RT_QUEUE`
//! unless set explicitly. With one worker (or without the `parallel`
//! feature) everything runs inline on the caller's thread, same results.

use receivers_obs as obs;

#[cfg(feature = "parallel")]
use std::collections::VecDeque;
use std::marker::PhantomData;
#[cfg(feature = "parallel")]
use std::sync::{Condvar, Mutex, MutexGuard};

obs::counter!(C_SHARD_CALLS, "rt.shard.calls");
obs::counter!(C_SHARD_RUNS, "rt.shard.runs");
obs::counter!(C_SHARD_BATCHES, "rt.shard.batches");
obs::counter!(C_SHARD_STEALS, "rt.shard.steals");
obs::histogram!(H_QUEUE_DEPTH, "rt.shard.queue_depth");
obs::histogram!(H_BATCH_LEN, "rt.shard.batch_len");
#[cfg(feature = "parallel")]
obs::histogram!(H_QUEUE_WAIT, "rt.shard.queue_wait_ns");

/// Tuning knobs for [`shard_map`]. `Default` reads the environment.
#[derive(Debug, Clone)]
pub struct ShardPoolConfig {
    /// Worker threads; `None` defers to [`num_threads`](crate::num_threads).
    pub workers: Option<usize>,
    /// Items per scheduled batch (`RECEIVERS_RT_BATCH`, default 32).
    pub batch_size: usize,
    /// Bound of each shard's run queue, in batches (`RECEIVERS_RT_QUEUE`,
    /// default 4).
    pub queue_capacity: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(default, |n| n.max(1))
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        Self {
            workers: None,
            batch_size: env_usize("RECEIVERS_RT_BATCH", 32),
            queue_capacity: env_usize("RECEIVERS_RT_QUEUE", 4),
        }
    }
}

impl ShardPoolConfig {
    /// Builder: pin the worker count for this pool only.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Builder: items per scheduled batch.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Builder: per-shard queue bound, in batches.
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    fn effective_workers(&self, shards: usize) -> usize {
        #[cfg(not(feature = "parallel"))]
        {
            let _ = shards;
            1
        }
        #[cfg(feature = "parallel")]
        {
            self.workers
                .unwrap_or_else(crate::num_threads)
                .min(shards)
                .max(1)
        }
    }
}

#[cfg(feature = "parallel")]
struct State<T> {
    /// One bounded run queue of batches per shard.
    queues: Vec<VecDeque<Vec<T>>>,
    /// Scheduler has no more batches for this shard.
    fed_done: Vec<bool>,
    /// Shard has been claimed by some worker.
    claimed: Vec<bool>,
    /// A worker panicked: unblock everyone and let the scope propagate.
    aborted: bool,
}

#[cfg(feature = "parallel")]
struct Shared<T> {
    state: Mutex<State<T>>,
    /// Workers park here for batches (or a shard to claim).
    work: Condvar,
    /// The scheduler parks here when every pending queue is full.
    space: Condvar,
    capacity: usize,
}

#[cfg(feature = "parallel")]
impl<T> Shared<T> {
    /// Lock, surviving poisoning: the abort protocol must still run after
    /// a worker panicked while holding the lock.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// On unwind, mark the run aborted and wake every parked thread, so a
/// panicking worker cannot leave the scheduler or its peers parked forever
/// (the panic itself still propagates through the scope join).
#[cfg(feature = "parallel")]
struct AbortGuard<'a, T> {
    shared: &'a Shared<T>,
}

#[cfg(feature = "parallel")]
impl<T> Drop for AbortGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.lock().aborted = true;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
    }
}

/// The pull-iterator a [`shard_map`] worker drains its claimed shard
/// through: batches arrive in the shard's original item order.
pub struct ShardTasks<'a, T> {
    inner: TasksInner<'a, T>,
    /// Nanoseconds spent parked on the run queue (see [`Self::wait_ns`]).
    wait_ns: u64,
}

enum TasksInner<'a, T> {
    /// Inline fallback: the pre-chopped batches, owned.
    Seq(std::vec::IntoIter<Vec<T>>, PhantomData<&'a ()>),
    #[cfg(feature = "parallel")]
    Queue { shard: usize, shared: &'a Shared<T> },
}

impl<T> ShardTasks<'_, T> {
    /// The next batch of this shard, in order; `None` once the shard is
    /// exhausted. Blocks while the scheduler is still feeding the shard.
    pub fn next_batch(&mut self) -> Option<Vec<T>> {
        match &mut self.inner {
            TasksInner::Seq(batches, _) => batches.next(),
            #[cfg(feature = "parallel")]
            TasksInner::Queue { shard, shared } => {
                // Time the parked stretch only when someone will read it:
                // the disabled path must stay a branch on two atomic loads.
                let timed = obs::metrics_enabled() || obs::profile_enabled();
                let mut parked_at: Option<std::time::Instant> = None;
                let mut st = shared.lock();
                let out = loop {
                    if st.aborted {
                        break None;
                    }
                    if let Some(b) = st.queues[*shard].pop_front() {
                        shared.space.notify_all();
                        break Some(b);
                    }
                    if st.fed_done[*shard] {
                        break None;
                    }
                    if timed && parked_at.is_none() {
                        parked_at = Some(std::time::Instant::now());
                    }
                    st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
                };
                drop(st);
                if let Some(t0) = parked_at {
                    let ns = t0.elapsed().as_nanos() as u64;
                    H_QUEUE_WAIT.record(ns);
                    self.wait_ns += ns;
                }
                out
            }
        }
    }

    /// Total nanoseconds this worker spent parked waiting for the
    /// scheduler to feed its shard, across all [`Self::next_batch`]
    /// calls so far. Stays 0 on the inline fallback and whenever
    /// neither metrics nor profiling are enabled.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns
    }
}

/// Run `f` once per shard on a pool of persistent worker loops, feeding
/// each shard's items through bounded run queues in batches; returns the
/// per-shard results in shard order. See the module docs for the
/// scheduling contract. `f(shard_index, tasks)` must drain `tasks` (any
/// undrained batches are discarded after it returns, so an early return
/// cannot wedge the scheduler).
pub fn shard_map<T, R, F>(shards: Vec<Vec<T>>, cfg: &ShardPoolConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut ShardTasks<'_, T>) -> R + Sync,
{
    C_SHARD_CALLS.incr();
    let nshards = shards.len();
    if nshards == 0 {
        return Vec::new();
    }
    let workers = cfg.effective_workers(nshards);
    let batch = cfg.batch_size.max(1);

    #[cfg(feature = "parallel")]
    if workers > 1 {
        return shard_map_parallel(shards, cfg, workers, batch, f);
    }

    // Inline fallback: shards in order, one worker loop on this thread.
    shards
        .into_iter()
        .enumerate()
        .map(|(i, items)| {
            C_SHARD_RUNS.incr();
            let batches: Vec<Vec<T>> = chop(items, batch);
            C_SHARD_BATCHES.add(batches.len() as u64);
            let mut tasks = ShardTasks {
                inner: TasksInner::Seq(batches.into_iter(), PhantomData),
                wait_ns: 0,
            };
            f(i, &mut tasks)
        })
        .collect()
}

fn chop<T>(items: Vec<T>, batch: usize) -> Vec<Vec<T>> {
    let mut items = items.into_iter();
    let mut out = Vec::new();
    loop {
        let b: Vec<T> = items.by_ref().take(batch).collect();
        if b.is_empty() {
            return out;
        }
        H_BATCH_LEN.record(b.len() as u64);
        out.push(b);
    }
}

#[cfg(feature = "parallel")]
fn shard_map_parallel<T, R, F>(
    shards: Vec<Vec<T>>,
    cfg: &ShardPoolConfig,
    workers: usize,
    batch: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut ShardTasks<'_, T>) -> R + Sync,
{
    let nshards = shards.len();
    let shared = Shared {
        state: Mutex::new(State {
            queues: (0..nshards).map(|_| VecDeque::new()).collect(),
            fed_done: vec![false; nshards],
            claimed: vec![false; nshards],
            aborted: false,
        }),
        work: Condvar::new(),
        space: Condvar::new(),
        capacity: cfg.queue_capacity.max(1),
    };
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..nshards).map(|_| None).collect());
    let mut pending: Vec<VecDeque<Vec<T>>> = shards
        .into_iter()
        .map(|items| chop(items, batch).into())
        .collect();

    let parent = obs::current_span();
    std::thread::scope(|s| {
        for w in 0..workers {
            let (shared, results, f) = (&shared, &results, &f);
            s.spawn(move || {
                let _span = obs::span_under("rt.shard.worker", parent);
                let _abort = AbortGuard { shared };
                loop {
                    let shard = {
                        let mut st = shared.lock();
                        if st.aborted {
                            return;
                        }
                        match (0..nshards).find(|&i| !st.claimed[i]) {
                            Some(i) => {
                                st.claimed[i] = true;
                                i
                            }
                            None => return,
                        }
                    };
                    C_SHARD_RUNS.incr();
                    // With shard-granular stealing a worker's "own" shards
                    // are the strided ones; any other claim is a steal.
                    if shard % workers != w {
                        C_SHARD_STEALS.incr();
                    }
                    let mut tasks = ShardTasks {
                        inner: TasksInner::Queue { shard, shared },
                        wait_ns: 0,
                    };
                    let r = f(shard, &mut tasks);
                    // Discard anything f left undrained so the scheduler
                    // cannot stay parked on this shard's full queue.
                    while tasks.next_batch().is_some() {}
                    results.lock().unwrap_or_else(|e| e.into_inner())[shard] = Some(r);
                }
            });
        }

        // The caller's thread is the batch scheduler.
        loop {
            let mut st = shared.lock();
            if st.aborted {
                break;
            }
            let mut pushed = false;
            for (i, shard_pending) in pending.iter_mut().enumerate() {
                while !shard_pending.is_empty() && st.queues[i].len() < shared.capacity {
                    let b = shard_pending.pop_front().expect("non-empty pending");
                    C_SHARD_BATCHES.incr();
                    st.queues[i].push_back(b);
                    H_QUEUE_DEPTH.record(st.queues[i].len() as u64);
                    pushed = true;
                }
                if shard_pending.is_empty() && !st.fed_done[i] {
                    st.fed_done[i] = true;
                    pushed = true;
                }
            }
            if pushed {
                shared.work.notify_all();
            }
            if pending.iter().all(VecDeque::is_empty) {
                break;
            }
            if !pushed {
                // Every queue with pending work is at capacity: park until
                // a worker pops. Checked and parked under one lock, so the
                // wakeup cannot be lost.
                drop(shared.space.wait(st).unwrap_or_else(|e| e.into_inner()));
            }
        }
    });

    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|r| r.expect("every shard claimed and completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> ShardPoolConfig {
        ShardPoolConfig::default()
            .with_workers(workers)
            .with_batch_size(3)
            .with_queue_capacity(2)
    }

    fn drain_concat(tasks: &mut ShardTasks<'_, u64>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(b) = tasks.next_batch() {
            out.extend(b);
        }
        out
    }

    /// Within a shard, batches reassemble the original item order — for
    /// any worker count, including more shards than workers (stealing).
    #[test]
    fn batches_preserve_per_shard_order() {
        let shards: Vec<Vec<u64>> = (0..7).map(|s| (s * 100..s * 100 + 23).collect()).collect();
        for workers in [1, 2, 4, 8] {
            let out = shard_map(shards.clone(), &cfg(workers), |i, tasks| {
                let got = drain_concat(tasks);
                (i, got)
            });
            for (i, (shard, got)) in out.into_iter().enumerate() {
                assert_eq!(shard, i);
                assert_eq!(got, shards[i], "shard {i} with {workers} workers");
            }
        }
    }

    /// The parallel result is bit-identical to the single-worker one.
    #[test]
    fn parallel_matches_sequential_fallback() {
        let shards: Vec<Vec<u64>> = (0..5).map(|s| (0..50 + s).collect()).collect();
        let seq = shard_map(shards.clone(), &cfg(1), |i, t| {
            (i as u64) + drain_concat(t).iter().sum::<u64>()
        });
        let par = shard_map(shards, &cfg(4), |i, t| {
            (i as u64) + drain_concat(t).iter().sum::<u64>()
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_inputs_and_empty_shards() {
        let none: Vec<u64> = shard_map(Vec::<Vec<u64>>::new(), &cfg(4), |_, t| {
            drain_concat(t).len() as u64
        });
        assert_eq!(none, Vec::<u64>::new());
        let some = shard_map(vec![vec![], vec![1u64], vec![]], &cfg(2), |_, t| {
            drain_concat(t).len() as u64
        });
        assert_eq!(some, vec![0, 1, 0]);
    }

    /// A worker that returns without draining must not wedge the
    /// scheduler, even with a tiny queue bound and many batches.
    #[test]
    fn early_return_does_not_deadlock_the_scheduler() {
        let shards: Vec<Vec<u64>> = (0..4).map(|_| (0..64).collect()).collect();
        let cfg = ShardPoolConfig::default()
            .with_workers(2)
            .with_batch_size(1)
            .with_queue_capacity(1);
        let out = shard_map(shards, &cfg, |i, tasks| {
            // Take a single batch and abandon the rest.
            tasks.next_batch().map(|b| b.len()).unwrap_or(0) + i
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    /// A panicking worker aborts the run and propagates, instead of
    /// leaving the scheduler or its peers parked.
    #[test]
    fn worker_panic_propagates() {
        let shards: Vec<Vec<u64>> = (0..6).map(|_| (0..32).collect()).collect();
        let cfg = ShardPoolConfig::default()
            .with_workers(2)
            .with_batch_size(1)
            .with_queue_capacity(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shard_map(shards, &cfg, |i, tasks| {
                let n = drain_concat(tasks).len();
                assert!(i != 3, "boom");
                n
            })
        }));
        assert!(res.is_err());
    }

    /// Stealing accounting: with one worker pinned by a slow shard, the
    /// other drains the rest. (Timing-based; skipped under Miri — the
    /// order/determinism tests above cover the same code paths there.)
    #[test]
    #[cfg_attr(miri, ignore)]
    fn finished_workers_steal_unclaimed_shards() {
        let shards: Vec<Vec<u64>> = (0..8).map(|s| vec![s]).collect();
        let out = shard_map(shards, &cfg(2), |i, tasks| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            drain_concat(tasks)
        });
        assert_eq!(out.len(), 8);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &vec![i as u64]);
        }
    }
}
