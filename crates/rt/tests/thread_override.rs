//! The thread-count knobs, exercised in their own process so the lib
//! tests (which read `num_threads()` concurrently) cannot interfere.
//!
//! One `#[test]` on purpose: the override and the environment variable are
//! process-global, and the harness runs tests of a binary in parallel.

#![cfg(feature = "parallel")]

/// Precedence (programmatic override beats the environment beats
/// detection, everything clamped to at least one worker), then the
/// override steering a real `shard_map`.
#[test]
fn thread_count_knobs() {
    // Own process: nothing else reads the variable concurrently.
    std::env::set_var("RECEIVERS_RT_THREADS", "5");
    assert_eq!(receivers_rt::num_threads(), 5);

    receivers_rt::set_num_threads(Some(3));
    assert_eq!(receivers_rt::num_threads(), 3, "override beats the env");

    receivers_rt::set_num_threads(Some(0));
    assert_eq!(receivers_rt::num_threads(), 1, "clamped to at least 1");

    receivers_rt::set_num_threads(None);
    assert_eq!(receivers_rt::num_threads(), 5, "cleared back to the env");

    std::env::set_var("RECEIVERS_RT_THREADS", "garbage");
    assert!(receivers_rt::num_threads() >= 1, "unparsable env ignored");

    std::env::remove_var("RECEIVERS_RT_THREADS");
    assert!(receivers_rt::num_threads() >= 1, "detection fallback");

    // A forced worker count drives shard_map without losing per-shard
    // order or completeness.
    for workers in [1usize, 2, 4] {
        receivers_rt::set_num_threads(Some(workers));
        let shards: Vec<Vec<u32>> = (0..6u32)
            .map(|s| (0..40).map(|k| s * 100 + k).collect())
            .collect();
        let expect = shards.clone();
        let cfg = receivers_rt::ShardPoolConfig::default().with_batch_size(7);
        let out = receivers_rt::shard_map(shards, &cfg, |_s, tasks| {
            let mut seen = Vec::new();
            while let Some(batch) = tasks.next_batch() {
                seen.extend(batch);
            }
            seen
        });
        assert_eq!(out, expect, "workers={workers}");
    }
    receivers_rt::set_num_threads(None);
}
