//! Span parentage across the runtime's thread boundaries: workers spawned
//! by the combinators must nest under the span that was open at the call
//! site, and their events must be flushed before the scope joins.

use receivers_obs as obs;
use receivers_rt as rt;

#[test]
fn worker_spans_nest_under_the_calling_span() {
    obs::set_enabled(true, false);
    obs::reset_spans();

    let items: Vec<u64> = (0..256).collect();
    let root_id;
    {
        let _root = obs::span("caller");
        root_id = obs::current_span();
        assert_ne!(root_id, 0);
        let out = rt::par_map(&items, |&x| x + 1);
        assert_eq!(out.len(), items.len());
        let hit = rt::par_find_map_first(&items, |&x| (x == 200).then_some(x));
        assert_eq!(hit, Some(200));
    }
    let events = obs::take_spans();
    obs::set_enabled(false, false);

    let caller = events
        .iter()
        .find(|e| e.name == "caller")
        .expect("caller span recorded");
    let workers: Vec<_> = events.iter().filter(|e| e.name == "rt.worker").collect();
    if rt::num_threads() > 1 {
        assert!(!workers.is_empty(), "parallel run spawned no worker spans");
    }
    for w in &workers {
        assert_eq!(
            w.parent, caller.id,
            "worker span must parent under the span open at the spawn site"
        );
        // Worker events carry their own thread ids; at least the span
        // tree must reconstruct across the boundary.
        assert_ne!(w.id, caller.id);
    }
    // Everything flushed: a second drain is empty.
    assert_eq!(obs::take_spans(), Vec::new());
}
