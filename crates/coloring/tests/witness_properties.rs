//! Property tests for the witness constructions over *random* sound
//! colorings of random schemas: whatever the coloring, the witness must
//! only create `c`-colored types, only delete `d`-colored types, and —
//! when the coloring is simple — be inflationary (Prop. 4.10) resp.
//! deflationary (Prop. 4.19).

use std::sync::Arc;

use receivers_coloring::{
    sound_deflationary, sound_inflationary, Color, Coloring, DeflationaryWitness, WitnessMethod,
};
use receivers_objectbase::gen::{random_schema, SchemaParams};
use receivers_objectbase::{
    Edge, Instance, MethodOutcome, Receiver, Schema, SchemaItem, UpdateMethod,
};

/// Deterministic pseudo-random coloring.
fn random_coloring(schema: &Arc<Schema>, seed: u64) -> Coloring {
    let mut k = Coloring::empty(Arc::clone(schema));
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for item in schema.items() {
        for color in [Color::U, Color::C, Color::D] {
            if next() % 3 == 0 {
                k.add(item, color);
            }
        }
    }
    if let Some(c) = schema.classes().next() {
        k.add(SchemaItem::Class(c), Color::U);
    }
    k
}

/// An instance seeded so every u-test of the witness passes, while
/// leaving room for the c-actions to fire: all `o_u`/`o_d` node objects
/// and the `o_1..o_4` edge endpoints are present, the `(o_2, e, o_4)`
/// test edges are present, but the `o_c` objects and the `(o_1, e, o_3)`
/// creation targets are absent.
fn seeded_instance(
    schema: &Arc<Schema>,
    fixed: &receivers_coloring::witness::FixedObjects,
) -> Instance {
    let mut i = Instance::empty(Arc::clone(schema));
    for c in schema.classes() {
        let (_oc, ou, od) = fixed.node_objects(c);
        for o in [ou, od] {
            i.add_object(o);
        }
    }
    for p in schema.properties() {
        let (o1, o2, o3, o4) = fixed.edge_objects(p);
        for o in [o1, o2, o3, o4] {
            i.add_object(o);
        }
        i.add_edge(Edge::new(o2, p, o4)).unwrap();
    }
    i
}

fn check_color_discipline(
    coloring: &Coloring,
    input: &Instance,
    output: &Instance,
) -> Result<(), String> {
    let created = output.as_partial().difference(input.as_partial()).unwrap();
    for item in created.items() {
        if !coloring.get(item.label()).contains(Color::C) {
            return Err(format!(
                "created item of type {:?} not colored c",
                item.label()
            ));
        }
    }
    let deleted = input.as_partial().difference(output.as_partial()).unwrap();
    for item in deleted.items() {
        let label = item.label();
        if coloring.get(label).contains(Color::D) {
            continue;
        }
        // Cascade deletions of edges whose endpoint died are "automatic"
        // (remark after Lemma 4.11) and not separately colored.
        if let receivers_objectbase::Item::Edge(e) = item {
            let src_gone = !output.contains_node(e.src);
            let dst_gone = !output.contains_node(e.dst);
            if src_gone || dst_gone {
                continue;
            }
        }
        return Err(format!("deleted item of type {label:?} not colored d"));
    }
    Ok(())
}

#[test]
fn inflationary_witnesses_respect_colors() {
    let mut sound_count = 0usize;
    let mut simple_count = 0usize;
    for schema_seed in 0..6u64 {
        let schema = random_schema(
            SchemaParams {
                classes: 3,
                properties: 4,
            },
            schema_seed,
        );
        for color_seed in 0..60u64 {
            let k = random_coloring(&schema, color_seed);
            if !sound_inflationary(&k).is_empty() {
                continue;
            }
            sound_count += 1;
            let simple = k.is_simple();
            let Some(m) = WitnessMethod::new(k.clone()) else {
                panic!("sound coloring rejected by the witness builder");
            };
            let i = seeded_instance(&schema, m.fixed_objects());
            let recv = i
                .class_members(m.signature().receiving_class())
                .next()
                .unwrap();
            match m.apply(&i, &Receiver::new(vec![recv])) {
                MethodOutcome::Done(out) => {
                    check_color_discipline(&k, &i, &out)
                        .unwrap_or_else(|e| panic!("schema {schema_seed}/color {color_seed}: {e}"));
                    if simple {
                        simple_count += 1;
                        assert!(
                            i.as_partial().is_subset(out.as_partial()),
                            "simple coloring ⇒ inflationary (Prop. 4.10), \
                             schema {schema_seed}/color {color_seed}"
                        );
                    }
                }
                MethodOutcome::Diverges => {} // u-item absent; fine
                MethodOutcome::Undefined(e) => panic!("undefined: {e}"),
            }
        }
    }
    assert!(sound_count >= 10, "too few sound colorings ({sound_count})");
    assert!(
        simple_count >= 1,
        "no simple coloring sampled ({simple_count})"
    );
}

#[test]
fn deflationary_witnesses_respect_colors() {
    let mut sound_count = 0usize;
    let mut simple_count = 0usize;
    for schema_seed in 0..6u64 {
        let schema = random_schema(
            SchemaParams {
                classes: 3,
                properties: 4,
            },
            schema_seed ^ 0xDEF,
        );
        for color_seed in 0..160u64 {
            let k = random_coloring(&schema, color_seed);
            if !sound_deflationary(&k).is_empty() {
                continue;
            }
            sound_count += 1;
            let simple = k.is_simple();
            let Some(m) = DeflationaryWitness::new(k.clone()) else {
                panic!("sound coloring rejected by the witness builder");
            };
            let i = seeded_instance(&schema, m.fixed_objects());
            let recv = i
                .class_members(m.signature().receiving_class())
                .next()
                .unwrap();
            match m.apply(&i, &Receiver::new(vec![recv])) {
                MethodOutcome::Done(out) => {
                    check_color_discipline(&k, &i, &out)
                        .unwrap_or_else(|e| panic!("schema/color {schema_seed}/{color_seed}: {e}"));
                    if simple {
                        simple_count += 1;
                        assert!(
                            out.as_partial().is_subset(i.as_partial()),
                            "simple coloring ⇒ deflationary (Prop. 4.19), \
                             schema {schema_seed}/color {color_seed}"
                        );
                    }
                }
                MethodOutcome::Diverges => {}
                MethodOutcome::Undefined(e) => panic!("undefined: {e}"),
            }
        }
    }
    assert!(sound_count >= 10, "too few sound colorings ({sound_count})");
    assert!(
        simple_count >= 1,
        "no simple coloring sampled ({simple_count})"
    );
}
