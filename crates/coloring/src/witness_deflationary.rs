//! The dual witness construction for the **deflationary** axiomatization
//! (Section 4.3): for every coloring sound under Proposition 4.22, an
//! update method realizing it.
//!
//! The paper states the if-direction "requires no new ideas beyond those
//! of the proof of Proposition 4.13; the only extra complication is for
//! edges colored c; these are dealt with as illustrated in Example 4.21".
//! The construction here is the systematic dual of
//! [`crate::witness::WitnessMethod`]:
//!
//! * under Definition 4.16, a *presence test on an item itself* makes its
//!   type used — so conditional actions test the very item they create
//!   ("add `o_c^X` if absent", Example 4.21's pattern) instead of testing
//!   a separate `o_u` item;
//! * deletions need no use: `{d}` without `u` is legal on both nodes and
//!   edges (the mirror of Lemma 4.11 vs Lemma 4.20), so `d`-actions are
//!   unconditional;
//! * an edge colored `{c}` whose incident node is colored `c` rides along
//!   with that node's creation: when the fixed node is absent it is added
//!   *together with* edges to all present target-class objects — exactly
//!   Example 4.21's method.

use std::sync::Arc;

use receivers_objectbase::{
    Edge, Instance, MethodOutcome, Oid, Receiver, Schema, SchemaItem, Signature, UpdateMethod,
};

use crate::coloring::{Color, ColorSet, Coloring};
use crate::soundness::sound_deflationary;
use crate::witness::FixedObjects;

/// One primitive action of the deflationary witness.
#[derive(Debug, Clone)]
enum Action {
    /// `{c,u}` node (or the node part of Example 4.21): add the fixed
    /// object if absent — the self-test makes the type used.
    AddNodeIfAbsent(Oid),
    /// Example 4.21's edge-`{c}` ride-along: when adding `node`, also add
    /// edges labeled `prop` from it to every *present* object of the
    /// target class (or to it, when the fixed node is the target).
    AddNodeWithFanout {
        node: Oid,
        prop: receivers_objectbase::PropId,
        node_is_source: bool,
    },
    /// `{c,u}` edge: add the fixed edge if absent (endpoints are created
    /// as needed; their classes are `u` or `c` by soundness).
    AddEdgeIfAbsent(Edge),
    /// `{d}`/`{d,u}` node: delete the fixed object (cascade).
    DeleteNode(Oid),
    /// `{d}`/`{d,u}` edge: delete the fixed edge.
    DeleteEdge(Edge),
    /// `{u}`-only node guard: diverge unless present.
    DivergeUnlessNode(Oid),
    /// `{u}`-only edge guard: diverge unless present.
    DivergeUnlessEdge(Edge),
}

/// The witness update method of a deflationary-sound coloring
/// (Proposition 4.22).
pub struct DeflationaryWitness {
    coloring: Coloring,
    signature: Signature,
    fixed: FixedObjects,
    actions: Vec<Action>,
    name: String,
}

impl DeflationaryWitness {
    /// Build the witness; `None` when the coloring is not sound under
    /// Proposition 4.22.
    pub fn new(coloring: Coloring) -> Option<Self> {
        if !sound_deflationary(&coloring).is_empty() {
            return None;
        }
        let schema: Arc<Schema> = Arc::clone(coloring.schema());
        let fixed = FixedObjects::allocate_public(&schema);
        let receiving = schema
            .classes()
            .find(|&c| coloring.get(SchemaItem::Class(c)).contains(Color::U))?;
        let signature = Signature::new(vec![receiving]).expect("non-empty");

        let mut actions = Vec::new();
        let mut tested: std::collections::BTreeSet<SchemaItem> = Default::default();

        // Edges colored {c} without u ride along with a c-colored incident
        // node (soundness property 1 guarantees one exists). Collect them
        // per node first.
        let mut fanouts: std::collections::BTreeMap<
            receivers_objectbase::ClassId,
            Vec<(receivers_objectbase::PropId, bool)>,
        > = Default::default();
        for p in schema.properties() {
            let k = coloring.get(SchemaItem::Prop(p));
            if k.contains(Color::C) && !k.contains(Color::U) {
                let prop = schema.property(p);
                let src_c = coloring.get(SchemaItem::Class(prop.src)).contains(Color::C);
                if src_c {
                    fanouts.entry(prop.src).or_default().push((p, true));
                } else {
                    // Property 1: the target must be c.
                    fanouts.entry(prop.dst).or_default().push((p, false));
                }
            }
        }

        // Node actions.
        for x in schema.classes() {
            let k = coloring.get(SchemaItem::Class(x));
            let (oc, ou, od) = fixed.node_objects(x);
            let _ = ou;
            if k.contains(Color::C) {
                // Lemma 4.20: c ⇒ u. The creation self-tests.
                tested.insert(SchemaItem::Class(x));
                match fanouts.remove(&x) {
                    Some(list) => {
                        for (prop, node_is_source) in list {
                            actions.push(Action::AddNodeWithFanout {
                                node: oc,
                                prop,
                                node_is_source,
                            });
                        }
                    }
                    None => actions.push(Action::AddNodeIfAbsent(oc)),
                }
            }
            if k.contains(Color::D) {
                actions.push(Action::DeleteNode(od));
                if k.contains(Color::U) && !k.contains(Color::C) {
                    // A bare deletion is not a use under Definition 4.16;
                    // pair the u color with a presence test on the object
                    // being deleted (testing *is* using).
                    tested.insert(SchemaItem::Class(x));
                    actions.insert(actions.len() - 1, Action::DivergeUnlessNode(od));
                }
            }
        }

        // Edge actions.
        for p in schema.properties() {
            let k = coloring.get(SchemaItem::Prop(p));
            let (o1, _o2, o3, _o4) = fixed.edge_objects(p);
            let fixed_edge = Edge::new(o1, p, o3);
            if k.contains(Color::C) && k.contains(Color::U) {
                actions.push(Action::AddEdgeIfAbsent(fixed_edge));
                tested.insert(SchemaItem::Prop(p));
            }
            if k.contains(Color::D) {
                actions.push(Action::DeleteEdge(fixed_edge));
                if k.contains(Color::U) && !k.contains(Color::C) {
                    tested.insert(SchemaItem::Prop(p));
                    actions.insert(actions.len() - 1, Action::DivergeUnlessEdge(fixed_edge));
                }
            }
        }

        // {u}-only guards.
        for x in schema.classes() {
            let item = SchemaItem::Class(x);
            if coloring.get(item) == ColorSet::ONLY_U && !tested.contains(&item) {
                actions.push(Action::DivergeUnlessNode(fixed.node_objects(x).1));
            }
        }
        for p in schema.properties() {
            let item = SchemaItem::Prop(p);
            if coloring.get(item) == ColorSet::ONLY_U && !tested.contains(&item) {
                let (_, o2, _, o4) = fixed.edge_objects(p);
                actions.push(Action::DivergeUnlessEdge(Edge::new(o2, p, o4)));
            }
        }

        Some(Self {
            coloring,
            signature,
            fixed,
            actions,
            name: "witness(Prop. 4.22)".to_owned(),
        })
    }

    /// The coloring this method realizes.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The reserved fixed objects.
    pub fn fixed_objects(&self) -> &FixedObjects {
        &self.fixed
    }
}

impl UpdateMethod for DeflationaryWitness {
    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn apply(&self, instance: &Instance, receiver: &Receiver) -> MethodOutcome {
        if let Err(e) = receiver.validate(&self.signature, instance) {
            return MethodOutcome::Undefined(e.to_string());
        }
        let mut out = instance.clone();
        for action in &self.actions {
            match action {
                Action::AddNodeIfAbsent(o) => {
                    out.add_object(*o);
                }
                Action::AddNodeWithFanout {
                    node,
                    prop,
                    node_is_source,
                } => {
                    if !instance.contains_node(*node) {
                        out.add_object(*node);
                        let other_class = {
                            let def = instance.schema().property(*prop);
                            if *node_is_source {
                                def.dst
                            } else {
                                def.src
                            }
                        };
                        // Fan out to the *current* members — earlier
                        // actions of this very application may already
                        // have deleted some input objects.
                        let others: Vec<Oid> = out.class_members(other_class).collect();
                        for m in others {
                            let e = if *node_is_source {
                                Edge::new(*node, *prop, m)
                            } else {
                                Edge::new(m, *prop, *node)
                            };
                            out.add_edge(e).expect("typed by construction");
                        }
                    }
                }
                Action::AddEdgeIfAbsent(e) => {
                    if !instance.contains_edge(e) {
                        out.add_object(e.src);
                        out.add_object(e.dst);
                        out.add_edge(*e).expect("typed by construction");
                    }
                }
                Action::DeleteNode(o) => {
                    out.remove_object_cascade(*o);
                }
                Action::DeleteEdge(e) => {
                    out.remove_edge(e);
                }
                Action::DivergeUnlessNode(o) => {
                    if !instance.contains_node(*o) {
                        return MethodOutcome::Diverges;
                    }
                }
                Action::DivergeUnlessEdge(e) => {
                    if !instance.contains_edge(e) {
                        return MethodOutcome::Diverges;
                    }
                }
            }
        }
        MethodOutcome::Done(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    /// A simple deflationary-sound coloring: delete frequents edges, use
    /// everything relevant.
    fn simple_delete_coloring() -> Coloring {
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Prop(s.frequents), Color::D);
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k
    }

    fn seeded(m: &DeflationaryWitness) -> (Instance, Receiver) {
        let schema = Arc::clone(m.coloring().schema());
        let mut i = Instance::empty(schema.clone());
        for c in schema.classes() {
            let (oc, ou, od) = m.fixed_objects().node_objects(c);
            for o in [oc, ou, od] {
                i.add_object(o);
            }
        }
        for p in schema.properties() {
            let (o1, o2, o3, o4) = m.fixed_objects().edge_objects(p);
            for o in [o1, o2, o3, o4] {
                i.add_object(o);
            }
            i.add_edge(Edge::new(o1, p, o3)).unwrap();
            i.add_edge(Edge::new(o2, p, o4)).unwrap();
        }
        let recv = i
            .class_members(m.signature.receiving_class())
            .next()
            .unwrap();
        (i, Receiver::new(vec![recv]))
    }

    #[test]
    fn unsound_rejected() {
        let s = beer_schema();
        // c without u on a node: deflationary-unsound (Lemma 4.20).
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.bar), Color::C);
        k.add(SchemaItem::Class(s.drinker), Color::U);
        assert!(DeflationaryWitness::new(k).is_none());
    }

    /// Proposition 4.19: a simple (deflationary) minimal coloring implies
    /// the method is deflationary — our witness for a simple coloring
    /// never adds anything.
    #[test]
    fn simple_witness_is_deflationary() {
        let m = DeflationaryWitness::new(simple_delete_coloring()).unwrap();
        let (i, r) = seeded(&m);
        let out = m.apply(&i, &r).expect_done("witness");
        assert!(
            out.as_partial().is_subset(i.as_partial()),
            "M(I,t) ⊆ I must hold for simple colorings"
        );
        // And it genuinely deletes the d-colored type.
        let s = beer_schema();
        let deleted = i.as_partial().difference(out.as_partial()).unwrap();
        assert!(deleted.edge_count() > 0);
        for item in deleted.items() {
            assert_eq!(item.label(), SchemaItem::Prop(s.frequents));
        }
    }

    /// Example 4.21's coloring ({u,c} on A, {c} on e, ∅ on B): the
    /// witness adds the fixed A-object with e-edges to all present
    /// B-objects when absent, and does nothing when present.
    #[test]
    fn example_4_21_fanout() {
        let mut b = receivers_objectbase::Schema::builder();
        let a = b.class("A").unwrap();
        let bb = b.class("B").unwrap();
        let e = b.property(a, "e", bb).unwrap();
        let schema = b.build();
        let mut k = Coloring::empty(Arc::clone(&schema));
        k.add(SchemaItem::Class(a), Color::U);
        k.add(SchemaItem::Class(a), Color::C);
        k.add(SchemaItem::Prop(e), Color::C);
        let m = DeflationaryWitness::new(k).unwrap();

        // Instance: three B objects, no A objects.
        let mut i = Instance::empty(Arc::clone(&schema));
        let bs: Vec<Oid> = (0..3).map(|k| Oid::new(bb, k)).collect();
        for &o in &bs {
            i.add_object(o);
        }
        // Receiver must be an A object: seed one *other* A object? The
        // receiving class is A; add a plain receiver object.
        let recv = Oid::new(a, 0);
        i.add_object(recv);
        let out = m
            .apply(&i, &Receiver::new(vec![recv]))
            .expect_done("witness");
        // The fixed A object appeared with e-edges to all three Bs.
        let fixed_a = m.fixed_objects().node_objects(a).0;
        assert!(out.contains_node(fixed_a));
        assert_eq!(out.successors(fixed_a, e).count(), 3);

        // Idempotent: a second application changes nothing (the self-test
        // fails).
        let out2 = m
            .apply(&out, &Receiver::new(vec![recv]))
            .expect_done("witness");
        assert_eq!(out, out2);
    }

    /// The witness creates only c-colored and deletes only d-colored
    /// types across a seeded run.
    #[test]
    fn witness_respects_colors() {
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k.add(SchemaItem::Prop(s.likes), Color::D);
        k.add(SchemaItem::Prop(s.serves), Color::C);
        k.add(SchemaItem::Prop(s.serves), Color::U);
        k.add(SchemaItem::Class(s.bar), Color::U);
        k.add(SchemaItem::Class(s.beer), Color::U);
        assert!(sound_deflationary(&k).is_empty());
        let m = DeflationaryWitness::new(k).unwrap();
        let (mut i, r) = seeded(&m);
        // Remove the serves fixed edge so the c-action fires.
        let (o1, _, o3, _) = m.fixed_objects().edge_objects(s.serves);
        i.remove_edge(&Edge::new(o1, s.serves, o3));
        let out = m.apply(&i, &r).expect_done("witness");
        let created = out.as_partial().difference(i.as_partial()).unwrap();
        let deleted = i.as_partial().difference(out.as_partial()).unwrap();
        for item in created.items() {
            assert_eq!(item.label(), SchemaItem::Prop(s.serves));
        }
        for item in deleted.items() {
            assert_eq!(item.label(), SchemaItem::Prop(s.likes));
        }
        assert!(created.edge_count() > 0 && deleted.edge_count() > 0);
    }
}
