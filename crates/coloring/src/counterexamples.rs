//! The six counterexample families from the proofs of Theorems 4.14 and
//! 4.23: for every *non-simple* sound coloring — i.e. whenever a node or
//! edge carries one of `{u,d}`, `{u,c,d}`, `{u,c}` — there is an update
//! method with that coloring which is **not** order independent.
//!
//! Each family comes with the exact instance and receiver set used in the
//! proof, packaged as an [`OrderDependenceDemo`] so tests (and the
//! benchmark harness) can replay the order dependence mechanically.

use std::sync::Arc;

use receivers_objectbase::{
    ClassId, Edge, Instance, MethodOutcome, Oid, PropId, Receiver, ReceiverSet, Schema,
    SchemaBuilder, Signature, UpdateMethod,
};

/// Which of the six families (numbered as in the proof of Theorem 4.14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterexampleKind {
    /// (1) node colored `{u,d}`: if class `R` has exactly two objects,
    /// delete the receiving object.
    NodeUD,
    /// (2) node colored `{u,c,d}`: as (1), but if the test fails add two
    /// new objects to `R`.
    NodeUCD,
    /// (3) node colored `{u,c}`: if `R` has exactly two objects, add two
    /// new objects when the receiver equals a fixed object, else one.
    NodeUC,
    /// (4) edge colored `{u,d}`: if an `a`-edge connects receiver and
    /// argument, delete all *other* `a`-edges.
    EdgeUD,
    /// (5) edge colored `{u,c,d}`: as (4), but if the test fails, add the
    /// `a`-edge and delete all others.
    EdgeUCD,
    /// (6) edge colored `{u,c}`: if there are no `a`-edges at all, add one
    /// between receiver and argument.
    EdgeUC,
}

impl CounterexampleKind {
    /// All six families.
    pub const ALL: [CounterexampleKind; 6] = [
        CounterexampleKind::NodeUD,
        CounterexampleKind::NodeUCD,
        CounterexampleKind::NodeUC,
        CounterexampleKind::EdgeUD,
        CounterexampleKind::EdgeUCD,
        CounterexampleKind::EdgeUC,
    ];
}

/// A packaged order-dependence demonstration: a method together with an
/// instance and receiver set on which two enumeration orders disagree.
pub struct OrderDependenceDemo {
    /// The update method.
    pub method: CounterexampleMethod,
    /// The instance `I` from the proof.
    pub instance: Instance,
    /// The receiver set `T` from the proof.
    pub receivers: ReceiverSet,
}

/// The schema used by all six families: a class `R` with a property `a`
/// of type `A`.
#[derive(Debug, Clone)]
pub struct CounterexampleSchema {
    /// The schema.
    pub schema: Arc<Schema>,
    /// Class `R` (receiving).
    pub r: ClassId,
    /// Class `A` (argument).
    pub a_class: ClassId,
    /// Property `a : R -> A`.
    pub a: PropId,
}

fn counterexample_schema() -> CounterexampleSchema {
    let mut b = SchemaBuilder::default();
    let r = b.class("R").expect("fresh");
    let a_class = b.class("A").expect("fresh");
    let a = b.property(r, "a", a_class).expect("fresh");
    CounterexampleSchema {
        schema: b.build(),
        r,
        a_class,
        a,
    }
}

/// The update methods of the six families.
pub struct CounterexampleMethod {
    kind: CounterexampleKind,
    cs: CounterexampleSchema,
    signature: Signature,
    name: String,
}

impl CounterexampleMethod {
    fn new(kind: CounterexampleKind, cs: CounterexampleSchema) -> Self {
        // Node cases use signature [R, R]; edge cases [R, A] (the proof
        // uses type [R, A] throughout; for node cases the argument class
        // is irrelevant and the proof's receiver sets draw both
        // components from {n, m} ⊆ R, so we type them [R, R]).
        let signature = match kind {
            CounterexampleKind::NodeUD
            | CounterexampleKind::NodeUCD
            | CounterexampleKind::NodeUC => Signature::new(vec![cs.r, cs.r]).expect("non-empty"),
            _ => Signature::new(vec![cs.r, cs.a_class]).expect("non-empty"),
        };
        Self {
            kind,
            cs,
            signature,
            name: format!("counterexample({kind:?})"),
        }
    }

    /// Which family this method belongs to.
    pub fn kind(&self) -> CounterexampleKind {
        self.kind
    }
}

impl UpdateMethod for CounterexampleMethod {
    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn apply(&self, instance: &Instance, receiver: &Receiver) -> MethodOutcome {
        if let Err(e) = receiver.validate(&self.signature, instance) {
            return MethodOutcome::Undefined(e.to_string());
        }
        let cs = &self.cs;
        let mut out = instance.clone();
        let recv = receiver.receiving_object();
        let arg = receiver.arguments()[0];
        match self.kind {
            CounterexampleKind::NodeUD => {
                if instance.class_members(cs.r).count() == 2 {
                    out.remove_object_cascade(recv);
                }
            }
            CounterexampleKind::NodeUCD => {
                if instance.class_members(cs.r).count() == 2 {
                    out.remove_object_cascade(recv);
                } else {
                    out.fresh_object(cs.r);
                    out.fresh_object(cs.r);
                }
            }
            CounterexampleKind::NodeUC => {
                if instance.class_members(cs.r).count() == 2 {
                    // "the fixed object": the least R object.
                    let fixed = instance.class_members(cs.r).next().expect("two objects");
                    out.fresh_object(cs.r);
                    if recv == fixed {
                        out.fresh_object(cs.r);
                    }
                }
            }
            CounterexampleKind::EdgeUD => {
                let here = Edge::new(recv, cs.a, arg);
                if instance.contains_edge(&here) {
                    let others: Vec<Edge> = instance
                        .edges_labeled(cs.a)
                        .filter(|e| *e != here)
                        .collect();
                    for e in others {
                        out.remove_edge(&e);
                    }
                }
            }
            CounterexampleKind::EdgeUCD => {
                let here = Edge::new(recv, cs.a, arg);
                if !instance.contains_edge(&here) {
                    out.add_edge(here).expect("receiver objects present");
                }
                let others: Vec<Edge> = instance
                    .edges_labeled(cs.a)
                    .filter(|e| *e != here)
                    .collect();
                for e in others {
                    out.remove_edge(&e);
                }
            }
            CounterexampleKind::EdgeUC => {
                if instance.edges_labeled(cs.a).next().is_none() {
                    out.add_edge(Edge::new(recv, cs.a, arg))
                        .expect("receiver objects present");
                }
            }
        }
        MethodOutcome::Done(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Build the demonstration for a family, with the exact instance and
/// receiver set from the proof of Theorem 4.14.
pub fn counterexample(kind: CounterexampleKind) -> OrderDependenceDemo {
    let cs = counterexample_schema();
    let method = CounterexampleMethod::new(kind, cs.clone());
    let mut i = Instance::empty(Arc::clone(&cs.schema));
    let mut receivers = ReceiverSet::new();
    match kind {
        CounterexampleKind::NodeUD | CounterexampleKind::NodeUCD | CounterexampleKind::NodeUC => {
            // Instance {n, m} of type R. The proof uses the receiver set
            // {n,m} × {n,m}; we use its subset {[n,n], [m,m]} so that both
            // enumeration orders stay *defined* (with the full product,
            // every order eventually names a deleted object, making all
            // orders undefined — vacuously order-independent under the
            // footnote to Definition 3.1). On the subset the two orders
            // terminate with genuinely different instances.
            let n = Oid::new(cs.r, 0);
            let m = Oid::new(cs.r, 1);
            i.add_object(n);
            i.add_object(m);
            receivers.insert(Receiver::new(vec![n, n]));
            receivers.insert(Receiver::new(vec![m, m]));
        }
        CounterexampleKind::EdgeUD | CounterexampleKind::EdgeUCD => {
            // Instance R →a A ←a R; receivers {[n,m] | (n,a,m) ∈ I}.
            let n1 = Oid::new(cs.r, 0);
            let n2 = Oid::new(cs.r, 1);
            let m = Oid::new(cs.a_class, 0);
            i.add_object(n1);
            i.add_object(n2);
            i.add_object(m);
            i.add_edge(Edge::new(n1, cs.a, m)).expect("typed");
            i.add_edge(Edge::new(n2, cs.a, m)).expect("typed");
            receivers.insert(Receiver::new(vec![n1, m]));
            receivers.insert(Receiver::new(vec![n2, m]));
        }
        CounterexampleKind::EdgeUC => {
            // Instance with R and A nodes, no edges; receivers
            // {[n,m] | n : R, m : A}.
            let n1 = Oid::new(cs.r, 0);
            let n2 = Oid::new(cs.r, 1);
            let m1 = Oid::new(cs.a_class, 0);
            let m2 = Oid::new(cs.a_class, 1);
            for o in [n1, n2] {
                i.add_object(o);
            }
            for o in [m1, m2] {
                i.add_object(o);
            }
            for n in [n1, n2] {
                for m in [m1, m2] {
                    receivers.insert(Receiver::new(vec![n, m]));
                }
            }
        }
    }
    OrderDependenceDemo {
        method,
        instance: i,
        receivers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Apply the method along a given enumeration; `None` when some step
    /// is undefined or diverges.
    fn run(m: &CounterexampleMethod, i: &Instance, order: &[Receiver]) -> Option<Instance> {
        let mut cur = i.clone();
        for t in order {
            match m.apply(&cur, t) {
                MethodOutcome::Done(next) => cur = next,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Every family's demo really exhibits order dependence: two
    /// enumerations of `T` disagree (possibly via undefinedness).
    #[test]
    fn all_six_families_are_order_dependent() {
        for kind in CounterexampleKind::ALL {
            let demo = counterexample(kind);
            let orders = demo.receivers.enumerations();
            let outcomes: Vec<Option<Instance>> = orders
                .iter()
                .map(|o| run(&demo.method, &demo.instance, o))
                .collect();
            let first = &outcomes[0];
            assert!(
                outcomes.iter().any(|o| o != first),
                "{kind:?}: all enumeration orders agreed — no order dependence exhibited"
            );
        }
    }

    /// Family 4 in detail (the proof's R →a A ←a R example): one order
    /// leaves one a-edge, the other leaves the other a-edge.
    #[test]
    fn edge_ud_detail() {
        let demo = counterexample(CounterexampleKind::EdgeUD);
        let rs: Vec<Receiver> = demo.receivers.canonical_order();
        assert_eq!(rs.len(), 2);
        let ab = run(
            &demo.method,
            &demo.instance,
            &[rs[0].clone(), rs[1].clone()],
        )
        .unwrap();
        let ba = run(
            &demo.method,
            &demo.instance,
            &[rs[1].clone(), rs[0].clone()],
        )
        .unwrap();
        assert_ne!(ab, ba);
        assert_eq!(ab.edge_count(), 1);
        assert_eq!(ba.edge_count(), 1);
    }

    /// Family 1 in detail: after the first deletion the two-object test
    /// fails, so the second application is a no-op; orders starting with
    /// different receiving objects therefore end with different survivors.
    #[test]
    fn node_ud_detail() {
        let demo = counterexample(CounterexampleKind::NodeUD);
        let orders = demo.receivers.enumerations();
        let outcomes: Vec<_> = orders
            .iter()
            .map(|o| run(&demo.method, &demo.instance, o))
            .collect();
        let distinct: std::collections::BTreeSet<_> = outcomes.iter().collect();
        assert!(outcomes.iter().all(|o| o.is_some()), "all orders defined");
        assert_eq!(distinct.len(), 2, "the two orders end differently");
        for o in outcomes.iter().flatten() {
            assert_eq!(o.node_count(), 1, "exactly one survivor");
        }
    }
}
