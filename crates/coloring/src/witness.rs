//! The constructive witness of Proposition 4.13: for every sound coloring
//! (under the inflationary axiomatization of use), an update method whose
//! behaviour exhibits exactly the colored capabilities.
//!
//! Construction, following the proof verbatim: distinct *fixed objects*
//! `o_c^X, o_u^X, o_d^X` are reserved in every class `X`, and
//! `o_1^e, o_2^e` (source class) and `o_3^e, o_4^e` (target class) for
//! every schema edge `e`. The method, regardless of the receiver,
//! performs per-item actions determined by the item's colors — add,
//! conditional add, *provisional delete*, *provisional create*, edge
//! removal — plus, for items colored exactly `{u}` that no other action
//! tests, a divergence guard ("go into an infinite loop" in the paper; a
//! reified [`MethodOutcome::Diverges`] here).
//!
//! All presence tests are evaluated against the *input* instance and all
//! effects applied to a working copy: the fixed objects of distinct items
//! are distinct, so the only possible interferences are class-presence
//! tests, and evaluating them on the input matches the proof's intent and
//! keeps the method deterministic.

use std::collections::BTreeMap;
use std::sync::Arc;

use receivers_objectbase::{
    ClassId, Edge, Instance, MethodOutcome, Oid, PropId, Receiver, Schema, SchemaItem, Signature,
    UpdateMethod,
};

use crate::coloring::{Color, ColorSet, Coloring};
use crate::soundness::sound_inflationary;

/// Index base for the reserved fixed objects, chosen high so that test
/// instances (which number objects from 0) never collide with them.
const FIXED_BASE: u32 = 1_000_000;

/// The reserved fixed objects of the construction.
#[derive(Debug, Clone)]
pub struct FixedObjects {
    /// Per class: `(o_c, o_u, o_d)`.
    pub node: BTreeMap<ClassId, (Oid, Oid, Oid)>,
    /// Per edge: `(o_1, o_2, o_3, o_4)` with `o_1, o_2` in the source
    /// class and `o_3, o_4` in the target class.
    pub edge: BTreeMap<PropId, (Oid, Oid, Oid, Oid)>,
}

impl FixedObjects {
    /// Allocate the reserved objects for a schema (shared by both witness
    /// constructions).
    pub fn allocate_public(schema: &Schema) -> Self {
        Self::allocate(schema)
    }

    /// The `(o_c, o_u, o_d)` triple of a class.
    pub fn node_objects(&self, c: ClassId) -> (Oid, Oid, Oid) {
        self.node[&c]
    }

    /// The `(o_1, o_2, o_3, o_4)` tuple of an edge.
    pub fn edge_objects(&self, p: PropId) -> (Oid, Oid, Oid, Oid) {
        self.edge[&p]
    }

    fn allocate(schema: &Schema) -> Self {
        let mut counters: BTreeMap<ClassId, u32> = BTreeMap::new();
        let mut fresh = |c: ClassId| {
            let n = counters.entry(c).or_insert(FIXED_BASE);
            let o = Oid::new(c, *n);
            *n += 1;
            o
        };
        let node = schema
            .classes()
            .map(|c| (c, (fresh(c), fresh(c), fresh(c))))
            .collect();
        let edge = schema
            .properties()
            .map(|p| {
                let prop = schema.property(p);
                (
                    p,
                    (
                        fresh(prop.src),
                        fresh(prop.src),
                        fresh(prop.dst),
                        fresh(prop.dst),
                    ),
                )
            })
            .collect();
        Self { node, edge }
    }
}

/// One primitive action of the witness method.
#[derive(Debug, Clone)]
enum Action {
    /// `{c}` node: add `o_c^X` unconditionally.
    AddNode(Oid),
    /// `{c,u}` node: if `o_u^X` is present, add `o_c^X`.
    AddNodeIfPresent { test: Oid, add: Oid },
    /// Provisional deletion of a fixed object (node `{d,u}` case and edge
    /// `{d}` case); the tests are derived from the coloring at apply time.
    ProvisionalDeleteNode(Oid),
    /// Provisional creation of the edge `(o_1, e, o_3)` (edge `{c}`
    /// case).
    ProvisionalCreateEdge(Edge),
    /// `{c,u}` edge: if the test edge `(o_2, e, o_4)` is present,
    /// provisionally create `(o_1, e, o_3)`.
    CreateEdgeIfPresent { test: Edge, create: Edge },
    /// `{d,u}` edge: remove `(o_1, e, o_3)`.
    RemoveEdge(Edge),
    /// `{u}`-only node guard: diverge unless `o_u^X` is present.
    DivergeUnlessNode(Oid),
    /// `{u}`-only edge guard: diverge unless `(o_2, e, o_4)` is present.
    DivergeUnlessEdge(Edge),
}

/// The witness update method of a sound coloring.
pub struct WitnessMethod {
    schema: Arc<Schema>,
    coloring: Coloring,
    signature: Signature,
    fixed: FixedObjects,
    actions: Vec<Action>,
    name: String,
}

impl WitnessMethod {
    /// Build the witness for a coloring that is sound under
    /// Proposition 4.13. Returns `None` when the coloring is unsound (the
    /// construction is only defined for sound colorings).
    pub fn new(coloring: Coloring) -> Option<Self> {
        if !sound_inflationary(&coloring).is_empty() {
            return None;
        }
        let schema = Arc::clone(coloring.schema());
        let fixed = FixedObjects::allocate(&schema);
        // Signature: any tuple of u-colored classes; we use the first
        // u-colored class as receiving class (property 4 guarantees one).
        let receiving = schema
            .classes()
            .find(|&c| coloring.get(SchemaItem::Class(c)).contains(Color::U))?;
        let signature = Signature::new(vec![receiving]).expect("non-empty");

        let mut actions = Vec::new();
        let mut tested: std::collections::BTreeSet<SchemaItem> = Default::default();

        // Per-node actions.
        for x in schema.classes() {
            let k = coloring.get(SchemaItem::Class(x));
            let (oc, ou, od) = fixed.node[&x];
            let has = |c: Color| k.contains(c);
            match (has(Color::C), has(Color::D), has(Color::U)) {
                (true, false, false) => actions.push(Action::AddNode(oc)),
                (true, false, true) => {
                    actions.push(Action::AddNodeIfPresent { test: ou, add: oc });
                    tested.insert(SchemaItem::Class(x));
                }
                (false, true, true) => {
                    actions.push(Action::ProvisionalDeleteNode(od));
                    note_provisional_delete_tests(&coloring, &schema, x, &mut tested);
                }
                (true, true, true) => {
                    actions.push(Action::AddNodeIfPresent { test: ou, add: oc });
                    tested.insert(SchemaItem::Class(x));
                    actions.push(Action::ProvisionalDeleteNode(od));
                    note_provisional_delete_tests(&coloring, &schema, x, &mut tested);
                }
                // {d} and {c,d} on nodes are excluded by soundness;
                // ∅ and {u} need no action here.
                _ => {}
            }
        }

        // Per-edge actions.
        for e in schema.properties() {
            let k = coloring.get(SchemaItem::Prop(e));
            let prop = schema.property(e).clone();
            let (o1, o2, o3, o4) = fixed.edge[&e];
            let create = Edge::new(o1, e, o3);
            let test_edge = Edge::new(o2, e, o4);
            let has = |c: Color| k.contains(c);
            let note_create_tests = |tested: &mut std::collections::BTreeSet<SchemaItem>| {
                // The provisional create tests o1 (when A is not c) and o3
                // (when B is not c); by property 2 those classes are u.
                if !coloring.get(SchemaItem::Class(prop.src)).contains(Color::C) {
                    tested.insert(SchemaItem::Class(prop.src));
                }
                if !coloring.get(SchemaItem::Class(prop.dst)).contains(Color::C) {
                    tested.insert(SchemaItem::Class(prop.dst));
                }
            };
            match (has(Color::C), has(Color::D), has(Color::U)) {
                (true, false, false) => {
                    actions.push(Action::ProvisionalCreateEdge(create));
                    note_create_tests(&mut tested);
                }
                (false, true, false) => {
                    // Soundness property 1: some incident node is d.
                    let victim = if coloring.get(SchemaItem::Class(prop.src)).contains(Color::D) {
                        o1
                    } else {
                        o3
                    };
                    actions.push(Action::ProvisionalDeleteNode(victim));
                    note_provisional_delete_tests(&coloring, &schema, victim.class, &mut tested);
                }
                (true, true, false) => {
                    actions.push(Action::ProvisionalCreateEdge(create));
                    note_create_tests(&mut tested);
                    let victim = if coloring.get(SchemaItem::Class(prop.src)).contains(Color::D) {
                        o1
                    } else {
                        o3
                    };
                    actions.push(Action::ProvisionalDeleteNode(victim));
                    note_provisional_delete_tests(&coloring, &schema, victim.class, &mut tested);
                }
                (true, false, true) => {
                    actions.push(Action::CreateEdgeIfPresent {
                        test: test_edge,
                        create,
                    });
                    tested.insert(SchemaItem::Prop(e));
                    note_create_tests(&mut tested);
                }
                (false, true, true) => actions.push(Action::RemoveEdge(create)),
                (true, true, true) => {
                    actions.push(Action::ProvisionalCreateEdge(create));
                    note_create_tests(&mut tested);
                    actions.push(Action::RemoveEdge(Edge::new(o2, e, o4)));
                }
                _ => {}
            }
        }

        // {u}-only guards for untested items.
        for x in schema.classes() {
            let item = SchemaItem::Class(x);
            if coloring.get(item) == ColorSet::ONLY_U && !tested.contains(&item) {
                actions.push(Action::DivergeUnlessNode(fixed.node[&x].1));
            }
        }
        for e in schema.properties() {
            let item = SchemaItem::Prop(e);
            if coloring.get(item) == ColorSet::ONLY_U && !tested.contains(&item) {
                let (_, o2, _, o4) = fixed.edge[&e];
                actions.push(Action::DivergeUnlessEdge(Edge::new(o2, e, o4)));
            }
        }

        Some(Self {
            schema,
            coloring,
            signature,
            fixed,
            actions,
            name: "witness(Prop. 4.13)".to_owned(),
        })
    }

    /// The coloring this method realizes.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The reserved fixed objects (so tests can seed instances).
    pub fn fixed_objects(&self) -> &FixedObjects {
        &self.fixed
    }

    /// Should the provisional deletion of `victim` (class `x`) proceed on
    /// input `i`? Per the proof's `{d,u}` node case: every incident
    /// schema edge contributes a veto test.
    fn provisional_delete_allowed(&self, i: &Instance, victim: Oid) -> bool {
        let x = victim.class;
        for p in self.schema.properties_incident(x) {
            let ek = self.coloring.get(SchemaItem::Prop(p));
            let prop = self.schema.property(p);
            if !ek.contains(Color::D) && ek.contains(Color::U) {
                // Test for e-labeled edges incident to the victim.
                if i.edges_labeled(p)
                    .any(|e| e.src == victim || e.dst == victim)
                {
                    return false;
                }
            } else if !ek.contains(Color::D) && !ek.contains(Color::U) {
                // Test for any node of the other endpoint class.
                let other = if prop.src == x { prop.dst } else { prop.src };
                if i.class_members(other).next().is_some() {
                    return false;
                }
            }
        }
        true
    }

    /// Should the provisional creation of `edge` proceed? Per the `{c}`
    /// edge case: fail when an endpoint is absent and its class is not
    /// colored `c`.
    fn provisional_create_allowed(&self, i: &Instance, edge: &Edge) -> bool {
        let src_ok = i.contains_node(edge.src)
            || self
                .coloring
                .get(SchemaItem::Class(edge.src.class))
                .contains(Color::C);
        let dst_ok = i.contains_node(edge.dst)
            || self
                .coloring
                .get(SchemaItem::Class(edge.dst.class))
                .contains(Color::C);
        src_ok && dst_ok
    }
}

fn note_provisional_delete_tests(
    coloring: &Coloring,
    schema: &Schema,
    x: ClassId,
    tested: &mut std::collections::BTreeSet<SchemaItem>,
) {
    for p in schema.properties_incident(x) {
        let ek = coloring.get(SchemaItem::Prop(p));
        let prop = schema.property(p);
        if !ek.contains(Color::D) && ek.contains(Color::U) {
            tested.insert(SchemaItem::Prop(p));
        } else if !ek.contains(Color::D) && !ek.contains(Color::U) {
            let other = if prop.src == x { prop.dst } else { prop.src };
            tested.insert(SchemaItem::Class(other));
        }
    }
}

impl UpdateMethod for WitnessMethod {
    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn apply(&self, instance: &Instance, receiver: &Receiver) -> MethodOutcome {
        if let Err(e) = receiver.validate(&self.signature, instance) {
            return MethodOutcome::Undefined(e.to_string());
        }
        let mut out = instance.clone();
        for action in &self.actions {
            match action {
                Action::AddNode(o) => {
                    out.add_object(*o);
                }
                Action::AddNodeIfPresent { test, add } => {
                    if instance.contains_node(*test) {
                        out.add_object(*add);
                    }
                }
                Action::ProvisionalDeleteNode(victim) => {
                    if self.provisional_delete_allowed(instance, *victim) {
                        out.remove_object_cascade(*victim);
                    }
                }
                Action::ProvisionalCreateEdge(edge) => {
                    if self.provisional_create_allowed(instance, edge) {
                        out.add_object(edge.src);
                        out.add_object(edge.dst);
                        out.add_edge(*edge).expect("typed by construction");
                    }
                }
                Action::CreateEdgeIfPresent { test, create } => {
                    if instance.contains_edge(test)
                        && self.provisional_create_allowed(instance, create)
                    {
                        out.add_object(create.src);
                        out.add_object(create.dst);
                        out.add_edge(*create).expect("typed by construction");
                    }
                }
                Action::RemoveEdge(edge) => {
                    out.remove_edge(edge);
                }
                Action::DivergeUnlessNode(o) => {
                    if !instance.contains_node(*o) {
                        return MethodOutcome::Diverges;
                    }
                }
                Action::DivergeUnlessEdge(e) => {
                    if !instance.contains_edge(e) {
                        return MethodOutcome::Diverges;
                    }
                }
            }
        }
        MethodOutcome::Done(out)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    /// A simple sound coloring: u on everything except frequents, c on
    /// frequents (Example 4.15). The witness must be inflationary.
    fn simple_coloring() -> Coloring {
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        for item in [
            SchemaItem::Class(s.drinker),
            SchemaItem::Class(s.bar),
            SchemaItem::Class(s.beer),
            SchemaItem::Prop(s.likes),
            SchemaItem::Prop(s.serves),
        ] {
            k.add(item, Color::U);
        }
        k.add(SchemaItem::Prop(s.frequents), Color::C);
        k
    }

    fn seeded_instance(m: &WitnessMethod) -> (Instance, Receiver) {
        let s = m.coloring.schema();
        let mut i = Instance::empty(Arc::clone(s));
        // Seed all u-test objects and edges so guards pass.
        for (&_c, &(_, ou, od)) in &m.fixed.node {
            i.add_object(ou);
            i.add_object(od);
        }
        for (&p, &(o1, o2, o3, o4)) in &m.fixed.edge {
            for o in [o1, o2, o3, o4] {
                i.add_object(o);
            }
            i.add_edge(Edge::new(o2, p, o4)).unwrap();
        }
        let receiving = m.signature.receiving_class();
        let r = i.class_members(receiving).next().unwrap();
        (i, Receiver::new(vec![r]))
    }

    #[test]
    fn unsound_colorings_are_rejected() {
        let s = beer_schema();
        let k = Coloring::empty(Arc::clone(&s.schema));
        assert!(WitnessMethod::new(k).is_none());
    }

    #[test]
    fn simple_witness_is_inflationary() {
        let m = WitnessMethod::new(simple_coloring()).unwrap();
        let (i, r) = seeded_instance(&m);
        let out = m.apply(&i, &r).expect_done("witness");
        assert!(
            i.as_partial().is_subset(out.as_partial()),
            "Proposition 4.10: a simple minimal coloring implies I ⊆ M(I,t)"
        );
    }

    #[test]
    fn witness_creates_only_c_colored_types() {
        let s = beer_schema();
        let m = WitnessMethod::new(simple_coloring()).unwrap();
        let (i, r) = seeded_instance(&m);
        let out = m.apply(&i, &r).expect_done("witness");
        let created = out.as_partial().difference(i.as_partial()).unwrap();
        for item in created.items() {
            assert_eq!(
                item.label(),
                SchemaItem::Prop(s.frequents),
                "only the c-colored type may be created"
            );
        }
        assert!(created.edge_count() > 0, "the c action must fire");
    }

    #[test]
    fn u_only_guard_diverges_when_item_absent() {
        let m = WitnessMethod::new(simple_coloring()).unwrap();
        let (mut i, r) = seeded_instance(&m);
        // Remove the u-test edge for `serves` — a {u}-only item.
        let s = beer_schema();
        let (_, o2, _, o4) = m.fixed.edge[&s.serves];
        i.remove_edge(&Edge::new(o2, s.serves, o4));
        assert_eq!(m.apply(&i, &r), MethodOutcome::Diverges);
    }

    #[test]
    fn d_colored_witness_deletes() {
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        // Delete beers: Beer {d,u}; every incident edge must allow the
        // deletion tests — color likes and serves {d} is not allowed on
        // edges without an incident d node… color them {d,u}? Simplest
        // sound choice: Beer {d,u}, likes/serves {d,u}, Drinker/Bar u.
        k.add(SchemaItem::Class(s.beer), Color::D);
        k.add(SchemaItem::Class(s.beer), Color::U);
        for e in [s.likes, s.serves] {
            k.add(SchemaItem::Prop(e), Color::D);
            k.add(SchemaItem::Prop(e), Color::U);
        }
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k.add(SchemaItem::Class(s.bar), Color::U);
        assert!(sound_inflationary(&k).is_empty());
        let m = WitnessMethod::new(k).unwrap();
        let (i, r) = seeded_instance(&m);
        let out = m.apply(&i, &r).expect_done("witness");
        let deleted = i.as_partial().difference(out.as_partial()).unwrap();
        assert!(!deleted.is_empty(), "the d actions must delete something");
        for item in deleted.items() {
            let label = item.label();
            assert!(
                matches!(label, SchemaItem::Class(c) if c == s.beer)
                    || matches!(label, SchemaItem::Prop(p) if p == s.likes || p == s.serves),
                "only d-colored types may be deleted, got {label:?}"
            );
        }
    }
}
