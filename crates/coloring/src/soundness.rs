//! Soundness of colorings: the exact conditions under which a coloring is
//! the minimal coloring of *some* update method, for both axiomatizations
//! of "use" (Propositions 4.13 and 4.22).

use receivers_objectbase::{Schema, SchemaItem};

use crate::coloring::{Color, Coloring};

/// A structured violation of a soundness criterion, referencing the
/// numbered property of the corresponding proposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoundnessViolation {
    /// Property number in Proposition 4.13 (inflationary) or 4.22
    /// (deflationary).
    pub property: u8,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "property {} violated: {}", self.property, self.detail)
    }
}

fn has(k: &Coloring, item: SchemaItem, c: Color) -> bool {
    k.get(item).contains(c)
}

/// Check Proposition 4.13: soundness under the **inflationary**
/// axiomatization of use (Definition 4.7). Returns all violations (empty
/// = sound).
///
/// The properties:
/// 1. a node colored `d` is colored `u`; an edge colored `d` is colored
///    `u` or has an incident node colored `d`;
/// 2. an edge colored `c` has incident nodes colored `u` or `c`;
/// 3. if a node `B` is colored `d` then, for each incident edge
///    `(B,e,C)`/`(C,e,B)` that is neither `d` nor `u`, `C` is colored `u`;
/// 4. at least one node is colored `u`;
/// 5. an edge colored `u` has incident nodes colored `u`.
pub fn sound_inflationary(k: &Coloring) -> Vec<SoundnessViolation> {
    let schema = k.schema();
    let mut out = Vec::new();

    // Property 1.
    for c in schema.classes() {
        let item = SchemaItem::Class(c);
        if has(k, item, Color::D) && !has(k, item, Color::U) {
            out.push(SoundnessViolation {
                property: 1,
                detail: format!("node {} is colored d but not u", schema.class_name(c)),
            });
        }
    }
    for p in schema.properties() {
        let item = SchemaItem::Prop(p);
        if has(k, item, Color::D) && !has(k, item, Color::U) {
            let prop = schema.property(p);
            let src_d = has(k, SchemaItem::Class(prop.src), Color::D);
            let dst_d = has(k, SchemaItem::Class(prop.dst), Color::D);
            if !src_d && !dst_d {
                out.push(SoundnessViolation {
                    property: 1,
                    detail: format!(
                        "edge {} is colored d but neither u nor incident to a d node",
                        prop.name
                    ),
                });
            }
        }
    }

    // Property 2.
    for p in schema.properties() {
        let item = SchemaItem::Prop(p);
        if has(k, item, Color::C) {
            let prop = schema.property(p);
            for node in [prop.src, prop.dst] {
                let ni = SchemaItem::Class(node);
                if !has(k, ni, Color::U) && !has(k, ni, Color::C) {
                    out.push(SoundnessViolation {
                        property: 2,
                        detail: format!(
                            "edge {} is colored c but incident node {} is neither u nor c",
                            prop.name,
                            schema.class_name(node)
                        ),
                    });
                }
            }
        }
    }

    // Property 3.
    for b in schema.classes() {
        if !has(k, SchemaItem::Class(b), Color::D) {
            continue;
        }
        for p in schema.properties_incident(b) {
            let ei = SchemaItem::Prop(p);
            if has(k, ei, Color::D) || has(k, ei, Color::U) {
                continue;
            }
            let prop = schema.property(p);
            let other = if prop.src == b { prop.dst } else { prop.src };
            if !has(k, SchemaItem::Class(other), Color::U) {
                out.push(SoundnessViolation {
                    property: 3,
                    detail: format!(
                        "node {} is colored d; incident edge {} is neither d nor u, \
                         yet {} is not colored u",
                        schema.class_name(b),
                        prop.name,
                        schema.class_name(other)
                    ),
                });
            }
        }
    }

    // Property 4.
    if !schema
        .classes()
        .any(|c| has(k, SchemaItem::Class(c), Color::U))
    {
        out.push(SoundnessViolation {
            property: 4,
            detail: "no node is colored u".to_owned(),
        });
    }

    // Property 5.
    append_edge_u_closure_violations(k, schema, 5, &mut out);

    out
}

/// Check Proposition 4.22: soundness under the **deflationary**
/// axiomatization of use (Definition 4.16).
///
/// The properties:
/// 1. a node colored `c` is colored `u`; an edge colored `c` is colored
///    `u` or has an incident node colored `c` (the dual of 4.13's
///    property 1, per Lemma 4.20);
/// 2. if a node is colored `d`, every incident edge is colored `u` or
///    `c`, or the other node incident to that edge is colored `u`;
/// 3. at least one node is colored `u`;
/// 4. an edge colored `u` has incident nodes colored `u`.
pub fn sound_deflationary(k: &Coloring) -> Vec<SoundnessViolation> {
    let schema = k.schema();
    let mut out = Vec::new();

    // Property 1 (dual of the inflationary property 1).
    for c in schema.classes() {
        let item = SchemaItem::Class(c);
        if has(k, item, Color::C) && !has(k, item, Color::U) {
            out.push(SoundnessViolation {
                property: 1,
                detail: format!("node {} is colored c but not u", schema.class_name(c)),
            });
        }
    }
    for p in schema.properties() {
        let item = SchemaItem::Prop(p);
        if has(k, item, Color::C) && !has(k, item, Color::U) {
            let prop = schema.property(p);
            let src_c = has(k, SchemaItem::Class(prop.src), Color::C);
            let dst_c = has(k, SchemaItem::Class(prop.dst), Color::C);
            if !src_c && !dst_c {
                out.push(SoundnessViolation {
                    property: 1,
                    detail: format!(
                        "edge {} is colored c but neither u nor incident to a c node",
                        prop.name
                    ),
                });
            }
        }
    }

    // Property 2.
    for b in schema.classes() {
        if !has(k, SchemaItem::Class(b), Color::D) {
            continue;
        }
        for p in schema.properties_incident(b) {
            let ei = SchemaItem::Prop(p);
            if has(k, ei, Color::U) || has(k, ei, Color::C) {
                continue;
            }
            let prop = schema.property(p);
            let other = if prop.src == b { prop.dst } else { prop.src };
            if !has(k, SchemaItem::Class(other), Color::U) {
                out.push(SoundnessViolation {
                    property: 2,
                    detail: format!(
                        "node {} is colored d; incident edge {} is neither u nor c and \
                         node {} is not u",
                        schema.class_name(b),
                        prop.name,
                        schema.class_name(other)
                    ),
                });
            }
        }
    }

    // Property 3.
    if !schema
        .classes()
        .any(|c| has(k, SchemaItem::Class(c), Color::U))
    {
        out.push(SoundnessViolation {
            property: 3,
            detail: "no node is colored u".to_owned(),
        });
    }

    // Property 4.
    append_edge_u_closure_violations(k, schema, 4, &mut out);

    out
}

fn append_edge_u_closure_violations(
    k: &Coloring,
    schema: &Schema,
    property: u8,
    out: &mut Vec<SoundnessViolation>,
) {
    for p in schema.properties() {
        if has(k, SchemaItem::Prop(p), Color::U) {
            let prop = schema.property(p);
            for node in [prop.src, prop.dst] {
                if !has(k, SchemaItem::Class(node), Color::U) {
                    out.push(SoundnessViolation {
                        property,
                        detail: format!(
                            "edge {} is colored u but incident node {} is not",
                            prop.name,
                            schema.class_name(node)
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;
    use std::sync::Arc;

    fn base() -> (receivers_objectbase::examples::BeerSchema, Coloring) {
        let s = beer_schema();
        let k = Coloring::empty(Arc::clone(&s.schema));
        (s, k)
    }

    /// Example 4.15's coloring is sound under the inflationary
    /// axiomatization (the setting in which the paper presents it). Under
    /// the *deflationary* axioms it is not: by Lemma 4.20 a created edge
    /// must be `u` or have an incident `c` node, and in the deflationary
    /// reading the method does use `frequents` (removing an edge the
    /// method would re-derive changes `G(M(I,t) − {x})`). Adding `u` to
    /// `frequents` restores deflationary soundness — at the price of
    /// simplicity, exactly the duality of Section 4.3.
    #[test]
    fn example_4_15_is_sound() {
        let (s, mut k) = base();
        for item in [
            SchemaItem::Class(s.drinker),
            SchemaItem::Class(s.bar),
            SchemaItem::Class(s.beer),
            SchemaItem::Prop(s.likes),
            SchemaItem::Prop(s.serves),
        ] {
            k.add(item, Color::U);
        }
        k.add(SchemaItem::Prop(s.frequents), Color::C);
        assert!(sound_inflationary(&k).is_empty());
        let defl = sound_deflationary(&k);
        assert!(
            defl.iter().any(|v| v.property == 1),
            "deflationary property 1 must reject c-without-u on frequents: {defl:?}"
        );
        k.add(SchemaItem::Prop(s.frequents), Color::U);
        assert!(sound_deflationary(&k).is_empty());
        assert!(!k.is_simple());
    }

    /// Example 4.21's coloring ({u,c} on A, {c} on e, ∅ on B) is sound
    /// deflationary but NOT sound inflationary — the formal difference
    /// between the two axiomatizations.
    #[test]
    fn example_4_21_separates_the_axiomatizations() {
        let mut b = receivers_objectbase::Schema::builder();
        let a = b.class("A").unwrap();
        let bb = b.class("B").unwrap();
        let e = b.property(a, "e", bb).unwrap();
        let schema = b.build();
        let mut k = Coloring::empty(Arc::clone(&schema));
        k.add(SchemaItem::Class(a), Color::U);
        k.add(SchemaItem::Class(a), Color::C);
        k.add(SchemaItem::Prop(e), Color::C);

        let infl = sound_inflationary(&k);
        assert!(
            infl.iter().any(|v| v.property == 2),
            "property 2 of Prop. 4.13 must fail: got {infl:?}"
        );
        assert!(sound_deflationary(&k).is_empty());
    }

    /// A node colored d but not u violates inflationary property 1
    /// (Lemma 4.11).
    #[test]
    fn delete_without_use_is_unsound_inflationary() {
        let (s, mut k) = base();
        k.add(SchemaItem::Class(s.bar), Color::D);
        k.add(SchemaItem::Class(s.drinker), Color::U);
        let v = sound_inflationary(&k);
        assert!(v.iter().any(|x| x.property == 1));
    }

    /// Dually, a node colored c but not u violates deflationary property 1
    /// (Lemma 4.20).
    #[test]
    fn create_without_use_is_unsound_deflationary() {
        let (s, mut k) = base();
        k.add(SchemaItem::Class(s.bar), Color::C);
        k.add(SchemaItem::Class(s.drinker), Color::U);
        let v = sound_deflationary(&k);
        assert!(v.iter().any(|x| x.property == 1));
    }

    /// The empty coloring violates "at least one node colored u".
    #[test]
    fn empty_coloring_is_unsound() {
        let (_s, k) = base();
        assert!(sound_inflationary(&k).iter().any(|v| v.property == 4));
        assert!(sound_deflationary(&k).iter().any(|v| v.property == 3));
    }

    /// Edge u forces node u in both criteria.
    #[test]
    fn u_closure_enforced() {
        let (s, mut k) = base();
        k.add(SchemaItem::Prop(s.serves), Color::U);
        k.add(SchemaItem::Class(s.drinker), Color::U);
        assert!(sound_inflationary(&k).iter().any(|v| v.property == 5));
        assert!(sound_deflationary(&k).iter().any(|v| v.property == 4));
    }

    /// Inflationary property 3: deleting Bar while `serves` is uncolored
    /// requires Beer to be u.
    #[test]
    fn delete_node_requires_guard_on_unmarked_edges() {
        let (s, mut k) = base();
        k.add(SchemaItem::Class(s.bar), Color::D);
        k.add(SchemaItem::Class(s.bar), Color::U);
        // frequents and serves are incident to Bar, neither d nor u.
        // Drinker (other end of frequents) and Beer (other end of serves)
        // must be u.
        k.add(SchemaItem::Class(s.drinker), Color::U);
        let v = sound_inflationary(&k);
        assert!(v
            .iter()
            .any(|x| x.property == 3 && x.detail.contains("serves")));
        k.add(SchemaItem::Class(s.beer), Color::U);
        assert!(sound_inflationary(&k).is_empty());
    }
}
