//! The two axiomatizations of "use", executable.
//!
//! * **Inflationary** (Definition 4.7): `M` uses only information of type
//!   `X` when `M(I,t) = G(M(I|X, t) ∪ (I − I|X))` for all `(I, t)` —
//!   update the used part, re-add the rest.
//! * **Deflationary** (Definition 4.16): for every item `x` of `I` whose
//!   label is not in `X`, `M(G(I − {x}), t) = G(M(I,t) − {x})` — unused
//!   items can be removed before or after.
//!
//! Whether a method uses only `X` is undecidable in general; these
//! functions are *falsifiers*: they check the defining equation on a
//! supplied sample of instance–receiver pairs and report the first
//! violation. A `None` result means no counterexample was found in the
//! sample — evidence, not proof.

use std::collections::BTreeSet;

use receivers_objectbase::{
    Instance, Item, MethodOutcome, PartialInstance, Receiver, SchemaItem, UpdateMethod,
};

/// A violation of a use axiom on a concrete input.
#[derive(Debug, Clone)]
pub struct UseViolation {
    /// Which sample index failed.
    pub sample: usize,
    /// Description of the discrepancy.
    pub detail: String,
}

/// Check the closure conditions Definition 4.7 places on `X`: edges bring
/// their incident node labels, and the signature's classes are in `X`.
pub fn inflationary_x_wellformed(
    x: &BTreeSet<SchemaItem>,
    method: &dyn UpdateMethod,
    schema: &receivers_objectbase::Schema,
) -> bool {
    for item in x {
        if let SchemaItem::Prop(p) = item {
            let prop = schema.property(*p);
            if !x.contains(&SchemaItem::Class(prop.src))
                || !x.contains(&SchemaItem::Class(prop.dst))
            {
                return false;
            }
        }
    }
    method
        .signature()
        .classes()
        .iter()
        .all(|c| x.contains(&SchemaItem::Class(*c)))
}

/// Falsify Definition 4.7 on the samples: `M(I,t) = G(M(I|X,t) ∪ (I−I|X))`.
///
/// The samples are checked in parallel (`receivers_rt`); the reported
/// violation is the one at the lowest sample index, matching a
/// sequential scan.
pub fn falsify_inflationary_use(
    method: &(dyn UpdateMethod + Sync),
    x: &BTreeSet<SchemaItem>,
    samples: &[(Instance, Receiver)],
) -> Option<UseViolation> {
    let indexed: Vec<(usize, &(Instance, Receiver))> = samples.iter().enumerate().collect();
    receivers_rt::par_find_map_first(&indexed, |&(idx, (i, t))| {
        inflationary_violation(method, x, idx, i, t)
    })
}

fn inflationary_violation(
    method: &(dyn UpdateMethod + Sync),
    x: &BTreeSet<SchemaItem>,
    idx: usize,
    i: &Instance,
    t: &Receiver,
) -> Option<UseViolation> {
    let lhs = method.apply(i, t);
    let restricted = i.restrict(x).largest_instance();
    let rhs_inner = method.apply(&restricted, t);
    match (&lhs, &rhs_inner) {
        (MethodOutcome::Done(lres), MethodOutcome::Done(rres)) => {
            let rest = i.as_partial().difference(&i.restrict(x)).ok()?;
            let rhs = rres.as_partial().union(&rest).ok()?.largest_instance();
            if *lres != rhs {
                return Some(UseViolation {
                    sample: idx,
                    detail: format!(
                        "M(I,t) ≠ G(M(I|X,t) ∪ (I−I|X)):\n{}",
                        receivers_objectbase::display::diff(lres.as_partial(), rhs.as_partial())
                    ),
                });
            }
            None
        }
        (MethodOutcome::Diverges, MethodOutcome::Diverges) => None,
        (MethodOutcome::Undefined(_), _) | (_, MethodOutcome::Undefined(_)) => None,
        _ => Some(UseViolation {
            sample: idx,
            detail: format!("termination differs: lhs {lhs}, restricted {rhs_inner}"),
        }),
    }
}

/// Falsify Definition 4.16 on the samples: for each item `x ∉ X`-labeled,
/// `M(G(I−{x}),t) = G(M(I,t)−{x})`.
///
/// The samples are checked in parallel (`receivers_rt`); each sample's
/// item loop stays sequential. The reported violation is the one at the
/// lowest sample index, matching a sequential scan.
pub fn falsify_deflationary_use(
    method: &(dyn UpdateMethod + Sync),
    x: &BTreeSet<SchemaItem>,
    samples: &[(Instance, Receiver)],
) -> Option<UseViolation> {
    let indexed: Vec<(usize, &(Instance, Receiver))> = samples.iter().enumerate().collect();
    receivers_rt::par_find_map_first(&indexed, |&(idx, (i, t))| {
        deflationary_violation(method, x, idx, i, t)
    })
}

fn deflationary_violation(
    method: &(dyn UpdateMethod + Sync),
    x: &BTreeSet<SchemaItem>,
    idx: usize,
    i: &Instance,
    t: &Receiver,
) -> Option<UseViolation> {
    let full = match method.apply(i, t) {
        MethodOutcome::Done(out) => Some(out),
        MethodOutcome::Diverges => None,
        MethodOutcome::Undefined(_) => return None,
    };
    for item in i.items() {
        if x.contains(&item.label()) {
            continue;
        }
        let reduced = remove_item_g(i.as_partial(), &item);
        // The receiver may no longer be over the reduced instance; the
        // definition's quantification is over receivers of I, so we
        // skip those (the paper glosses over this corner).
        if t.validate(method.signature(), &reduced).is_err() {
            continue;
        }
        let lhs = method.apply(&reduced, t);
        match (&lhs, &full) {
            (MethodOutcome::Done(l), Some(f)) => {
                let rhs = remove_item_g(f.as_partial(), &item);
                if *l != rhs {
                    return Some(UseViolation {
                        sample: idx,
                        detail: format!(
                            "M(G(I−{{x}}),t) ≠ G(M(I,t)−{{x}}) for item {}:\n{}",
                            item.display(i.schema()),
                            receivers_objectbase::display::diff(l.as_partial(), rhs.as_partial())
                        ),
                    });
                }
            }
            (MethodOutcome::Diverges, None) => {}
            (MethodOutcome::Undefined(_), _) => {}
            _ => {
                return Some(UseViolation {
                    sample: idx,
                    detail: format!(
                        "termination differs after removing {}",
                        item.display(i.schema())
                    ),
                });
            }
        }
    }
    None
}

fn remove_item_g(p: &PartialInstance, item: &Item) -> Instance {
    let mut q = p.clone();
    q.remove(item);
    q.largest_instance()
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;
    use receivers_objectbase::{FnMethod, Oid, Signature};
    use std::sync::Arc;

    /// Example 4.17, first half: the method deleting all objects of class
    /// Beer. Under Definition 4.7, Beer must be in X; under
    /// Definition 4.16 it need not be.
    #[test]
    fn example_4_17_delete_all() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker]).unwrap();
        let beer = s.beer;
        let m = FnMethod::new("delete_all_beers", sig, move |i, _| {
            let mut out = i.clone();
            let beers: Vec<Oid> = i.class_members(beer).collect();
            for b in beers {
                out.remove_object_cascade(b);
            }
            MethodOutcome::Done(out)
        });

        // Sample: a drinker plus two beers.
        let mut i = Instance::empty(Arc::clone(&s.schema));
        let d = Oid::new(s.drinker, 0);
        i.add_object(d);
        i.add_object(Oid::new(s.beer, 0));
        i.add_object(Oid::new(s.beer, 1));
        let samples = vec![(i, Receiver::new(vec![d]))];

        // X without Beer: inflationary use FAILS (restriction hides the
        // beers, re-adding them resurrects what M deleted)…
        let x_without: BTreeSet<SchemaItem> = [SchemaItem::Class(s.drinker)].into();
        assert!(falsify_inflationary_use(&m, &x_without, &samples).is_some());
        // …but deflationary use HOLDS (removing a beer first or after is
        // the same).
        assert!(falsify_deflationary_use(&m, &x_without, &samples).is_none());
        // With Beer in X, inflationary use holds too.
        let x_with: BTreeSet<SchemaItem> =
            [SchemaItem::Class(s.drinker), SchemaItem::Class(s.beer)].into();
        assert!(falsify_inflationary_use(&m, &x_with, &samples).is_none());
    }

    /// Example 4.17, second half: the method always adding a fixed Beer
    /// object. Dual situation: Definition 4.16 needs Beer in X,
    /// Definition 4.7 does not.
    #[test]
    fn example_4_17_add_fixed() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker]).unwrap();
        let fixed = Oid::new(s.beer, 77);
        let m = FnMethod::new("add_fixed_beer", sig, move |i, _| {
            let mut out = i.clone();
            out.add_object(fixed);
            MethodOutcome::Done(out)
        });

        let mut i = Instance::empty(Arc::clone(&s.schema));
        let d = Oid::new(s.drinker, 0);
        i.add_object(d);
        i.add_object(fixed); // the fixed object is present in I
        let samples = vec![(i, Receiver::new(vec![d]))];

        let x_without: BTreeSet<SchemaItem> = [SchemaItem::Class(s.drinker)].into();
        // Inflationary: fine without Beer (M adds it on the restricted
        // instance as well; union re-merges).
        assert!(falsify_inflationary_use(&m, &x_without, &samples).is_none());
        // Deflationary: fails — removing the fixed beer first, M re-adds
        // it, but removing it after leaves it absent.
        assert!(falsify_deflationary_use(&m, &x_without, &samples).is_some());
        let x_with: BTreeSet<SchemaItem> =
            [SchemaItem::Class(s.drinker), SchemaItem::Class(s.beer)].into();
        assert!(falsify_deflationary_use(&m, &x_with, &samples).is_none());
    }

    #[test]
    fn x_wellformedness() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker]).unwrap();
        let m = FnMethod::new("noop", sig, |i, _| MethodOutcome::Done(i.clone()));
        // Edge without its incident nodes: ill-formed.
        let x: BTreeSet<SchemaItem> =
            [SchemaItem::Prop(s.frequents), SchemaItem::Class(s.drinker)].into();
        assert!(!inflationary_x_wellformed(&x, &m, &s.schema));
        let x: BTreeSet<SchemaItem> = [
            SchemaItem::Prop(s.frequents),
            SchemaItem::Class(s.drinker),
            SchemaItem::Class(s.bar),
        ]
        .into();
        assert!(inflationary_x_wellformed(&x, &m, &s.schema));
        // Missing the signature class: ill-formed.
        let x: BTreeSet<SchemaItem> = [SchemaItem::Class(s.bar)].into();
        assert!(!inflationary_x_wellformed(&x, &m, &s.schema));
    }
}
