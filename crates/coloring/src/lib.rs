#![warn(missing_docs)]

//! # receivers-coloring
//!
//! Schema colorings (Section 4 of *Applying an Update Method to a Set of
//! Receivers*): annotations assigning each schema item a subset of the
//! letters `{u, c, d}` — the update *uses*, *creates*, or *deletes*
//! information of that type.
//!
//! The paper studies two axiomatizations of "use":
//!
//! * the **inflationary** one (Definition 4.7): the update commutes with
//!   restricting the instance to the used part and re-adding the rest —
//!   `M(I,t) = G(M(I|U, t) ∪ (I − I|U))`;
//! * the **deflationary** one (Definition 4.16): unused items can be
//!   removed before or after the update with the same effect —
//!   `M(G(I − {x}), t) = G(M(I,t) − {x})`.
//!
//! For both, every method has a unique minimal coloring (Theorems 4.8 and
//! 4.18), sound colorings are characterized (Propositions 4.13 and 4.22),
//! and an update's order independence is guaranteed exactly by *simple*
//! colorings (Theorems 4.14 and 4.23).
//!
//! This crate provides:
//!
//! * [`coloring`] — the coloring lattice;
//! * [`soundness`] — both soundness criteria as executable checks with
//!   structured violations;
//! * [`axioms`] — both "use" axioms as executable (falsification-based)
//!   checks on concrete methods;
//! * [`witness`] — the constructive method of Proposition 4.13's proof:
//!   for every inflationary-sound coloring, an update method realizing it;
//! * [`witness_deflationary`] — the dual construction for Proposition
//!   4.22 (Section 4.3's "no new ideas … except edges colored c",
//!   realized via Example 4.21's fan-out trick);
//! * [`counterexamples`] — the six method families from the proofs of
//!   Theorems 4.14/4.23 witnessing that non-simple colorings admit
//!   order-dependent methods;
//! * [`infer`] — falsification-based checking of claimed colorings
//!   against sampled behaviour (the minimal coloring itself is
//!   undecidable).

pub mod axioms;
pub mod coloring;
pub mod counterexamples;
pub mod infer;
pub mod soundness;
pub mod witness;
pub mod witness_deflationary;

pub use coloring::{Color, ColorSet, Coloring};
pub use counterexamples::{counterexample, CounterexampleKind, OrderDependenceDemo};
pub use soundness::{sound_deflationary, sound_inflationary, SoundnessViolation};
pub use witness::WitnessMethod;
pub use witness_deflationary::DeflationaryWitness;
