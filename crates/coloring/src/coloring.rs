//! The coloring lattice (Definition 4.6): functions assigning each schema
//! item a subset of `{u, c, d}`, ordered pointwise by inclusion.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use receivers_objectbase::{Schema, SchemaItem};

/// One of the three colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Color {
    /// The update *uses* information of this type.
    U,
    /// The update *creates* information of this type.
    C,
    /// The update *deletes* information of this type.
    D,
}

/// A subset of `{u, c, d}`, packed into three bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColorSet(u8);

impl ColorSet {
    const U: u8 = 0b001;
    const C: u8 = 0b010;
    const D: u8 = 0b100;

    /// The empty color set.
    pub const EMPTY: ColorSet = ColorSet(0);
    /// `{u}`.
    pub const ONLY_U: ColorSet = ColorSet(Self::U);
    /// `{c}`.
    pub const ONLY_C: ColorSet = ColorSet(Self::C);
    /// `{d}`.
    pub const ONLY_D: ColorSet = ColorSet(Self::D);
    /// The full set `{u, c, d}`.
    pub const FULL: ColorSet = ColorSet(Self::U | Self::C | Self::D);

    /// Build from individual colors.
    pub fn of(colors: &[Color]) -> Self {
        let mut s = Self::EMPTY;
        for &c in colors {
            s = s.with(c);
        }
        s
    }

    fn bit(c: Color) -> u8 {
        match c {
            Color::U => Self::U,
            Color::C => Self::C,
            Color::D => Self::D,
        }
    }

    /// Add a color.
    #[must_use]
    pub fn with(self, c: Color) -> Self {
        ColorSet(self.0 | Self::bit(c))
    }

    /// Membership test.
    pub fn contains(self, c: Color) -> bool {
        self.0 & Self::bit(c) != 0
    }

    /// Number of colors.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no colors.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Lattice meet (intersection).
    #[must_use]
    pub fn meet(self, other: Self) -> Self {
        ColorSet(self.0 & other.0)
    }

    /// Lattice join (union).
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        ColorSet(self.0 | other.0)
    }

    /// Subset ordering.
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }
}

impl fmt::Display for ColorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (c, ch) in [(Color::U, 'u'), (Color::C, 'c'), (Color::D, 'd')] {
            if self.contains(c) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{ch}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// A coloring of a schema (Definition 4.6). Items not explicitly set are
/// colored `∅`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    schema: Arc<Schema>,
    map: BTreeMap<SchemaItem, ColorSet>,
}

impl Coloring {
    /// The everywhere-`∅` coloring.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            map: BTreeMap::new(),
        }
    }

    /// The "full" coloring assigning `{u,c,d}` to every item (the top of
    /// the lattice, used in the proof of Theorem 4.8).
    pub fn full(schema: Arc<Schema>) -> Self {
        let map = schema.items().map(|i| (i, ColorSet::FULL)).collect();
        Self { schema, map }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Color set of an item.
    pub fn get(&self, item: SchemaItem) -> ColorSet {
        self.map.get(&item).copied().unwrap_or(ColorSet::EMPTY)
    }

    /// Set an item's colors.
    pub fn set(&mut self, item: SchemaItem, colors: ColorSet) -> &mut Self {
        if colors.is_empty() {
            self.map.remove(&item);
        } else {
            self.map.insert(item, colors);
        }
        self
    }

    /// Add one color to an item.
    pub fn add(&mut self, item: SchemaItem, color: Color) -> &mut Self {
        let cur = self.get(item);
        self.set(item, cur.with(color))
    }

    /// Items colored `u` — the set `U` of Theorem 4.8's condition 3.
    pub fn used_items(&self) -> std::collections::BTreeSet<SchemaItem> {
        self.schema
            .items()
            .filter(|&i| self.get(i).contains(Color::U))
            .collect()
    }

    /// Pointwise meet (the proof of Theorem 4.8 shows minimal colorings
    /// exist because the conditions are meet-closed).
    pub fn meet(&self, other: &Self) -> Self {
        let mut out = Coloring::empty(Arc::clone(&self.schema));
        for item in self.schema.items() {
            out.set(item, self.get(item).meet(other.get(item)));
        }
        out
    }

    /// Pointwise join.
    pub fn join(&self, other: &Self) -> Self {
        let mut out = Coloring::empty(Arc::clone(&self.schema));
        for item in self.schema.items() {
            out.set(item, self.get(item).join(other.get(item)));
        }
        out
    }

    /// Pointwise subset ordering `κ ⊑ κ'`.
    pub fn is_subcoloring_of(&self, other: &Self) -> bool {
        self.schema
            .items()
            .all(|i| self.get(i).is_subset(other.get(i)))
    }

    /// A coloring is **simple** when every item has at most one color
    /// (Definition 4.9) — the exact criterion for guaranteed order
    /// independence (Theorems 4.14 and 4.23).
    pub fn is_simple(&self) -> bool {
        self.schema.items().all(|i| self.get(i).len() <= 1)
    }
}

impl fmt::Display for Coloring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "coloring {{")?;
        for item in self.schema.items() {
            let colors = self.get(item);
            if !colors.is_empty() {
                writeln!(f, "  {}: {}", self.schema.item_name(item), colors)?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    #[test]
    fn color_set_algebra() {
        let uc = ColorSet::of(&[Color::U, Color::C]);
        let ud = ColorSet::of(&[Color::U, Color::D]);
        assert_eq!(uc.meet(ud), ColorSet::ONLY_U);
        assert_eq!(uc.join(ud), ColorSet::FULL);
        assert!(ColorSet::ONLY_U.is_subset(uc));
        assert!(!uc.is_subset(ud));
        assert_eq!(uc.to_string(), "{u,c}");
        assert_eq!(uc.len(), 2);
    }

    #[test]
    fn example_4_15_coloring_is_simple() {
        // The method adding to the receiving drinker's bars all those
        // serving a beer he likes: u on Drinker/Bar/Beer/likes/serves,
        // c on frequents.
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        for item in [
            SchemaItem::Class(s.drinker),
            SchemaItem::Class(s.bar),
            SchemaItem::Class(s.beer),
            SchemaItem::Prop(s.likes),
            SchemaItem::Prop(s.serves),
        ] {
            k.add(item, Color::U);
        }
        k.add(SchemaItem::Prop(s.frequents), Color::C);
        assert!(k.is_simple());
        k.add(SchemaItem::Prop(s.frequents), Color::D);
        assert!(!k.is_simple());
    }

    #[test]
    fn meet_and_order() {
        let s = beer_schema();
        let full = Coloring::full(Arc::clone(&s.schema));
        let empty = Coloring::empty(Arc::clone(&s.schema));
        assert!(empty.is_subcoloring_of(&full));
        assert_eq!(full.meet(&empty), empty);
        assert_eq!(full.join(&empty), full);
        assert!(!full.is_simple());
        assert!(empty.is_simple());
    }

    #[test]
    fn used_items_collects_u() {
        let s = beer_schema();
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.bar), Color::U);
        k.add(SchemaItem::Prop(s.serves), Color::C);
        let used = k.used_items();
        assert_eq!(used.len(), 1);
        assert!(used.contains(&SchemaItem::Class(s.bar)));
    }
}
