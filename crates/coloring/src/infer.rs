//! Falsification-based analysis of a method's coloring.
//!
//! The minimal coloring of a method (Theorem 4.8) is a semantic property
//! and undecidable in general; what *can* be done mechanically is:
//!
//! * observe which types a method creates/deletes on sampled inputs —
//!   a lower bound on the `c`/`d` colors of the minimal coloring
//!   ([`observed_colors`]);
//! * check a *claimed* coloring against samples: every observed creation
//!   must be colored `c`, every deletion `d`, and the `u`-set must pass
//!   the use-axiom falsifier ([`check_claimed_coloring`]).

use receivers_objectbase::{Instance, Item, MethodOutcome, Receiver, UpdateMethod};

use crate::axioms::{falsify_deflationary_use, falsify_inflationary_use};
use crate::coloring::{Color, Coloring};

/// Which axiomatization of "use" to check against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseAxiom {
    /// Definition 4.7.
    Inflationary,
    /// Definition 4.16.
    Deflationary,
}

/// Observe created/deleted types on the samples: the returned coloring
/// assigns `c` to every label the method was seen to create and `d` to
/// every label it was seen to delete. This is a *lower bound* on the
/// minimal coloring's `c`/`d` components (conditions 1–2 of Theorem 4.8).
pub fn observed_colors(
    method: &dyn UpdateMethod,
    schema: &std::sync::Arc<receivers_objectbase::Schema>,
    samples: &[(Instance, Receiver)],
) -> Coloring {
    let mut k = Coloring::empty(std::sync::Arc::clone(schema));
    for (i, t) in samples {
        if let MethodOutcome::Done(out) = method.apply(i, t) {
            if let Ok(created) = out.as_partial().difference(i.as_partial()) {
                for item in created.items() {
                    k.add(item.label(), Color::C);
                }
            }
            if let Ok(deleted) = i.as_partial().difference(out.as_partial()) {
                for item in deleted.items() {
                    k.add(item.label(), Color::D);
                }
            }
        }
    }
    k
}

/// Check a claimed coloring against sampled behaviour. Returns the list of
/// discrepancies found (empty = consistent with the samples).
pub fn check_claimed_coloring(
    method: &(dyn UpdateMethod + Sync),
    claimed: &Coloring,
    samples: &[(Instance, Receiver)],
    axiom: UseAxiom,
) -> Vec<String> {
    let mut out = Vec::new();
    let schema = claimed.schema();

    // Conditions 1–2: observed creations/deletions are colored.
    let observed = observed_colors(method, schema, samples);
    for item in schema.items() {
        let seen = observed.get(item);
        let have = claimed.get(item);
        if seen.contains(Color::C) && !have.contains(Color::C) {
            out.push(format!(
                "method creates information of type {} but it is not colored c",
                schema.item_name(item)
            ));
        }
        if seen.contains(Color::D) && !have.contains(Color::D) {
            out.push(format!(
                "method deletes information of type {} but it is not colored d",
                schema.item_name(item)
            ));
        }
    }

    // Condition 3: the u-set passes the use axiom on the samples.
    let u_set = claimed.used_items();
    let violation = match axiom {
        UseAxiom::Inflationary => falsify_inflationary_use(method, &u_set, samples),
        UseAxiom::Deflationary => falsify_deflationary_use(method, &u_set, samples),
    };
    if let Some(v) = violation {
        out.push(format!(
            "the u-colored items do not satisfy the {axiom:?} use axiom (sample {}): {}",
            v.sample, v.detail
        ));
    }
    out
}

/// Falsifier for the *write-locality* assumption a shard-local execution
/// plan relies on: on every sample, all the method creates or deletes are
/// **edges leaving the receiving object** — no nodes appear or vanish, and
/// no edge of another source object changes. Algebraic methods satisfy
/// this by construction (Section 5.2: a statement rewrites the receiver's
/// own property edges); an arbitrary [`UpdateMethod`] need not, and a
/// partition of the object base keyed on the receiving object is only a
/// congruence for methods that do. Returns the violations found (empty =
/// consistent with the samples).
pub fn check_write_locality(
    method: &dyn UpdateMethod,
    samples: &[(Instance, Receiver)],
) -> Vec<String> {
    let mut out = Vec::new();
    for (n, (i, t)) in samples.iter().enumerate() {
        let MethodOutcome::Done(applied) = method.apply(i, t) else {
            continue;
        };
        for (verb, after, before) in [("creates", &applied, i), ("deletes", i, &applied)] {
            let Ok(diff) = after.as_partial().difference(before.as_partial()) else {
                continue;
            };
            for item in diff.items() {
                match item {
                    Item::Node(o) => out.push(format!(
                        "sample {n}: method {verb} node {o}, violating write locality"
                    )),
                    Item::Edge(e) if e.src != t.receiving_object() => out.push(format!(
                        "sample {n}: method {verb} edge {e} whose source is not the \
                         receiving object {}",
                        t.receiving_object()
                    )),
                    Item::Edge(_) => {}
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::{Edge, FnMethod, Receiver, SchemaItem, Signature};
    use std::sync::Arc;

    /// add_bar creates only `frequents` edges.
    fn add_bar_method(s: &receivers_objectbase::examples::BeerSchema) -> impl UpdateMethod {
        let frequents = s.frequents;
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        FnMethod::new("add_bar", sig, move |i, t| {
            let mut out = i.clone();
            out.add_edge(Edge::new(t.receiving_object(), frequents, t.arguments()[0]))
                .expect("receiver validated");
            MethodOutcome::Done(out)
        })
    }

    #[test]
    fn observed_colors_of_add_bar() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let m = add_bar_method(&s);
        let samples = vec![(i, Receiver::new(vec![o.d1, o.bar3]))];
        let k = observed_colors(&m, &s.schema, &samples);
        assert!(k.get(SchemaItem::Prop(s.frequents)).contains(Color::C));
        assert!(!k.get(SchemaItem::Prop(s.frequents)).contains(Color::D));
        assert!(k.get(SchemaItem::Class(s.bar)).is_empty());
    }

    /// Example 4.15-style claim for add_bar: u on Drinker/Bar (and the
    /// receiver classes), c on frequents. It passes the inflationary
    /// check.
    #[test]
    fn consistent_claim_passes() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let m = add_bar_method(&s);
        let samples = vec![(i, Receiver::new(vec![o.d1, o.bar3]))];
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k.add(SchemaItem::Class(s.bar), Color::U);
        k.add(SchemaItem::Prop(s.frequents), Color::C);
        let issues = check_claimed_coloring(&m, &k, &samples, UseAxiom::Inflationary);
        assert!(issues.is_empty(), "{issues:?}");
    }

    /// Omitting the c color on frequents is caught.
    #[test]
    fn missing_c_color_is_caught() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let m = add_bar_method(&s);
        let samples = vec![(i, Receiver::new(vec![o.d1, o.bar3]))];
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k.add(SchemaItem::Class(s.bar), Color::U);
        let issues = check_claimed_coloring(&m, &k, &samples, UseAxiom::Inflationary);
        assert!(issues.iter().any(|m| m.contains("not colored c")));
    }

    /// Write locality holds for add_bar (rewrites only the receiver's own
    /// edges) and is falsified both by a node-creating method and by one
    /// that edits another object's edges.
    #[test]
    fn write_locality_falsifier() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        // Give bar1 an edge of its own so a non-local write is possible.
        let lager = i.fresh_object(s.beer);
        i.link(o.bar1, s.serves, lager).unwrap();
        let samples = vec![(i.clone(), Receiver::new(vec![o.d1, o.bar3]))];
        assert!(check_write_locality(&add_bar_method(&s), &samples).is_empty());

        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let bar = s.bar;
        let spawner = FnMethod::new("spawn_bar", sig.clone(), move |i, _| {
            let mut out = i.clone();
            out.fresh_object(bar);
            MethodOutcome::Done(out)
        });
        let issues = check_write_locality(&spawner, &samples);
        assert!(issues.iter().any(|m| m.contains("node")), "{issues:?}");

        let serves = s.serves;
        let meddler = FnMethod::new("meddle", sig, move |i, _| {
            let mut out = i.clone();
            // Rewrites a *bar's* edges from a drinker receiver.
            let e = i.edges_labeled(serves).next().unwrap();
            out.remove_edge(&e);
            MethodOutcome::Done(out)
        });
        let issues = check_write_locality(&meddler, &samples);
        assert!(
            issues
                .iter()
                .any(|m| m.contains("not the receiving object")),
            "{issues:?}"
        );
    }

    /// favorite_bar (deletes and creates frequents) needs u on frequents
    /// under the inflationary axiom: claiming only {c,d} fails condition 3.
    #[test]
    fn favorite_bar_needs_u_on_frequents() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let frequents = s.frequents;
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let m = FnMethod::new("favorite_bar", sig, move |i, t| {
            let mut out = i.clone();
            let old: Vec<Edge> = i
                .edges_labeled(frequents)
                .filter(|e| e.src == t.receiving_object())
                .collect();
            for e in old {
                out.remove_edge(&e);
            }
            out.add_edge(Edge::new(t.receiving_object(), frequents, t.arguments()[0]))
                .expect("receiver validated");
            MethodOutcome::Done(out)
        });
        let samples = vec![(i, Receiver::new(vec![o.d1, o.bar3]))];
        let mut k = Coloring::empty(Arc::clone(&s.schema));
        k.add(SchemaItem::Class(s.drinker), Color::U);
        k.add(SchemaItem::Class(s.bar), Color::U);
        k.add(SchemaItem::Prop(s.frequents), Color::C);
        k.add(SchemaItem::Prop(s.frequents), Color::D);
        let issues = check_claimed_coloring(&m, &k, &samples, UseAxiom::Inflationary);
        assert!(
            issues.iter().any(|m| m.contains("use axiom")),
            "deleting specific frequents edges without u on frequents must fail: {issues:?}"
        );
        // Adding u fixes it.
        k.add(SchemaItem::Prop(s.frequents), Color::U);
        let issues = check_claimed_coloring(&m, &k, &samples, UseAxiom::Inflationary);
        assert!(issues.is_empty(), "{issues:?}");
    }
}
