//! Shared workload builders for the Criterion benchmark harness.
//!
//! Every bench in `benches/` regenerates one experiment row of
//! `DESIGN.md`'s experiment index (ids P1–P6 plus the coloring sweep);
//! the builders here construct the deterministic inputs so each row is
//! reproducible.

use std::sync::Arc;

use receivers_core::methods::LoopSchema;
use receivers_objectbase::examples::{employee_schema, EmployeeSchema};
use receivers_objectbase::gen::{random_instance, random_receivers, InstanceParams};
use receivers_objectbase::{Instance, Oid, ReceiverSet, Signature};

/// A drinker/bar/beer instance with `scale` objects per class and a
/// deterministic seed; edge counts stay roughly linear in `scale`.
pub fn beer_instance(scale: u32) -> Instance {
    let s = receivers_objectbase::examples::beer_schema();
    random_instance(
        &s.schema,
        InstanceParams {
            objects_per_class: scale,
            edge_density: (64.0 / f64::from(scale.max(1)) / f64::from(scale.max(1))).min(0.3),
        },
        0xB33F,
    )
}

/// A key set of `n` receivers of type `[Drinker, Bar]` over `instance`.
pub fn beer_key_set(instance: &Instance, n: usize) -> ReceiverSet {
    let s = receivers_objectbase::examples::beer_schema();
    let sig = Signature::new(vec![s.drinker, s.bar]).expect("non-empty");
    random_receivers(instance, &sig, n, true, 0x5EED)
}

/// An `e`-chain of `n` nodes on a loop schema (Example 6.4 workloads).
pub fn chain_instance(ls: &LoopSchema, n: u32) -> (Instance, Vec<Oid>) {
    let mut i = Instance::empty(Arc::clone(&ls.schema));
    let objs: Vec<Oid> = (0..n).map(|k| Oid::new(ls.c, k)).collect();
    for &o in &objs {
        i.add_object(o);
    }
    for w in objs.windows(2) {
        i.link(w[0], ls.e, w[1]).expect("typed");
    }
    (i, objs)
}

/// A Section 7 Employee instance with `n` employees: employee `k` earns
/// amount `k % amounts`, managers form a chain, `NewSal` raises every
/// amount, and `Fire` lists amount 0.
pub fn employees_instance(n: u32) -> (EmployeeSchema, Instance) {
    let es = employee_schema();
    let mut i = Instance::empty(Arc::clone(&es.schema));
    let amounts = (n / 2).max(2);
    let amount_objs: Vec<Oid> = (0..amounts * 2).map(|k| Oid::new(es.amount, k)).collect();
    for &a in &amount_objs {
        i.add_object(a);
    }
    let employees: Vec<Oid> = (0..n).map(|k| Oid::new(es.employee, k)).collect();
    for &e in &employees {
        i.add_object(e);
    }
    for (k, &e) in employees.iter().enumerate() {
        let salary = amount_objs[k % amounts as usize];
        i.link(e, es.salary, salary).expect("typed");
        let manager = employees[k.saturating_sub(1)];
        i.link(e, es.manager, manager).expect("typed");
    }
    // NewSal: amount k → amount k + amounts.
    for k in 0..amounts {
        let ns = Oid::new(es.newsal, k);
        i.add_object(ns);
        i.link(ns, es.old, amount_objs[k as usize]).expect("typed");
        i.link(ns, es.new, amount_objs[(k + amounts) as usize])
            .expect("typed");
    }
    // Fire: amount 0.
    let f = Oid::new(es.fire, 0);
    i.add_object(f);
    i.link(f, es.fire_amount, amount_objs[0]).expect("typed");
    (es, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let i = beer_instance(16);
        assert_eq!(i.node_count(), 48);
        let t = beer_key_set(&i, 8);
        assert!(t.is_key_set());
        assert_eq!(t.len(), 8);

        let ls = receivers_core::methods::loop_schema("e", "tc");
        let (chain, objs) = chain_instance(&ls, 10);
        assert_eq!(chain.edge_count(), 9);
        assert_eq!(objs.len(), 10);

        let (_es, emp) = employees_instance(20);
        assert!(emp.node_count() > 20);
    }
}
