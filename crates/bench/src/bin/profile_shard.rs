//! Scratch profiler for the seq-vs-shard cost model (not part of the
//! shipped benches; run with `cargo run --release -p receivers-bench
//! --bin profile_shard`).

use std::sync::Arc;
use std::time::Instant;

use receivers_core::apply_sequence_sharded;
use receivers_core::methods::add_bar;
use receivers_core::shard::{shard_of, ShardConfig, ShardPlan};
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Instance, Oid, Receiver, UpdateMethod};
use receivers_relalg::view::DatabaseView;

fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .unwrap();
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .unwrap();
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .unwrap();
        }
    }
    (s, i)
}

fn time<R>(label: &str, reps: u32, mut f: impl FnMut() -> R) {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    let total = t0.elapsed();
    println!(
        "{label:40} {:>10.3} ms/rep",
        total.as_secs_f64() * 1e3 / f64::from(reps)
    );
}

fn main() {
    let scale = 1024u32;
    let (s, i) = dense_instance(scale);
    let m = add_bar(&s);
    let shards = 8usize;
    let by_shard: Vec<Vec<Oid>> = {
        let mut by = vec![Vec::new(); shards];
        for k in 0..scale {
            let b = Oid::new(s.bar, k);
            by[shard_of(b, shards)].push(b);
        }
        by
    };
    let order: Vec<Receiver> = (0..scale)
        .map(|k| {
            let d = Oid::new(s.drinker, k);
            let home = shard_of(d, shards);
            let bar = by_shard[home][(k as usize) % by_shard[home].len()];
            Receiver::new(vec![d, bar])
        })
        .collect();
    let plan = ShardPlan::new(&m, &order, shards);
    println!(
        "local={} coordinated={}",
        plan.local_count(),
        plan.coordinated_count()
    );

    time("instance clone", 20, || i.clone());
    time("view build (DatabaseView::new)", 20, || {
        DatabaseView::new(&i)
    });
    let view = DatabaseView::new(&i);
    time("db clone (replica base)", 20, || view.database().clone());

    time("validate+evaluate only (1024 recv)", 5, || {
        let db = view.database();
        for t in &order {
            t.validate(m.signature(), &i).unwrap();
            std::hint::black_box(m.evaluate_on(db, t).unwrap());
        }
    });

    time("sequential full", 5, || {
        let mut w = i.clone();
        m.apply_in_place_sequence(&mut w, &order)
    });

    receivers_rt::set_num_threads(Some(shards));
    let cfg = ShardConfig {
        shards: Some(shards),
        ..ShardConfig::default()
    };
    time("sharded one-shot (t8)", 5, || {
        let mut w = i.clone();
        apply_sequence_sharded(&m, &mut w, &order, &cfg)
    });

    // Steady state: persistent view vs persistent executor, no clones in
    // the timed region — the wave is reapplied to the live instance.
    let mut seq_inst = i.clone();
    let mut seq_view = DatabaseView::new(&seq_inst);
    m.apply_sequence_viewed(&mut seq_inst, &mut seq_view, &order);
    time("sequential steady wave (persistent view)", 10, || {
        m.apply_sequence_viewed(&mut seq_inst, &mut seq_view, &order)
    });

    let mut ex_inst = i.clone();
    let mut exec = receivers_core::ShardedExecutor::new(&m, &cfg);
    exec.apply(&mut ex_inst, &order);
    assert_eq!(ex_inst, seq_inst);
    time("executor steady wave (t8)", 10, || {
        exec.apply(&mut ex_inst, &order)
    });
    assert_eq!(ex_inst, seq_inst);

    let cfg_inline = ShardConfig {
        shards: Some(shards),
        pool: receivers_rt::ShardPoolConfig::default().with_workers(1),
        ..ShardConfig::default()
    };
    let mut ex2_inst = i.clone();
    let mut exec2 = receivers_core::ShardedExecutor::new(&m, &cfg_inline);
    exec2.apply(&mut ex2_inst, &order);
    time("executor steady wave (8 shards, inline)", 10, || {
        exec2.apply(&mut ex2_inst, &order)
    });
    assert_eq!(ex2_inst, seq_inst);
    receivers_rt::set_num_threads(None);
}
