//! Assemble a `BENCH_*.json` snapshot from the per-benchmark JSON files
//! the vendored criterion harness writes when `BENCH_JSON_DIR` is set.
//!
//! Usage: `bench_snapshot <json-dir> <output-file>` — normally invoked via
//! `scripts/perf_snapshot.sh`, which runs the `seq_vs_par`, `chase`, and
//! `instance_index` benches into one directory (→ `BENCH_1.json`),
//! `view_maintenance` into another (→ `BENCH_2.json`), `relation_kernel`
//! plus `chase`/`view_maintenance` reruns into a third (→ `BENCH_3.json`),
//! and `seq_vs_shard` across a thread axis into a fifth (→ `BENCH_5.json`).
//!
//! Each paired bench ships its own baseline (the pre-optimization code
//! path), so the snapshot reports genuine before/after pairs measured in
//! the same run:
//!
//! * `seq_vs_par`: `sequential/*` (before) vs `parallel/*` (after);
//! * `instance_index`: `lookup/scan/*` vs `lookup/indexed/*`, and
//!   `sequence/cloning/*` vs `sequence/in_place/*`;
//! * `view_maintenance`: `sequence/rebuild/*` (a relational encoding
//!   rebuilt per receiver) vs `sequence/in_place/*` (one maintained
//!   view), and `refresh/rebuild/*` vs `refresh/incremental/*`;
//! * `relation_kernel`: `btreeset/*` (the pre-flat-kernel
//!   `BTreeSet<Vec<Oid>>` operators, behind `legacy-oracle`) vs `flat/*`
//!   (the arena-backed batch operators);
//! * `seq_vs_shard`: `sequential/*` (a steady-state reconciliation wave
//!   through a persistent maintained view) vs `sharded/*` (the persistent
//!   sharded executor), one pair per `{dist}/{scale}/t{threads}` point.
//!
//! The `chase` bench contributes its `chase/path/*` scaling series to
//! `all_medians_ns` only; its `path_naive` baseline was retired once the
//! per-sweep index proved ~1× at the benched sizes.
//!
//! Files named `metrics-*.json` in the input directory (the
//! `receivers-obs/metrics/v1` documents instrumented example runs write
//! via `--metrics-json`) are embedded verbatim under a `"metrics"` key,
//! so a `BENCH_4.json` snapshot carries the counters of the runs it
//! measured alongside their timings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `(before-prefix, after-prefix)` rewrite rules: a benchmark id starting
/// with a before-prefix pairs with the id obtained by substituting the
/// after-prefix.
const PAIR_RULES: &[(&str, &str)] = &[
    ("seq_vs_par/sequential/", "seq_vs_par/parallel/"),
    (
        "instance_index/lookup/scan/",
        "instance_index/lookup/indexed/",
    ),
    (
        "instance_index/sequence/cloning/",
        "instance_index/sequence/in_place/",
    ),
    (
        "view_maintenance/sequence/rebuild/",
        "view_maintenance/sequence/in_place/",
    ),
    (
        "view_maintenance/refresh/rebuild/",
        "view_maintenance/refresh/incremental/",
    ),
    ("relation_kernel/btreeset/", "relation_kernel/flat/"),
    ("obs_overhead/off/", "obs_overhead/on/"),
    ("seq_vs_shard/sequential/", "seq_vs_shard/sharded/"),
    ("plan/program/one_at_a_time/", "plan/program/compiled/"),
    ("plan/compile/one_at_a_time", "plan/compile/compiled"),
    ("plan/cse/one_at_a_time/", "plan/cse/compiled/"),
    ("plan/netting/one_at_a_time/", "plan/netting/compiled/"),
];

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(dir), Some(out)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_snapshot <json-dir> <output-file>");
        std::process::exit(2);
    };

    let mut medians: BTreeMap<String, u128> = BTreeMap::new();
    let mut metrics: BTreeMap<String, String> = BTreeMap::new();
    let entries = std::fs::read_dir(&dir).unwrap_or_else(|e| {
        eprintln!("cannot read {dir}: {e}");
        std::process::exit(1);
    });
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(_) => continue,
        };
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        if let Some(run) = stem.strip_prefix("metrics-") {
            metrics.insert(run.to_owned(), body);
        } else if let Some((id, ns)) = parse_measurement(&body) {
            medians.insert(id, ns);
        }
    }
    if medians.is_empty() {
        eprintln!("no benchmark JSON files found in {dir}");
        std::process::exit(1);
    }

    let mut pairs: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for (id, &before_ns) in &medians {
        for &(before_prefix, after_prefix) in PAIR_RULES {
            let Some(case) = id.strip_prefix(before_prefix) else {
                continue;
            };
            let after_id = format!("{after_prefix}{case}");
            let Some(&after_ns) = medians.get(&after_id) else {
                continue;
            };
            let group: &'static str = before_prefix
                .split('/')
                .next()
                .expect("prefixes contain '/'");
            let speedup = before_ns as f64 / (after_ns as f64).max(1.0);
            let mut row = String::new();
            write!(
                row,
                "{{\"case\": \"{case}\", \"before_id\": \"{id}\", \"before_ns\": {before_ns}, \
                 \"after_id\": \"{after_id}\", \"after_ns\": {after_ns}, \
                 \"speedup\": {speedup:.2}}}"
            )
            .expect("write to String");
            pairs.entry(group).or_default().push(row);
        }
    }

    let mut doc = String::from("{\n  \"schema\": \"bench-pairs-v1\",\n  \"benches\": {\n");
    let groups: Vec<String> = pairs
        .iter()
        .map(|(group, rows)| {
            format!(
                "    \"{group}\": [\n      {}\n    ]",
                rows.join(",\n      ")
            )
        })
        .collect();
    doc.push_str(&groups.join(",\n"));
    doc.push_str("\n  },\n  \"all_medians_ns\": {\n");
    let all: Vec<String> = medians
        .iter()
        .map(|(id, ns)| format!("    \"{id}\": {ns}"))
        .collect();
    doc.push_str(&all.join(",\n"));
    doc.push_str("\n  }");
    if !metrics.is_empty() {
        doc.push_str(",\n  \"metrics\": {\n");
        let runs: Vec<String> = metrics
            .iter()
            .map(|(run, body)| format!("    \"{run}\": {}", body.trim_end()))
            .collect();
        doc.push_str(&runs.join(",\n"));
        doc.push_str("\n  }");
    }
    doc.push_str("\n}\n");

    std::fs::write(&out, doc).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    let n_pairs: usize = pairs.values().map(Vec::len).sum();
    println!(
        "wrote {out}: {} measurements, {n_pairs} before/after pairs, {} metrics snapshot(s)",
        medians.len(),
        metrics.len()
    );
}

/// Extract `(id, median_ns)` from one harness file of the form
/// `{"id": "...", "median_ns": N}`.
fn parse_measurement(body: &str) -> Option<(String, u128)> {
    let id_start = body.find("\"id\": \"")? + 7;
    let id_len = body[id_start..].find('"')?;
    let id = body[id_start..id_start + id_len].to_owned();
    let ns_start = body.find("\"median_ns\": ")? + 13;
    let ns: String = body[ns_start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    Some((id, ns.parse().ok()?))
}
