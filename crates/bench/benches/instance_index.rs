//! Experiment P7 — the storage-layer optimizations of this repository
//! (DESIGN.md "Storage layer"):
//!
//! * `lookup/*` — successor lookups through the adjacency index
//!   (`O(log E + k)`) versus the flat-set emulation that scans every edge
//!   (`O(E)`), across growing instance sizes;
//! * `sequence/*` — sequential application of an `n`-receiver sequence
//!   with the clone-free in-place path ([`apply_seq_unchecked`], one
//!   working copy, `O(changed edges)` edits per receiver) versus the
//!   historical per-receiver cloning loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_core::methods::add_bar;
use receivers_core::sequential::apply_seq_unchecked;
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Instance, MethodOutcome, Oid, Receiver, ReceiverSet, UpdateMethod};

/// A beer instance with `scale` objects per class and edge counts linear
/// in `scale`: every drinker frequents 8 bars and likes 2 beers, every
/// bar serves 4 beers.
fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

/// Emulation of the pre-index storage: answer a successor lookup by
/// scanning the full edge set, as a flat `BTreeSet<Edge>` had to.
fn successors_by_scan(i: &Instance, o: Oid, p: receivers_objectbase::PropId) -> usize {
    i.edges().filter(|e| e.src == o && e.prop == p).count()
}

fn lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_index/lookup");
    group.sample_size(15);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        let probes: Vec<Oid> = (0..64u32.min(scale))
            .map(|k| Oid::new(s.drinker, (k * 17) % scale))
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", scale), &i, |b, i| {
            b.iter(|| {
                let mut total = 0usize;
                for &o in &probes {
                    total += i.successors(o, s.frequents).count();
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", scale), &i, |b, i| {
            b.iter(|| {
                let mut total = 0usize;
                for &o in &probes {
                    total += successors_by_scan(i, o, s.frequents);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

/// The pre-delta sequential loop: every receiver application clones the
/// whole instance (`O(n·E)` for an `n`-receiver sequence).
fn apply_sequence_cloning(
    method: &dyn UpdateMethod,
    instance: &Instance,
    order: &[Receiver],
) -> MethodOutcome {
    let mut current = instance.clone();
    for t in order {
        match method.apply(&current, t) {
            MethodOutcome::Done(next) => current = next,
            other => return other,
        }
    }
    MethodOutcome::Done(current)
}

fn sequences(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_index/sequence");
    group.sample_size(10);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        let m = add_bar(&s);
        let n = 64u32.min(scale);
        let set = ReceiverSet::from_iter((0..n).map(|k| {
            Receiver::new(vec![
                Oid::new(s.drinker, (k * 17) % scale),
                Oid::new(s.bar, (k * 29 + 1) % scale),
            ])
        }));
        let order = set.canonical_order();

        // Same receivers, same result, two execution strategies.
        let in_place = apply_seq_unchecked(&m, &i, &set).expect_done("in-place");
        let cloning = apply_sequence_cloning(&m, &i, &order).expect_done("cloning");
        assert_eq!(in_place, cloning);

        group.bench_with_input(BenchmarkId::new("in_place", scale), &set, |b, set| {
            b.iter(|| black_box(apply_seq_unchecked(&m, &i, set)))
        });
        group.bench_with_input(BenchmarkId::new("cloning", scale), &order, |b, order| {
            b.iter(|| black_box(apply_sequence_cloning(&m, &i, order)))
        });
    }
    group.finish();
}

criterion_group!(benches, lookups, sequences);
criterion_main!(benches);
