//! Experiment P10 — the observability layer's overhead (DESIGN.md
//! "Observability layer"):
//!
//! * `counter_x1000`, `histogram_x1000` — 1000 hot-path metric updates,
//!   disabled (one relaxed load + branch each) versus enabled (atomic
//!   `fetch_add`s);
//! * `span` — one span open/close cycle, disabled (two relaxed loads)
//!   versus enabled (timestamping plus the thread-local buffer flush and
//!   sink drain each iteration, so the sink cannot grow unboundedly
//!   under the calibrated iteration counts);
//! * `view_sequence/256` — the real `view_maintenance/sequence/in_place`
//!   workload (64-receiver `add_bar` sequence over the dense beer
//!   instance, the most densely instrumented pipeline in the workspace)
//!   with everything off versus tracing + metrics on.
//!
//! Ids pair as `obs_overhead/off/*` (before) versus `obs_overhead/on/*`
//! (after) in `BENCH_4.json`: the "speedup" column is the *slowdown*
//! factor of enabling instrumentation. The disabled-path claim —
//! instrumented-but-off code within noise of the pre-instrumentation
//! tree — is the cross-snapshot comparison of `relation_kernel` and
//! `view_maintenance` medians between `BENCH_3.json` and `BENCH_4.json`
//! (both reruns live in the P10 row of EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_core::methods::add_bar;
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Instance, Oid, Receiver, UpdateMethod};
use receivers_obs as obs;

obs::counter!(C_BENCH, "obs.test.counter");
obs::histogram!(H_BENCH, "obs.test.hist");

/// The dense beer workload of the `instance_index`/`view_maintenance`
/// benches: 8 `frequents` + 2 `likes` edges per drinker, 4 `serves` per
/// bar.
fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

fn primitives(c: &mut Criterion) {
    for (mode, trace, metrics) in [("off", false, false), ("on", true, true)] {
        let mut group = c.benchmark_group(format!("obs_overhead/{mode}"));
        group.sample_size(15);
        obs::set_enabled(trace, metrics);

        group.bench_function("counter_x1000", |b| {
            b.iter(|| {
                for _ in 0..1000 {
                    C_BENCH.incr();
                }
            })
        });
        group.bench_function("histogram_x1000", |b| {
            b.iter(|| {
                for k in 0..1000u64 {
                    H_BENCH.record(k);
                }
            })
        });
        group.bench_function("span", |b| {
            b.iter(|| {
                let guard = obs::span("obs_overhead.bench");
                drop(black_box(guard));
                // Drain what the closing span flushed so the sink stays
                // bounded over millions of calibrated iterations; a no-op
                // when tracing is off.
                obs::reset_spans();
            })
        });
        group.finish();
        obs::set_enabled(false, false);
        obs::reset_spans();
    }
}

fn view_sequence(c: &mut Criterion) {
    let scale = 256u32;
    let (s, i) = dense_instance(scale);
    let m = add_bar(&s);
    let order: Vec<Receiver> = (0..64u32)
        .map(|k| {
            Receiver::new(vec![
                Oid::new(s.drinker, (k * 17) % scale),
                Oid::new(s.bar, (k * 29 + 1) % scale),
            ])
        })
        .collect();

    for (mode, trace, metrics) in [("off", false, false), ("on", true, true)] {
        let mut group = c.benchmark_group(format!("obs_overhead/{mode}"));
        group.sample_size(10);
        obs::set_enabled(trace, metrics);
        group.bench_with_input(
            BenchmarkId::new("view_sequence", scale),
            &order,
            |b, order| {
                b.iter(|| {
                    let mut working = i.clone();
                    black_box(m.apply_in_place_sequence(&mut working, order));
                    obs::reset_spans();
                })
            },
        );
        group.finish();
        obs::set_enabled(false, false);
        obs::reset_spans();
    }
}

criterion_group!(benches, primitives, view_sequence);
criterion_main!(benches);
