//! Experiment P11 — coloring-certified sharded execution (DESIGN.md
//! "Sharded execution"): `time(strategy, threads)` scaling curves for
//! steady-state *reconciliation waves* — the same idempotent batch of
//! `add_bar` receivers re-applied to a live instance, as a reconciler or
//! retry loop would.
//!
//! Pairing, per `(distribution, scale, threads)` point:
//!
//! * `sequential/…` — a persistent instance with a persistent maintained
//!   [`DatabaseView`], re-applying the wave through
//!   `apply_sequence_viewed`. Each receiver re-emits its full gross
//!   rewrite (remove-all + add-all edges) through the transaction log
//!   every wave, even though the net effect is nil.
//! * `sharded/…` — a persistent [`ShardedExecutor`]: per-shard pruned
//!   replicas stay warm across waves, each receiver is netted against its
//!   home replica, and the live instance sees only the (empty, in steady
//!   state) net diff.
//!
//! Series:
//!
//! * `uniform/{scale}/t{n}` — two receivers per drinker, bars drawn from
//!   the drinker's own shard (the planner keeps every receiver local);
//! * `zipf/{scale}/t{n}` — receiving drinkers Zipf(1.1)-skewed, so one
//!   shard carries a disproportionate share of the segment;
//! * `xs25`/`xs50` — a 25% / 50% fraction of receivers pick an
//!   out-of-shard bar and fall back to the ordered coordinator, splitting
//!   the order into short segments;
//! * `sharded-upgraded/xs25|xs50` — the same cross-shard waves under the
//!   home-replica upgrade (`ShardConfig::upgrade`): every receiver runs
//!   on its receiving drinker's shard, zero coordinator fallbacks, so the
//!   `sharded` vs `sharded-upgraded` pair prices exactly what the
//!   conservative co-shard rule was costing (experiment P12,
//!   `BENCH_6.json`).
//!
//! The win measured here is algorithmic — gross op traffic avoided per
//! wave — so the curves remain meaningful even on a single hardware core;
//! EXPERIMENTS.md P11 records the host's core count next to the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

use receivers_core::methods::add_bar;
use receivers_core::shard::{certify, shard_of, ShardConfig};
use receivers_core::{apply_sequence_sharded, ShardPlan, ShardedExecutor};
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{InPlaceOutcome, Instance, Oid, Receiver};
use receivers_relalg::view::DatabaseView;

/// The thread axis: `RECEIVERS_BENCH_THREADS="1,2,4,8"` override, else
/// 1/2/4/8.
fn thread_axis() -> Vec<usize> {
    std::env::var("RECEIVERS_BENCH_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse::<usize>().ok())
                .filter(|&t| t >= 1)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// `scale` objects per class; every drinker frequents 8 bars and likes 2
/// beers, every bar serves 4 beers (the `view_maintenance` workload).
fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

/// Bars of each shard under an `n`-way partition, so receiver generators
/// can pick arguments inside (or deliberately outside) the receiving
/// drinker's shard.
fn bars_by_shard(s: &BeerSchema, scale: u32, shards: usize) -> Vec<Vec<Oid>> {
    let mut by = vec![Vec::new(); shards];
    for k in 0..scale {
        let b = Oid::new(s.bar, k);
        by[shard_of(b, shards)].push(b);
    }
    by
}

/// Pick a bar for `drinker`: from its own shard, or (when `cross`) from
/// the next non-empty shard over.
fn pick_bar(by_shard: &[Vec<Oid>], drinker: Oid, cross: bool, rng: &mut StdRng) -> Oid {
    let shards = by_shard.len();
    let home = shard_of(drinker, shards);
    let mut shard = home;
    if cross && shards > 1 {
        shard = (home + 1 + rng.random_range(0..shards - 1)) % shards;
    }
    for probe in 0..shards {
        let cands = &by_shard[(shard + probe) % shards];
        if !cands.is_empty() {
            return cands[rng.random_range(0..cands.len())];
        }
    }
    unreachable!("at least one shard holds a bar");
}

/// Zipf(alpha) sampler over `0..n` via inverse CDF — deterministic, no
/// float surprises across platforms at these sizes.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u32, alpha: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / f64::from(k + 1).powf(alpha);
            cdf.push(acc);
        }
        for w in &mut cdf {
            *w /= acc;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// One reconciliation wave: two `add_bar` receivers per slot (the wave is
/// denser than the object population, as a retried batch would be).
/// `dist` controls the receiving-drinker distribution and the cross-shard
/// fraction. `add_bar` is monotone, so re-applying the same wave is
/// idempotent after the first pass — exactly the steady state the timed
/// region measures.
fn wave_for(s: &BeerSchema, scale: u32, shards: usize, dist: &str, seed: u64) -> Vec<Receiver> {
    let by_shard = bars_by_shard(s, scale, shards);
    let mut rng = StdRng::seed_from_u64(seed ^ (shards as u64) << 8 ^ u64::from(scale));
    let zipf = Zipf::new(scale, 1.1);
    (0..2 * scale)
        .map(|slot| {
            let k = slot % scale;
            let (d, cross) = match dist {
                "uniform" => (k, false),
                "zipf" => (zipf.sample(&mut rng), false),
                "xs25" => (k, rng.random_bool(0.25)),
                "xs50" => (k, rng.random_bool(0.50)),
                other => unreachable!("unknown distribution {other}"),
            };
            let drinker = Oid::new(s.drinker, d);
            let bar = pick_bar(&by_shard, drinker, cross, &mut rng);
            Receiver::new(vec![drinker, bar])
        })
        .collect()
}

fn seq_vs_shard(c: &mut Criterion) {
    let threads = thread_axis();
    let mut group = c.benchmark_group("seq_vs_shard");
    group.sample_size(10);
    for &scale in &[256u32, 1024] {
        let (s, i) = dense_instance(scale);
        let m = add_bar(&s);
        for dist in ["uniform", "zipf", "xs25", "xs50"] {
            // The cross-shard series only needs the large scale — the
            // point is the fallback fraction, not the size sweep.
            if dist.starts_with("xs") && scale != 1024 {
                continue;
            }
            for &t in &threads {
                let wave = wave_for(&s, scale, t, dist, 0xB5EE);
                receivers_rt::set_num_threads(Some(t));
                let cfg = ShardConfig {
                    shards: Some(t),
                    ..ShardConfig::default()
                };

                // Same receivers, same result, two execution strategies —
                // checked on the cold path before anything is timed.
                let mut oneshot = i.clone();
                let out = apply_sequence_sharded(&m, &mut oneshot, &wave, &cfg);
                assert_eq!(out, InPlaceOutcome::Applied);
                if dist == "uniform" && t > 1 {
                    let plan = ShardPlan::new(&m, &wave, t);
                    assert_eq!(plan.coordinated_count(), 0, "uniform must stay local");
                }

                // Persistent sequential arm: live instance + maintained
                // view, converged once so the timed waves are steady-state.
                let mut seq_inst = i.clone();
                let mut seq_view = DatabaseView::new(&seq_inst);
                let out = m.apply_sequence_viewed(&mut seq_inst, &mut seq_view, &wave);
                assert_eq!(out, InPlaceOutcome::Applied);
                assert_eq!(seq_inst, oneshot, "{dist}/{scale}/t{t}");

                // Persistent sharded arm: warm per-shard replicas.
                let mut ex_inst = i.clone();
                let mut exec = ShardedExecutor::new(&m, &cfg);
                let out = exec.apply(&mut ex_inst, &wave);
                assert_eq!(out, InPlaceOutcome::Applied);
                assert_eq!(ex_inst, seq_inst, "{dist}/{scale}/t{t}");

                let case = format!("{scale}/t{t}");
                group.bench_with_input(
                    BenchmarkId::new(format!("sequential/{dist}"), &case),
                    &wave,
                    |b, wave| {
                        b.iter(|| {
                            black_box(m.apply_sequence_viewed(&mut seq_inst, &mut seq_view, wave))
                        })
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("sharded/{dist}"), &case),
                    &wave,
                    |b, wave| b.iter(|| black_box(exec.apply(&mut ex_inst, wave))),
                );

                // Both arms must still agree after every timed wave.
                assert_eq!(ex_inst, seq_inst, "{dist}/{scale}/t{t} post-bench");

                // Solver-upgraded arm, cross-shard series only: the
                // home-replica upgrade localizes exactly the receivers
                // the xs waves demote, so this third curve prices the
                // conservative co-shard rule.
                if dist.starts_with("xs") {
                    let plan = ShardPlan::with_certificate_upgraded(&certify(&m), &wave, t);
                    assert_eq!(
                        plan.coordinated_count(),
                        0,
                        "upgrade must localize every xs receiver"
                    );
                    let up_cfg = ShardConfig {
                        upgrade: true,
                        ..cfg.clone()
                    };
                    let mut up_inst = i.clone();
                    let mut up_exec = ShardedExecutor::new(&m, &up_cfg);
                    let out = up_exec.apply(&mut up_inst, &wave);
                    assert_eq!(out, InPlaceOutcome::Applied);
                    assert_eq!(up_inst, seq_inst, "{dist}/{scale}/t{t} upgraded");
                    group.bench_with_input(
                        BenchmarkId::new(format!("sharded-upgraded/{dist}"), &case),
                        &wave,
                        |b, wave| b.iter(|| black_box(up_exec.apply(&mut up_inst, wave))),
                    );
                    assert_eq!(up_inst, seq_inst, "{dist}/{scale}/t{t} upgraded post-bench");
                }
            }
        }
    }
    receivers_rt::set_num_threads(None);
    group.finish();
}

criterion_group!(benches, seq_vs_shard);
criterion_main!(benches);
