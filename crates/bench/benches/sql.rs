//! Experiment P6 — Section 7's cost comparison: the cursor-based update
//! (B) performs one subquery per tuple, the set-oriented statement (A)
//! and the improved (parallel) program one global evaluation; the two
//! deletes compare the same way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_bench::employees_instance;
use receivers_core::sequential::apply_seq_unchecked;
use receivers_sql::scenarios::{CURSOR_DELETE_SIMPLE, CURSOR_UPDATE_B, DELETE_SIMPLE, UPDATE_A};
use receivers_sql::{compile, improve_cursor_update, parse, CompiledStatement};

fn updates(c: &mut Criterion) {
    let (_es, catalog) = receivers_sql::catalog::employee_catalog();
    let stmt_a = parse(UPDATE_A).unwrap();
    let stmt_b = parse(CURSOR_UPDATE_B).unwrap();
    let CompiledStatement::SetUpdate(a) = compile(&stmt_a, &catalog).unwrap() else {
        unreachable!()
    };
    let CompiledStatement::CursorUpdate(b) = compile(&stmt_b, &catalog).unwrap() else {
        unreachable!()
    };
    let improved = improve_cursor_update(&b).unwrap().expect("B improves");

    let mut group = c.benchmark_group("sql/update");
    group.sample_size(10);
    for &n in &[8u32, 32, 128] {
        let (_es, i) = employees_instance(n);
        group.bench_with_input(BenchmarkId::new("set_oriented_A", n), &i, |bch, i| {
            bch.iter(|| black_box(a.apply(i).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cursor_B", n), &i, |bch, i| {
            let m = b.interpreted_method();
            let t = b.receivers(i);
            bch.iter(|| black_box(apply_seq_unchecked(&m, i, &t)))
        });
        group.bench_with_input(BenchmarkId::new("improved_parallel", n), &i, |bch, i| {
            bch.iter(|| black_box(improved.apply(i).unwrap()))
        });
    }
    group.finish();
}

fn deletes(c: &mut Criterion) {
    let (_es, catalog) = receivers_sql::catalog::employee_catalog();
    let CompiledStatement::SetDelete(sd) =
        compile(&parse(DELETE_SIMPLE).unwrap(), &catalog).unwrap()
    else {
        unreachable!()
    };
    let CompiledStatement::CursorDelete(cd) =
        compile(&parse(CURSOR_DELETE_SIMPLE).unwrap(), &catalog).unwrap()
    else {
        unreachable!()
    };

    let mut group = c.benchmark_group("sql/delete");
    group.sample_size(10);
    for &n in &[8u32, 32, 128] {
        let (_es, i) = employees_instance(n);
        group.bench_with_input(BenchmarkId::new("set_oriented", n), &i, |bch, i| {
            bch.iter(|| black_box(sd.apply(i).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("cursor", n), &i, |bch, i| {
            let m = cd.method();
            let t = cd.receivers(i);
            bch.iter(|| black_box(apply_seq_unchecked(&m, i, &t)))
        });
    }
    group.finish();
}

criterion_group!(benches, updates, deletes);
criterion_main!(benches);
