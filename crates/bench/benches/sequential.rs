//! Experiment P4 — sequential-application throughput (Section 3): cost of
//! `M(I, t₁…tₙ)` for the paper's three beer methods as the instance size
//! grows, and the cost of the exhaustive order-independence check as the
//! receiver-set size grows (|T|! enumerations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_bench::{beer_instance, beer_key_set};
use receivers_core::methods::{add_bar, delete_bar, favorite_bar};
use receivers_core::sequential::{apply_seq_unchecked, order_independent_on};

fn application_throughput(c: &mut Criterion) {
    let s = receivers_objectbase::examples::beer_schema();
    let mut group = c.benchmark_group("sequential/apply");
    group.sample_size(20);
    for &scale in &[8u32, 32, 128] {
        let instance = beer_instance(scale);
        let t = beer_key_set(&instance, 8);
        for m in [add_bar(&s), favorite_bar(&s), delete_bar(&s)] {
            use receivers_objectbase::UpdateMethod as _;
            group.bench_with_input(BenchmarkId::new(m.name().to_owned(), scale), &t, |b, t| {
                b.iter(|| black_box(apply_seq_unchecked(&m, &instance, t)))
            });
        }
    }
    group.finish();
}

fn exhaustive_check_cost(c: &mut Criterion) {
    let s = receivers_objectbase::examples::beer_schema();
    let m = add_bar(&s);
    let mut group = c.benchmark_group("sequential/exhaustive_check");
    group.sample_size(10);
    for &n in &[2usize, 3, 4, 5] {
        let instance = beer_instance(16);
        let t = beer_key_set(&instance, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(order_independent_on(&m, &instance, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, application_throughput, exhaustive_check_cost);
criterion_main!(benches);
