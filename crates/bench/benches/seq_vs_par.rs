//! Experiment P1 — the Section 6 efficiency claim: parallel application
//! evaluates **one** algebra expression per statement, sequential
//! application evaluates `|T|`, so `M_par` should scale far better in the
//! receiver-set size. The paper asserts this qualitatively ("can be
//! implemented much more efficiently"); this bench regenerates the series
//! `time(strategy, |T|)` for a key-order-independent method on key sets
//! (where Theorem 6.5 guarantees identical results).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_bench::{beer_instance, beer_key_set};
use receivers_core::methods::{add_bar, favorite_bar};
use receivers_core::parallel::apply_par;
use receivers_core::sequential::apply_seq_unchecked;

fn seq_vs_par(c: &mut Criterion) {
    let s = receivers_objectbase::examples::beer_schema();
    let methods = [favorite_bar(&s), add_bar(&s)];
    let mut group = c.benchmark_group("seq_vs_par");
    group.sample_size(20);
    for &n in &[1usize, 4, 16, 64, 256] {
        let instance = beer_instance((n as u32).max(16) * 2);
        let t = beer_key_set(&instance, n);
        assert!(t.is_key_set());
        for m in &methods {
            use receivers_objectbase::UpdateMethod as _;
            group.bench_with_input(
                BenchmarkId::new(format!("sequential/{}", m.name()), t.len()),
                &t,
                |b, t| b.iter(|| black_box(apply_seq_unchecked(m, &instance, t))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("parallel/{}", m.name()), t.len()),
                &t,
                |b, t| b.iter(|| black_box(apply_par(m, &instance, t).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, seq_vs_par);
criterion_main!(benches);
