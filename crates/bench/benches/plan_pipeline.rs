//! Experiment P14 — the program-level plan pipeline: a whole update
//! program executed one statement at a time (the pre-planner path:
//! compile each statement, apply it, move on) against the compiled
//! expression-DAG pipeline (`compile_program` once, `execute_viewed`),
//! across uniform and Zipf-skewed salary distributions, plus dedicated
//! pairs that price the two program-level passes on their own:
//! selector sharing (CSE) and dead-store netting.
//!
//! Honesty notes baked into the series:
//! - the execution pairs pre-compile **both** sides, so they price
//!   execution only; planning overhead is priced separately by the
//!   `plan/compile` pair;
//! - the compiled iteration pays for its `DatabaseView` construction
//!   inside the timed loop (the pipeline needs the view, the
//!   one-at-a-time path does not);
//! - the netting control runs the **same two statements reversed**, so
//!   the dead-store and live-store programs do identical per-stage work
//!   and the delta is the skipped stage alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use receivers_core::sequential::apply_seq_unchecked;
use receivers_objectbase::examples::{employee_schema, EmployeeSchema};
use receivers_objectbase::{Instance, Oid};
use receivers_relalg::view::DatabaseView;
use receivers_sql::catalog::employee_catalog;
use receivers_sql::scenarios::UPDATE_A;
use receivers_sql::{compile, compile_program, parse, Catalog, CompiledStatement, SqlStatement};

/// The headline workload: a six-statement program that exercises every
/// planner pass — two statements share the `Salary in table Fire`
/// selector (CSE), the cursor update improves to a one-shot `par(E)`
/// store, the blind overwrite nets it, and the guarded cursor update
/// keeps the interpreted loop path in the mix.
const MIXED_PROGRAM: &[&str] = &[
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.Manager = E1.EmpId) \
     where Salary in table Fire",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary in table Fire",
    "for each t in Employee do update t set Salary = \
     (select New from NewSal where Old = Salary)",
    "update Employee set Salary = (select Amount from Fire)",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary not in table Fire",
    "for each t in Employee do if Manager = EmpId update t set Salary = \
     (select New from NewSal where Old = Salary)",
];

/// CSE pair: two statements guarded by the same (expensive) `exists`
/// subquery share one compiled selector evaluation...
const CSE_SHARED: &[&str] = &[
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.Manager = E1.EmpId) \
     where exists (select * from NewSal where Old = Salary)",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where exists (select * from NewSal where Old = Salary)",
];

/// ...while the control's second guard is the **same predicate through a
/// table alias** — semantically and cost-wise identical, structurally
/// distinct, so the planner cannot share it and both selectors run. The
/// delta between the two pairs is the price of the second evaluation.
const CSE_DISTINCT: &[&str] = &[
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.Manager = E1.EmpId) \
     where exists (select * from NewSal where Old = Salary)",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where exists (select * from NewSal N1 where N1.Old = Salary)",
];

/// Netting pair: the blind overwrite makes `UPDATE_A`'s store dead...
const NET_DEAD: &[&str] = &[
    UPDATE_A,
    "update Employee set Salary = (select Amount from Fire)",
];

/// ...and the same two statements reversed keep both stores live
/// (`UPDATE_A` reads `Salary`, so the overwrite before it is observed).
const NET_LIVE: &[&str] = &[
    "update Employee set Salary = (select Amount from Fire)",
    UPDATE_A,
];

fn parse_program(texts: &[&str]) -> Vec<SqlStatement> {
    texts.iter().map(|t| parse(t).expect("parses")).collect()
}

/// A Section 7 Employee instance with `n` employees whose salary edges
/// are drawn uniformly or Zipf-skewed (weight `1/k` on the `k`-th
/// amount) over the amount pool; `Fire` lists the low quarter of the
/// amounts, so the skew directly moves the `Salary in table Fire`
/// guard's selectivity — the distribution axis of the experiment.
fn skewed_instance(n: u32, zipf: bool) -> (EmployeeSchema, Instance) {
    let es = employee_schema();
    let mut i = Instance::empty(Arc::clone(&es.schema));
    let mut rng = StdRng::seed_from_u64(0x914E + u64::from(n) * 2 + u64::from(zipf));
    let amounts = (n / 2).max(2);
    let amount_objs: Vec<Oid> = (0..amounts * 2).map(|k| Oid::new(es.amount, k)).collect();
    for &a in &amount_objs {
        i.add_object(a);
    }
    // Cumulative 1/k weights for the Zipf draw.
    let mut cdf = Vec::with_capacity(amounts as usize);
    let mut acc = 0.0f64;
    for k in 0..amounts {
        acc += 1.0 / f64::from(k + 1);
        cdf.push(acc);
    }
    let employees: Vec<Oid> = (0..n).map(|k| Oid::new(es.employee, k)).collect();
    for &e in &employees {
        i.add_object(e);
    }
    for (k, &e) in employees.iter().enumerate() {
        let idx = if zipf {
            let u = f64::from(rng.random_range(0..1 << 24)) / f64::from(1 << 24) * acc;
            cdf.partition_point(|&c| c < u).min(amounts as usize - 1)
        } else {
            rng.random_range(0..amounts) as usize
        };
        i.link(e, es.salary, amount_objs[idx]).expect("typed");
        let manager = employees[k.saturating_sub(1)];
        i.link(e, es.manager, manager).expect("typed");
    }
    // NewSal: amount k → amount k + amounts (total, so par(E) is exact).
    for k in 0..amounts {
        let ns = Oid::new(es.newsal, k);
        i.add_object(ns);
        i.link(ns, es.old, amount_objs[k as usize]).expect("typed");
        i.link(ns, es.new, amount_objs[(k + amounts) as usize])
            .expect("typed");
    }
    // Fire: one row per amount in the low quarter of the pool.
    for k in 0..(amounts / 4).max(1) {
        let f = Oid::new(es.fire, k);
        i.add_object(f);
        i.link(f, es.fire_amount, amount_objs[k as usize])
            .expect("typed");
    }
    (es, i)
}

/// The pre-planner execution path: each statement already compiled, run
/// in statement order through the per-statement drivers (functional
/// `apply` for the set forms, sequential interpreted loops for the
/// cursor forms) — no shared selectors, no netting, no batching.
fn one_at_a_time(compiled: &[CompiledStatement], i0: &Instance) -> Instance {
    let mut i = i0.clone();
    for c in compiled {
        i = match c {
            CompiledStatement::SetDelete(sd) => sd.apply(&i).expect("applies"),
            CompiledStatement::SetUpdate(su) => su.apply(&i).expect("applies"),
            CompiledStatement::CursorDelete(cd) => {
                let m = cd.method();
                let t = cd.receivers(&i);
                apply_seq_unchecked(&m, &i, &t).expect_done("cursor delete")
            }
            CompiledStatement::CursorUpdate(cu) => {
                let m = cu.interpreted_method();
                let t = cu.receivers(&i);
                apply_seq_unchecked(&m, &i, &t).expect_done("cursor update")
            }
        };
    }
    i
}

fn compile_each(stmts: &[SqlStatement], catalog: &Catalog) -> Vec<CompiledStatement> {
    stmts
        .iter()
        .map(|s| compile(s, catalog).expect("compiles"))
        .collect()
}

/// Register one `one_at_a_time` / `compiled` execution pair, asserting
/// bit-identity of the two paths on the input before any timing.
fn exec_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    n: u32,
    stmts: &[SqlStatement],
    catalog: &Catalog,
    i: &Instance,
) {
    let legacy = compile_each(stmts, catalog);
    let plan = compile_program(stmts, catalog).expect("program compiles");
    let want = one_at_a_time(&legacy, i);
    let mut got = i.clone();
    let mut view = DatabaseView::new(&got);
    plan.execute_viewed(&mut got, &mut view).expect("executes");
    assert_eq!(got, want, "paths diverge before timing ({label})");

    group.bench_with_input(
        BenchmarkId::new(format!("one_at_a_time/{label}"), n),
        i,
        |b, i| b.iter(|| black_box(one_at_a_time(&legacy, i))),
    );
    group.bench_with_input(
        BenchmarkId::new(format!("compiled/{label}"), n),
        i,
        |b, i| {
            b.iter(|| {
                let mut w = i.clone();
                let mut view = DatabaseView::new(&w);
                plan.execute_viewed(&mut w, &mut view).expect("executes");
                black_box(w)
            })
        },
    );
}

/// The headline pair: the mixed six-statement program, uniform and
/// Zipf-skewed instances, 32–512 employees.
fn programs(c: &mut Criterion) {
    let (_es, catalog) = employee_catalog();
    let stmts = parse_program(MIXED_PROGRAM);
    // The program must actually exercise the passes being priced.
    let plan = compile_program(&stmts, &catalog).expect("compiles");
    assert!(
        plan.stages().iter().any(|s| s.shared_selector()),
        "mixed program must share a selector"
    );
    assert!(
        plan.stages().iter().any(|s| s.netted()),
        "mixed program must net a stage"
    );
    assert!(
        plan.stages().iter().any(|s| s.improved().is_some()),
        "mixed program must improve the cursor update"
    );

    let mut group = c.benchmark_group("plan/program");
    group.sample_size(10);
    for &n in &[32u32, 128, 512] {
        for (dist, zipf) in [("uniform", false), ("zipf", true)] {
            let (_es, i) = skewed_instance(n, zipf);
            exec_pair(&mut group, dist, n, &stmts, &catalog, &i);
        }
    }
    group.finish();
}

/// Planning overhead on its own: per-statement `compile` of the whole
/// program vs `compile_program` (parse excluded from both sides).
fn compile_cost(c: &mut Criterion) {
    let (_es, catalog) = employee_catalog();
    let stmts = parse_program(MIXED_PROGRAM);
    let mut group = c.benchmark_group("plan/compile");
    group.sample_size(10);
    group.bench_function("one_at_a_time", |b| {
        b.iter(|| black_box(compile_each(&stmts, &catalog)))
    });
    group.bench_function("compiled", |b| {
        b.iter(|| black_box(compile_program(&stmts, &catalog).expect("compiles")))
    });
    group.finish();
}

/// Selector sharing priced on its own: two identically-guarded updates
/// (one selector evaluation feeds both stages) against the control
/// whose second guard differs (both selectors run).
fn cse(c: &mut Criterion) {
    let (_es, catalog) = employee_catalog();
    let shared = parse_program(CSE_SHARED);
    let distinct = parse_program(CSE_DISTINCT);
    let plan = compile_program(&shared, &catalog).expect("compiles");
    assert!(
        plan.stages().iter().any(|s| s.shared_selector()),
        "the shared pair must share its selector"
    );
    let plan = compile_program(&distinct, &catalog).expect("compiles");
    assert!(
        !plan.stages().iter().any(|s| s.shared_selector()),
        "the control pair must not"
    );

    let n = 512;
    let (_es, i) = skewed_instance(n, false);
    let mut group = c.benchmark_group("plan/cse");
    group.sample_size(10);
    exec_pair(&mut group, "shared", n, &shared, &catalog, &i);
    exec_pair(&mut group, "distinct", n, &distinct, &catalog, &i);
    group.finish();
}

/// Dead-store netting priced on its own: `UPDATE_A` followed by a blind
/// overwrite (the first store is netted and skipped) against the same
/// two statements reversed (both stores live) — identical per-stage
/// work, so the delta is the skipped stage.
fn netting(c: &mut Criterion) {
    let (_es, catalog) = employee_catalog();
    let dead = parse_program(NET_DEAD);
    let live = parse_program(NET_LIVE);
    let plan = compile_program(&dead, &catalog).expect("compiles");
    assert!(
        plan.stages()[0].netted(),
        "the overwrite must net UPDATE_A's store"
    );
    let plan = compile_program(&live, &catalog).expect("compiles");
    assert!(
        !plan.stages().iter().any(|s| s.netted()),
        "reversed, UPDATE_A reads Salary: nothing nets"
    );

    let n = 512;
    let (_es, i) = skewed_instance(n, false);
    let mut group = c.benchmark_group("plan/netting");
    group.sample_size(10);
    exec_pair(&mut group, "dead_store", n, &dead, &catalog, &i);
    exec_pair(&mut group, "live_store", n, &live, &catalog, &i);
    group.finish();
}

criterion_group!(benches, programs, compile_cost, cse, netting);
criterion_main!(benches);
