//! Experiment P8 — the incremental relational view (DESIGN.md
//! "Incremental view maintenance"):
//!
//! * `sequence/*` — applying a 64-receiver sequence of an algebraic
//!   method with the view-backed in-place path (one `O(N + E)` relational
//!   encoding built up front, then `O(probe + changed edges)` per
//!   receiver) versus the historical semantics that rebuilt the
//!   `Database` from scratch for every receiver;
//! * `refresh/*` — keeping the relational encoding current across a
//!   64-edge transaction with rollback: edge-by-edge [`DatabaseView`]
//!   maintenance versus a from-scratch `Database::from_instance` rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_core::algebraic::AlgebraicMethod;
use receivers_core::methods::add_bar;
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Edge, Instance, InstanceTxn, Oid, Receiver, UpdateMethod};
use receivers_relalg::database::Database;
use receivers_relalg::view::DatabaseView;

/// A beer instance with `scale` objects per class and edge counts linear
/// in `scale` (the same workload as the `instance_index` bench): every
/// drinker frequents 8 bars and likes 2 beers, every bar serves 4 beers.
fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

/// The pre-view in-place semantics: identical pipeline (validate, evaluate
/// every statement, swap the receiving object's property edges), but each
/// receiver's evaluation goes through [`AlgebraicMethod::evaluate`], which
/// builds a fresh `O(N + E)` relational encoding of the working instance.
fn apply_sequence_rebuilding(
    m: &AlgebraicMethod,
    instance: &Instance,
    order: &[Receiver],
) -> Instance {
    let mut working = instance.clone();
    for t in order {
        t.validate(m.signature(), &working).expect("valid receiver");
        let results = m.evaluate(&working, t).expect("well-typed method");
        let recv = t.receiving_object();
        for (prop, values) in results {
            let old: Vec<Oid> = working.successors(recv, prop).collect();
            for v in old {
                working.remove_edge(&Edge::new(recv, prop, v));
            }
            for v in values {
                working.add_edge(Edge::new(recv, prop, v)).expect("typed");
            }
        }
    }
    working
}

fn sequences(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance/sequence");
    group.sample_size(10);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        let m = add_bar(&s);
        let n = 64u32.min(scale);
        let order: Vec<Receiver> = (0..n)
            .map(|k| {
                Receiver::new(vec![
                    Oid::new(s.drinker, (k * 17) % scale),
                    Oid::new(s.bar, (k * 29 + 1) % scale),
                ])
            })
            .collect();

        // Same receivers, same result, two evaluation strategies.
        let mut maintained = i.clone();
        let outcome = m.apply_in_place_sequence(&mut maintained, &order);
        assert_eq!(outcome, receivers_objectbase::InPlaceOutcome::Applied);
        let rebuilt = apply_sequence_rebuilding(&m, &i, &order);
        assert_eq!(maintained, rebuilt);

        group.bench_with_input(BenchmarkId::new("in_place", scale), &order, |b, order| {
            b.iter(|| {
                let mut working = i.clone();
                black_box(m.apply_in_place_sequence(&mut working, order))
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", scale), &order, |b, order| {
            b.iter(|| black_box(apply_sequence_rebuilding(&m, &i, order)))
        });
    }
    group.finish();
}

fn refreshes(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_maintenance/refresh");
    group.sample_size(15);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        // 64 existing edges toggled per transaction; the rollback restores
        // them, so every iteration starts from the same state.
        let doomed: Vec<Edge> = (0..64u32.min(scale))
            .map(|k| {
                let d = (k * 17) % scale;
                Edge::new(
                    Oid::new(s.drinker, d),
                    s.frequents,
                    Oid::new(s.bar, (d * 7) % scale),
                )
            })
            .collect();
        for e in &doomed {
            assert!(i.successors(e.src, e.prop).any(|o| o == e.dst));
        }

        // Incremental: one prebuilt view, maintained edge-by-edge through
        // the observed transaction and its rollback.
        group.bench_with_input(
            BenchmarkId::new("incremental", scale),
            &doomed,
            |b, doomed| {
                let mut inst = i.clone();
                let mut view = DatabaseView::new(&inst);
                b.iter(|| {
                    let mut txn = InstanceTxn::begin_observed(&mut inst, &mut view);
                    for e in doomed {
                        txn.remove_edge(e);
                    }
                    txn.rollback();
                })
            },
        );
        // Rebuild: the same transaction unobserved, then a from-scratch
        // encoding of the (restored) instance.
        group.bench_with_input(BenchmarkId::new("rebuild", scale), &doomed, |b, doomed| {
            let mut inst = i.clone();
            b.iter(|| {
                let mut txn = InstanceTxn::begin(&mut inst);
                for e in doomed {
                    txn.remove_edge(e);
                }
                txn.rollback();
                black_box(Database::from_instance(&inst))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sequences, refreshes);
criterion_main!(benches);
