//! Experiment P13 — the durability layer (DESIGN.md "Durability layer"):
//!
//! * `commit/*` — applying a 64-receiver algebraic sequence through the
//!   WAL-logged driver over in-memory fault storage versus the plain
//!   view-backed driver: the pure encode-and-append overhead of
//!   durability, no fsync in the picture;
//! * `fsync/*` — the same sequence over real files ([`DirStorage`]) with
//!   `group_commit` 1 versus 64: what the fsync-batching knob buys when
//!   every record otherwise pays a real `fsync(2)`;
//! * `recover/*` — reopening a store whose WAL tail holds the whole
//!   64-record run versus the from-scratch `Database::from_instance`
//!   rebuild a non-durable restart would pay anyway, plus the snapshot
//!   encode cost that a checkpoint adds to a run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_core::methods::add_bar;
use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Instance, Oid, Receiver};
use receivers_relalg::database::Database;
use receivers_relalg::view::DatabaseView;
use receivers_wal::{encode_snapshot, DirStorage, DurableStore, FaultStorage, WalConfig};

/// A beer instance with `scale` objects per class and edge counts linear
/// in `scale` (the same workload as the `view_maintenance` bench).
fn dense_instance(scale: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(d, s.frequents, Oid::new(s.bar, (k * 7 + j * 13) % scale))
                .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

/// The standard 64-receiver add_bar order over a `scale` instance.
fn order_of(s: &BeerSchema, scale: u32) -> Vec<Receiver> {
    (0..64u32.min(scale))
        .map(|k| {
            Receiver::new(vec![
                Oid::new(s.drinker, (k * 17) % scale),
                Oid::new(s.bar, (k * 29 + 1) % scale),
            ])
        })
        .collect()
}

fn commits(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery/commit");
    group.sample_size(10);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        let m = add_bar(&s);
        let order = order_of(&s, scale);

        // The durable run reaches the same state as the plain one.
        let mut plain = i.clone();
        let mut plain_view = DatabaseView::new(&plain);
        m.apply_sequence_viewed(&mut plain, &mut plain_view, &order);
        let mut durable = i.clone();
        let mut durable_view = DatabaseView::new(&durable);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &durable,
        )
        .expect("create");
        m.apply_sequence_durable(&mut durable, &mut durable_view, &order, &mut store)
            .expect("durable apply");
        assert_eq!(plain, durable);

        group.bench_with_input(BenchmarkId::new("viewed", scale), &order, |b, order| {
            b.iter(|| {
                let mut working = i.clone();
                let mut view = DatabaseView::new(&working);
                black_box(m.apply_sequence_viewed(&mut working, &mut view, order))
            })
        });
        group.bench_with_input(BenchmarkId::new("wal_mem", scale), &order, |b, order| {
            b.iter(|| {
                let mut working = i.clone();
                let mut view = DatabaseView::new(&working);
                let mut store = DurableStore::create(
                    FaultStorage::new(),
                    Arc::clone(&s.schema),
                    WalConfig::default(),
                    &working,
                )
                .expect("create");
                black_box(
                    m.apply_sequence_durable(&mut working, &mut view, order, &mut store)
                        .expect("durable apply"),
                )
            })
        });
    }
    group.finish();
}

fn fsyncs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery/fsync");
    group.sample_size(10);
    let scale = 256u32;
    let (s, i) = dense_instance(scale);
    let m = add_bar(&s);
    let order = order_of(&s, scale);
    let root = std::env::temp_dir().join(format!("receivers-wal-bench-{}", std::process::id()));
    let mut run = 0u64;
    for &gc in &[1usize, 64] {
        let cfg = WalConfig {
            group_commit: gc,
            snapshot_every: 0,
        };
        group.bench_with_input(BenchmarkId::new("group_commit", gc), &order, |b, order| {
            b.iter(|| {
                run += 1;
                let dir = root.join(format!("run-{run}"));
                let storage = DirStorage::open(&dir).expect("store dir");
                let mut working = i.clone();
                let mut view = DatabaseView::new(&working);
                let mut store = DurableStore::create(storage, Arc::clone(&s.schema), cfg, &working)
                    .expect("create");
                m.apply_sequence_durable(&mut working, &mut view, order, &mut store)
                    .expect("durable apply");
                store.sync().expect("final sync");
                let _ = std::fs::remove_dir_all(&dir);
            })
        });
    }
    let _ = std::fs::remove_dir_all(&root);
    group.finish();
}

fn recoveries(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery/recover");
    group.sample_size(10);
    for &scale in &[64u32, 256, 1024] {
        let (s, i) = dense_instance(scale);
        let m = add_bar(&s);
        let order = order_of(&s, scale);

        // Wreckage with the whole run in the WAL tail: no checkpoint, so
        // recovery replays all 64 records on top of the epoch-1 snapshot.
        let mut working = i.clone();
        let mut view = DatabaseView::new(&working);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &working,
        )
        .expect("create");
        m.apply_sequence_durable(&mut working, &mut view, &order, &mut store)
            .expect("durable apply");
        let wreckage = store.into_storage().reopen();

        group.bench_with_input(
            BenchmarkId::new("replay_tail", scale),
            &wreckage,
            |b, wreckage| {
                b.iter(|| {
                    let (_, ri, _, report) = DurableStore::open(
                        wreckage.clone(),
                        Arc::clone(&s.schema),
                        WalConfig::default(),
                    )
                    .expect("recovery");
                    black_box((ri, report))
                })
            },
        );
        // What a non-durable restart pays anyway: a from-scratch
        // relational encoding of the final instance.
        group.bench_with_input(
            BenchmarkId::new("rebuild_view", scale),
            &working,
            |b, working| b.iter(|| black_box(Database::from_instance(working))),
        );
        // The marginal cost a checkpoint adds to a run: one snapshot
        // encode of the current database.
        let db = Database::from_instance(&working);
        group.bench_with_input(BenchmarkId::new("snapshot_encode", scale), &db, |b, db| {
            b.iter(|| black_box(encode_snapshot(db, 2, 64)))
        });
    }
    group.finish();
}

criterion_group!(benches, commits, fsyncs, recoveries);
criterion_main!(benches);
