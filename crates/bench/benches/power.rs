//! Experiment P5 — the expressive-power workloads of Section 6: the cost
//! of computing transitive closure through sequential application on the
//! receiver set `C × C` (quadratic in `|C|`, each application evaluating
//! an algebra expression) versus the single parallel evaluation that
//! computes only the one-step copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_bench::chain_instance;
use receivers_core::methods::{loop_schema, transitive_closure_method};
use receivers_core::parallel::apply_par;
use receivers_core::power::parity_method;
use receivers_core::sequential::apply_seq_unchecked;
use receivers_objectbase::gen::all_receivers;
use receivers_objectbase::Signature;

fn transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("power/transitive_closure");
    group.sample_size(10);
    for &n in &[4u32, 8, 12, 16] {
        let ls = loop_schema("e", "tc");
        let (i, _) = chain_instance(&ls, n);
        let m = transitive_closure_method(&ls);
        let sig = Signature::new(vec![ls.c, ls.c]).unwrap();
        let t = all_receivers(&i, &sig);
        group.bench_with_input(BenchmarkId::new("sequential", n), &t, |b, t| {
            b.iter(|| black_box(apply_seq_unchecked(&m, &i, t)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &t, |b, t| {
            b.iter(|| black_box(apply_par(&m, &i, t).unwrap()))
        });
    }
    group.finish();
}

fn parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("power/parity");
    group.sample_size(10);
    for &n in &[4u32, 8, 12] {
        let ls = loop_schema("e", "ev");
        let (i, _) = chain_instance(&ls, n);
        let m = parity_method(&ls);
        let sig = Signature::new(vec![ls.c, ls.c]).unwrap();
        let t = all_receivers(&i, &sig);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(apply_seq_unchecked(&m, &i, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, transitive_closure, parity);
criterion_main!(benches);
