//! Coloring-machinery benchmarks (Section 4): soundness checking across
//! random schemas and colorings, witness-method construction and
//! application, and the six counterexample demos.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_coloring::counterexamples::{counterexample, CounterexampleKind};
use receivers_coloring::{sound_deflationary, sound_inflationary, Color, Coloring};
use receivers_core::sequential::apply_sequence;
use receivers_objectbase::gen::{random_schema, SchemaParams};
use receivers_objectbase::SchemaItem;

/// A deterministic pseudo-random coloring of a schema.
fn random_coloring(schema: &Arc<receivers_objectbase::Schema>, seed: u64) -> Coloring {
    let mut k = Coloring::empty(Arc::clone(schema));
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for item in schema.items() {
        for color in [Color::U, Color::C, Color::D] {
            if next() % 3 == 0 {
                k.add(item, color);
            }
        }
    }
    // Ensure property 4: at least one node colored u.
    if let Some(c) = schema.classes().next() {
        k.add(SchemaItem::Class(c), Color::U);
    }
    k
}

fn soundness_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/soundness");
    group.sample_size(30);
    for &classes in &[4usize, 16, 64] {
        let schema = random_schema(
            SchemaParams {
                classes,
                properties: classes * 2,
            },
            7,
        );
        let colorings: Vec<Coloring> = (0..32).map(|s| random_coloring(&schema, s)).collect();
        group.bench_with_input(
            BenchmarkId::new("inflationary", classes),
            &colorings,
            |b, ks| {
                b.iter(|| {
                    for k in ks {
                        black_box(sound_inflationary(k));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("deflationary", classes),
            &colorings,
            |b, ks| {
                b.iter(|| {
                    for k in ks {
                        black_box(sound_deflationary(k));
                    }
                })
            },
        );
    }
    group.finish();
}

fn counterexample_demos(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring/counterexamples");
    group.sample_size(30);
    for kind in CounterexampleKind::ALL {
        let demo = counterexample(kind);
        let orders = demo.receivers.enumerations();
        group.bench_function(BenchmarkId::from_parameter(format!("{kind:?}")), |b| {
            b.iter(|| {
                for o in &orders {
                    black_box(apply_sequence(&demo.method, &demo.instance, o));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, soundness_checks, counterexample_demos);
criterion_main!(benches);
