//! Experiment P15 — the plan profiler's price (BENCH_9.json): the mixed
//! six-statement program through `execute_viewed` with profiling off,
//! with the measurement tree collected (`execute_viewed_profiled`,
//! observability bits off), and fully enabled (metrics + flight ring),
//! plus the disabled-path gate on its own and the netting proof cache's
//! cold/warm compile pair.
//!
//! Honesty notes baked into the series:
//! - the `plain` arm is byte-for-byte the PR 8 `plan/program` compiled
//!   iteration (clone + view build + `execute_viewed`), so regressions
//!   of the disabled path show up as a delta against BENCH_8.json;
//! - the `analyze` arm prices the profile tree alone (bits off: no
//!   counters, no flight recording); `analyze_full` adds both, which is
//!   the configuration the ≤ ~5 % overhead bar is stated against;
//! - the proof-cache pair compiles the **same** guarded-netting program
//!   both ways; the cold arm clears the process-wide cache inside the
//!   timed loop (a `HashMap::clear` — noise next to the solver call),
//!   so the delta is the memoized `Solver::implies` work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use receivers_objectbase::examples::{employee_schema, EmployeeSchema};
use receivers_objectbase::{Instance, Oid};
use receivers_obs as obs;
use receivers_relalg::view::DatabaseView;
use receivers_sql::catalog::employee_catalog;
use receivers_sql::{compile_program, parse, SqlStatement};

/// The headline workload, same text as `plan_pipeline.rs`: every planner
/// pass fires, so the profile tree carries netted stages, a shared
/// selector, an improved cursor update, and an interpreted loop.
const MIXED_PROGRAM: &[&str] = &[
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.Manager = E1.EmpId) \
     where Salary in table Fire",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary in table Fire",
    "for each t in Employee do update t set Salary = \
     (select New from NewSal where Old = Salary)",
    "update Employee set Salary = (select Amount from Fire)",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary not in table Fire",
    "for each t in Employee do if Manager = EmpId update t set Salary = \
     (select New from NewSal where Old = Salary)",
];

/// The guarded-netting pair: both statements write `Manager` under the
/// same guard and the later one reads neither `Manager` nor `Salary`
/// after the guard, so netting the early store needs the solver to
/// prove the guard implication — exactly the verdict the proof cache
/// memoizes.
const NETTING_GUARDED: &[&str] = &[
    "update Employee set Manager = \
     (select E1.Manager from Employee E1 where E1.EmpId = EmpId) \
     where Salary in table Fire",
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.EmpId = EmpId) \
     where Salary in table Fire",
];

fn parse_program(texts: &[&str]) -> Vec<SqlStatement> {
    texts.iter().map(|t| parse(t).expect("parses")).collect()
}

/// Same generator as `plan_pipeline.rs` (uniform arm): `n` employees,
/// salary edges drawn uniformly over the amount pool, `Fire` listing the
/// low quarter, `NewSal` total so `par(E)` is exact.
fn uniform_instance(n: u32) -> (EmployeeSchema, Instance) {
    let es = employee_schema();
    let mut i = Instance::empty(Arc::clone(&es.schema));
    let mut rng = StdRng::seed_from_u64(0x914E + u64::from(n) * 2);
    let amounts = (n / 2).max(2);
    let amount_objs: Vec<Oid> = (0..amounts * 2).map(|k| Oid::new(es.amount, k)).collect();
    for &a in &amount_objs {
        i.add_object(a);
    }
    let employees: Vec<Oid> = (0..n).map(|k| Oid::new(es.employee, k)).collect();
    for &e in &employees {
        i.add_object(e);
    }
    for (k, &e) in employees.iter().enumerate() {
        let idx = rng.random_range(0..amounts) as usize;
        i.link(e, es.salary, amount_objs[idx]).expect("typed");
        let manager = employees[k.saturating_sub(1)];
        i.link(e, es.manager, manager).expect("typed");
    }
    for k in 0..amounts {
        let ns = Oid::new(es.newsal, k);
        i.add_object(ns);
        i.link(ns, es.old, amount_objs[k as usize]).expect("typed");
        i.link(ns, es.new, amount_objs[(k + amounts) as usize])
            .expect("typed");
    }
    for k in 0..(amounts / 4).max(1) {
        let f = Oid::new(es.fire, k);
        i.add_object(f);
        i.link(f, es.fire_amount, amount_objs[k as usize])
            .expect("typed");
    }
    (es, i)
}

fn all_off() {
    obs::set_enabled(false, false);
    obs::set_profile_enabled(false);
    obs::set_flight_enabled(false);
}

/// The headline pair: profiling off / tree collected / fully enabled,
/// all three running the identical viewed-driver execution.
fn viewed_overhead(c: &mut Criterion) {
    let (_es, catalog) = employee_catalog();
    let stmts = parse_program(MIXED_PROGRAM);
    let plan = compile_program(&stmts, &catalog).expect("compiles");

    let mut group = c.benchmark_group("profiler/viewed");
    group.sample_size(10);
    for &n in &[128u32, 512] {
        let (_es, i) = uniform_instance(n);

        // Bit-identity of the plain and profiled paths before timing,
        // and the profile must cover every stage.
        let mut want = i.clone();
        let mut view = DatabaseView::new(&want);
        plan.execute_viewed(&mut want, &mut view).expect("executes");
        let mut got = i.clone();
        let mut view = DatabaseView::new(&got);
        let (_, prof) = plan
            .execute_viewed_profiled(&mut got, &mut view)
            .expect("executes");
        assert_eq!(got, want, "profiled path diverges before timing");
        assert_eq!(prof.children.len(), plan.stages().len());

        all_off();
        group.bench_with_input(BenchmarkId::new("plain", n), &i, |b, i| {
            b.iter(|| {
                let mut w = i.clone();
                let mut view = DatabaseView::new(&w);
                plan.execute_viewed(&mut w, &mut view).expect("executes");
                black_box(w)
            })
        });
        group.bench_with_input(BenchmarkId::new("analyze", n), &i, |b, i| {
            b.iter(|| {
                let mut w = i.clone();
                let mut view = DatabaseView::new(&w);
                let out = plan
                    .execute_viewed_profiled(&mut w, &mut view)
                    .expect("executes");
                black_box((w, out.1))
            })
        });
        obs::set_enabled(false, true);
        obs::set_profile_enabled(true);
        obs::set_flight_enabled(true);
        group.bench_with_input(BenchmarkId::new("analyze_full", n), &i, |b, i| {
            b.iter(|| {
                let mut w = i.clone();
                let mut view = DatabaseView::new(&w);
                let out = plan
                    .execute_viewed_profiled(&mut w, &mut view)
                    .expect("executes");
                black_box((w, out.1))
            })
        });
        all_off();
    }
    group.finish();
}

/// The disabled path's whole cost in the drivers is one relaxed flag
/// load per potential record point; price a thousand of them so the
/// per-load figure is readable off the snapshot.
fn disabled_gate(c: &mut Criterion) {
    all_off();
    let mut group = c.benchmark_group("profiler/disabled");
    group.bench_function("gate_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(obs::profile_enabled());
                black_box(obs::flight_enabled());
            }
        })
    });
    group.finish();
}

/// The netting proof cache: compiling the guarded pair cold (cache
/// cleared inside the loop, every guard implication hits the solver)
/// against warm (every implication is a memoized lookup).
fn proof_cache(c: &mut Criterion) {
    all_off();
    let (_es, catalog) = employee_catalog();
    let stmts = parse_program(NETTING_GUARDED);
    let plan = compile_program(&stmts, &catalog).expect("compiles");
    assert!(
        plan.stages()[0].netted(),
        "the guarded pair must net its early store"
    );

    let mut group = c.benchmark_group("profiler/proof_cache");
    group.bench_function("cold", |b| {
        b.iter(|| {
            receivers_sql::plan::reset_proof_cache();
            black_box(compile_program(&stmts, &catalog).expect("compiles"))
        })
    });
    // Seed once; every timed iteration is then a pure cache hit.
    black_box(compile_program(&stmts, &catalog).expect("compiles"));
    group.bench_function("warm", |b| {
        b.iter(|| black_box(compile_program(&stmts, &catalog).expect("compiles")))
    });
    group.finish();
}

criterion_group!(benches, viewed_overhead, disabled_gate, proof_cache);
criterion_main!(benches);
