//! Experiment P3 — chase scaling (Appendix A): cost of chasing a
//! conjunctive query with the object-base inclusion dependencies plus
//! singleton fds, as the number of conjuncts grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_cq::chase::chase;
use receivers_cq::query::ConjunctiveQuery;
use receivers_cq::SchemaCtx;
use receivers_relalg::deps::{object_base_dependencies, singleton_deps, AtomRel};
use receivers_relalg::expr::RelName;
use receivers_relalg::typecheck::ParamSchemas;
use receivers_relalg::RelSchema;

/// A path query with `n` frequents/serves hops (each hop adds 2 atoms and
/// 2 fresh variables; the chase adds up to 3 class atoms per hop).
fn path_query(
    n: usize,
) -> (
    ConjunctiveQuery,
    SchemaCtx,
    Vec<receivers_relalg::Dependency>,
) {
    let s = receivers_objectbase::examples::beer_schema();
    let mut params = ParamSchemas::new();
    params.insert("self".to_owned(), RelSchema::unary("self", s.drinker));
    let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), params);
    let mut deps = object_base_dependencies(&s.schema);
    deps.extend(singleton_deps("self", &["self".to_owned()]));

    let mut b = ConjunctiveQuery::builder(&ctx);
    let mut last_beer = None;
    for _ in 0..n {
        let d = b.var(s.drinker);
        let bar = b.var(s.bar);
        let beer = b.var(s.beer);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        b.atom(AtomRel::Base(RelName::Prop(s.serves)), vec![bar, beer])
            .unwrap();
        b.atom(AtomRel::Param("self".to_owned()), vec![d]).unwrap();
        last_beer = Some(beer);
    }
    b.summary(vec![last_beer.expect("n ≥ 1")]);
    (b.build().unwrap(), ctx, deps)
}

fn chase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/path");
    group.sample_size(20);
    for &n in &[1usize, 2, 4, 8, 16] {
        let (q, ctx, deps) = path_query(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| black_box(chase(q, &deps, &ctx).unwrap()))
        });
    }
    group.finish();

    // The `chase/path_naive` baseline group (full atom rescans via
    // `chase_naive`) is retired: the per-sweep relation index was ~1× at
    // these sizes, so the pair carried no information. `chase/path` stays
    // as a scaling series in the snapshot's `all_medians_ns`.
}

criterion_group!(benches, chase_scaling);
criterion_main!(benches);
