//! Experiment P2 — the cost of the decision machinery (Section 5.3 /
//! Appendix A):
//!
//! * the full Theorem 5.12 decision procedure on the paper's methods;
//! * the representative-set blowup: containment cost as the number of
//!   same-domain variables grows (typed Bell-number growth), the
//!   complexity driver Klug's construction pays for non-equalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use receivers_core::{decide_key_order_independence, decide_order_independence};
use receivers_cq::contain::contained_under;
use receivers_cq::partition::valuation_count;
use receivers_cq::query::{ConjunctiveQuery, PositiveQuery};
use receivers_cq::SchemaCtx;
use receivers_relalg::deps::AtomRel;
use receivers_relalg::expr::RelName;
use receivers_relalg::typecheck::ParamSchemas;

fn decision_procedure(c: &mut Criterion) {
    let s = receivers_objectbase::examples::beer_schema();
    let mut group = c.benchmark_group("containment/decide");
    group.sample_size(10);
    for (name, m) in [
        ("add_bar", receivers_core::methods::add_bar(&s)),
        ("favorite_bar", receivers_core::methods::favorite_bar(&s)),
        ("delete_bar", receivers_core::methods::delete_bar(&s)),
    ] {
        group.bench_function(BenchmarkId::new("order", name), |b| {
            b.iter(|| black_box(decide_order_independence(&m).unwrap()))
        });
        group.bench_function(BenchmarkId::new("key_order", name), |b| {
            b.iter(|| black_box(decide_key_order_independence(&m).unwrap()))
        });
    }
    group.finish();
}

/// Build a star query with `k` drinker variables all frequenting one bar,
/// pairwise non-equal: every extra variable multiplies the representative
/// set by roughly the next Bell-ish factor (pruned by the ≠ constraints).
fn star_query(k: usize, with_neq: bool) -> (ConjunctiveQuery, SchemaCtx) {
    let s = receivers_objectbase::examples::beer_schema();
    let ctx = SchemaCtx::new(std::sync::Arc::clone(&s.schema), ParamSchemas::new());
    let mut b = ConjunctiveQuery::builder(&ctx);
    let bar = b.var(s.bar);
    let mut drinkers = Vec::new();
    for _ in 0..k {
        let d = b.var(s.drinker);
        b.atom(AtomRel::Base(RelName::Prop(s.frequents)), vec![d, bar])
            .unwrap();
        drinkers.push(d);
    }
    if with_neq {
        for w in drinkers.windows(2) {
            b.neq(w[0], w[1]).unwrap();
        }
    }
    b.summary(vec![bar]);
    (b.build().unwrap(), ctx)
}

fn representative_set_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment/representative_blowup");
    group.sample_size(10);
    for &k in &[2usize, 3, 4, 5, 6] {
        let (q, ctx) = star_query(k, false);
        let (target, _) = star_query(2, true);
        let big = PositiveQuery::new(vec![q.summary_domains()[0]], vec![target]).unwrap();
        // Report the blowup factor alongside the timing.
        let count = valuation_count(&q);
        group.bench_with_input(
            BenchmarkId::new(format!("valuations_{count}"), k),
            &q,
            |b, q| b.iter(|| black_box(contained_under(q, &big, &[], &ctx).unwrap())),
        );
    }
    group.finish();
}

/// Ablation: the minimization pre-pass of the containment engine. A star
/// query with redundant atoms is dramatically cheaper to decide when the
/// core is computed first (fewer existential variables → smaller
/// representative set).
fn minimization_ablation(c: &mut Criterion) {
    use receivers_cq::contain::{contained_under_with, ContainOptions};
    let mut group = c.benchmark_group("containment/minimization_ablation");
    group.sample_size(10);
    for &k in &[3usize, 4, 5] {
        // A redundant star: k foldable drinker variables.
        let (q, ctx) = star_query(k, false);
        let (target, _) = star_query(1, false);
        let big = PositiveQuery::new(vec![q.summary_domains()[0]], vec![target]).unwrap();
        for (label, minimize) in [("with_minimize", true), ("without_minimize", false)] {
            group.bench_with_input(BenchmarkId::new(label, k), &q, |b, q| {
                b.iter(|| {
                    black_box(
                        contained_under_with(q, &big, &[], &ctx, ContainOptions { minimize })
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    decision_procedure,
    representative_set_blowup,
    minimization_ablation
);
criterion_main!(benches);
