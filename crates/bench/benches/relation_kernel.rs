//! Experiment P9 — the flat relation kernel (DESIGN.md "Storage layer"):
//! batch set operators over the arena-backed [`Relation`] versus the
//! pre-refactor `BTreeSet<Vec<Oid>>` representation, which ships behind
//! the `legacy-oracle` feature with its original operator code intact.
//!
//! Operands are property relations of the dense beer workload used by the
//! `instance_index` and `view_maintenance` benches (8 `frequents` edges
//! per drinker, so `scale = 1024` means 8192-tuple operands):
//!
//! * `union/<scale>`, `difference/<scale>` — element-wise merges: the
//!   legacy path walks `BTreeSet::union`/`difference` cursors and clones
//!   every surviving `Vec<Oid>`; the flat path is one linear merge over
//!   two sorted row buffers into a fresh arena.
//! * `join/<scale>` — the shared-column natural join: the legacy path is
//!   the original `BTreeMap` hash-join (key `Vec` per tuple, `BTreeSet`
//!   insertion per output tuple); the flat path probes the sorted row
//!   buffer directly and emits output rows born sorted.
//!
//! Both representations are checked for bit-identical results before
//! timing. Ids pair as `relation_kernel/btreeset/*` (before) versus
//! `relation_kernel/flat/*` (after) in `BENCH_3.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use receivers_objectbase::examples::{beer_schema, BeerSchema};
use receivers_objectbase::{Instance, Oid};
use receivers_relalg::database::Database;
use receivers_relalg::legacy::LegacyRelation;
use receivers_relalg::{RelName, Relation};

/// The dense beer workload (8 `frequents` + 2 `likes` edges per drinker,
/// 4 `serves` per bar), offset by `salt` so two instances overlap but do
/// not coincide — union and difference then do real work.
fn dense_instance(scale: u32, salt: u32) -> (BeerSchema, Instance) {
    let s = beer_schema();
    let mut i = Instance::empty(Arc::clone(&s.schema));
    for k in 0..scale {
        i.add_object(Oid::new(s.drinker, k));
        i.add_object(Oid::new(s.bar, k));
        i.add_object(Oid::new(s.beer, k));
    }
    for k in 0..scale {
        let d = Oid::new(s.drinker, k);
        for j in 0..8 {
            i.link(
                d,
                s.frequents,
                Oid::new(s.bar, (k * 7 + j * 13 + salt) % scale),
            )
            .expect("typed");
        }
        for j in 0..2 {
            i.link(d, s.likes, Oid::new(s.beer, (k + j * 5 + salt) % scale))
                .expect("typed");
        }
        let b = Oid::new(s.bar, k);
        for j in 0..4 {
            i.link(b, s.serves, Oid::new(s.beer, (k * 3 + j + salt) % scale))
                .expect("typed");
        }
    }
    (s, i)
}

/// The operand pairs at `scale`: two overlapping `frequents` relations
/// (for union/difference) and a renamed self-join pair sharing the
/// `Drinker` column (for the natural join).
fn operands(scale: u32) -> (Relation, Relation, Relation, Relation) {
    let (s, i1) = dense_instance(scale, 0);
    let (_, i2) = dense_instance(scale, 3);
    let db1 = Database::from_instance(&i1);
    let db2 = Database::from_instance(&i2);
    let a = db1.relation(RelName::Prop(s.frequents)).unwrap().clone();
    let b = db2.relation(RelName::Prop(s.frequents)).unwrap().clone();
    let jl = a.rename("frequents", "F1").unwrap();
    let jr = b.rename("frequents", "F2").unwrap();
    (a, b, jl, jr)
}

fn kernel(c: &mut Criterion) {
    for &scale in &[256u32, 1024] {
        let (a, b, jl, jr) = operands(scale);
        let (la, lb) = (
            LegacyRelation::from_relation(&a),
            LegacyRelation::from_relation(&b),
        );
        let (ljl, ljr) = (
            LegacyRelation::from_relation(&jl),
            LegacyRelation::from_relation(&jr),
        );

        // The two representations must agree bit-for-bit before we time them.
        assert!(la.union(&lb).unwrap().matches(&a.union(&b).unwrap()));
        assert!(la
            .difference(&lb)
            .unwrap()
            .matches(&a.difference(&b).unwrap()));
        assert!(ljl
            .natural_join(&ljr)
            .unwrap()
            .matches(&jl.natural_join(&jr).unwrap()));

        let mut before = c.benchmark_group("relation_kernel/btreeset");
        before.sample_size(20);
        before.bench_with_input(BenchmarkId::new("union", scale), &(), |bench, ()| {
            bench.iter(|| black_box(la.union(&lb).unwrap()))
        });
        before.bench_with_input(BenchmarkId::new("difference", scale), &(), |bench, ()| {
            bench.iter(|| black_box(la.difference(&lb).unwrap()))
        });
        before.bench_with_input(BenchmarkId::new("join", scale), &(), |bench, ()| {
            bench.iter(|| black_box(ljl.natural_join(&ljr).unwrap()))
        });
        before.finish();

        let mut after = c.benchmark_group("relation_kernel/flat");
        after.sample_size(20);
        after.bench_with_input(BenchmarkId::new("union", scale), &(), |bench, ()| {
            bench.iter(|| black_box(a.union(&b).unwrap()))
        });
        after.bench_with_input(BenchmarkId::new("difference", scale), &(), |bench, ()| {
            bench.iter(|| black_box(a.difference(&b).unwrap()))
        });
        after.bench_with_input(BenchmarkId::new("join", scale), &(), |bench, ()| {
            bench.iter(|| black_box(jl.natural_join(&jr).unwrap()))
        });
        after.finish();
    }
}

criterion_group!(benches, kernel);
criterion_main!(benches);
