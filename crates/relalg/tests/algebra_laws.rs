//! Classical relational-algebra laws, verified on relations drawn from
//! random object-base instances. These pin the [`Relation`] operator
//! implementations against the textbook semantics (Ullman 1988, the
//! algebra the paper builds on).

use receivers_objectbase::examples::beer_schema;
use receivers_objectbase::gen::{random_instance, InstanceParams};
use receivers_relalg::database::Database;
use receivers_relalg::{RelName, Relation};

fn sample_relations(seed: u64) -> (Relation, Relation, Relation) {
    let s = beer_schema();
    let i1 = random_instance(
        &s.schema,
        InstanceParams {
            objects_per_class: 4,
            edge_density: 0.4,
        },
        seed,
    );
    let i2 = random_instance(
        &s.schema,
        InstanceParams {
            objects_per_class: 4,
            edge_density: 0.4,
        },
        seed ^ 0xA5,
    );
    let db1 = Database::from_instance(&i1);
    let db2 = Database::from_instance(&i2);
    let a = db1.relation(RelName::Prop(s.frequents)).unwrap().clone();
    let b = db2.relation(RelName::Prop(s.frequents)).unwrap().clone();
    let c = db1.relation(RelName::Class(s.bar)).unwrap().clone();
    (a, b, c)
}

#[test]
fn union_laws() {
    for seed in 0..20u64 {
        let (a, b, _) = sample_relations(seed);
        // Commutative (up to the left-names convention: schemes agree
        // here, so full equality).
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        // Idempotent.
        assert_eq!(a.union(&a).unwrap(), a);
        // Associative.
        let ab_c = a.union(&b).unwrap().union(&a).unwrap();
        let a_bc = a.union(&b.union(&a).unwrap()).unwrap();
        assert_eq!(ab_c, a_bc);
    }
}

#[test]
fn difference_laws() {
    for seed in 0..20u64 {
        let (a, b, _) = sample_relations(seed);
        // A − A = ∅.
        assert!(a.difference(&a).unwrap().is_empty());
        // (A − B) ∩ B = ∅.
        let diff = a.difference(&b).unwrap();
        assert!(diff.intersection(&b).unwrap().is_empty());
        // (A − B) ∪ (A ∩ B) = A.
        let rebuilt = diff.union(&a.intersection(&b).unwrap()).unwrap();
        assert_eq!(rebuilt, a);
    }
}

#[test]
fn product_distributes_over_union() {
    for seed in 0..20u64 {
        let (a, b, c) = sample_relations(seed);
        // Disjoint attribute names needed: rename c's column.
        let c = c.rename("Bar", "B2").unwrap();
        let lhs = c.product(&a.union(&b).unwrap()).unwrap();
        let rhs = c
            .product(&a)
            .unwrap()
            .union(&c.product(&b).unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn selections_commute_and_shrink() {
    for seed in 0..20u64 {
        let (a, _, c) = sample_relations(seed);
        // Build a self-product with two comparable bar columns.
        let paired = a
            .rename("Drinker", "D1")
            .unwrap()
            .rename("frequents", "F1")
            .unwrap()
            .product(&c.rename("Bar", "F2").unwrap())
            .unwrap();
        let eq_then_ne = paired
            .select_eq("F1", "F2")
            .unwrap()
            .select_ne("F1", "F2")
            .unwrap();
        assert!(eq_then_ne.is_empty(), "σ= then σ≠ on the same pair is ∅");
        let ab = paired.select_eq("F1", "F2").unwrap();
        let ba = paired.select_ne("F1", "F2").unwrap();
        // Partition: the two selections split the product.
        assert_eq!(ab.len() + ba.len(), paired.len());
    }
}

#[test]
fn projection_distributes_over_union() {
    for seed in 0..20u64 {
        let (a, b, _) = sample_relations(seed);
        let keep = vec!["frequents".to_owned()];
        let lhs = a.union(&b).unwrap().project(&keep).unwrap();
        let rhs = a
            .project(&keep)
            .unwrap()
            .union(&b.project(&keep).unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn natural_join_against_nested_loop_reference() {
    for seed in 0..20u64 {
        let (a, b, _) = sample_relations(seed);
        // Join on the shared Drinker column with distinct value columns.
        let left = a.rename("frequents", "F1").unwrap();
        let right = b.rename("frequents", "F2").unwrap();
        let joined = left.natural_join(&right).unwrap();
        // Reference: nested loops.
        let mut expected = std::collections::BTreeSet::new();
        for t1 in left.tuples() {
            for t2 in right.tuples() {
                if t1[0] == t2[0] {
                    expected.insert(vec![t1[0], t1[1], t2[1]]);
                }
            }
        }
        let got: std::collections::BTreeSet<_> = joined
            .tuples()
            .map(<[receivers_objectbase::Oid]>::to_vec)
            .collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn equi_join_matches_product_then_filter() {
    for seed in 0..20u64 {
        let (a, b, _) = sample_relations(seed);
        let left = a
            .rename("Drinker", "D1")
            .unwrap()
            .rename("frequents", "F1")
            .unwrap();
        let right = b
            .rename("Drinker", "D2")
            .unwrap()
            .rename("frequents", "F2")
            .unwrap();
        let fast = left
            .product_on(&right, &[("F1".to_owned(), "F2".to_owned())])
            .unwrap();
        let slow = left.product(&right).unwrap().select_eq("F1", "F2").unwrap();
        assert_eq!(fast, slow);
    }
}
