//! The pre-flat-kernel relation representation, kept verbatim as a
//! differential oracle (cargo feature `legacy-oracle`, enabled by the test
//! and bench crates only).
//!
//! [`LegacyRelation`] is the `BTreeSet<Vec<Oid>>`-backed relation this
//! crate shipped before the flat [`TupleSet`](crate::tuples::TupleSet)
//! arena, with the *derived* `Ord`/`Hash` the new manual impls must
//! reproduce bit-for-bit, and with the original per-tuple operator
//! implementations (node-wise `BTreeSet` inserts, `BTreeMap` hash-join
//! indexes, successor-key range probes). [`eval_naive`] evaluates
//! expressions structurally against it — no join planner, every product
//! materialized — so a differential run exercises both the kernel and the
//! planner of the flat path. `tests/relation_ops.rs` drives the
//! comparison over the seeded corpus.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use receivers_objectbase::{ClassId, Oid, PropId, Schema};

use crate::database::{base_schema, Database};
use crate::error::{RelAlgError, Result};
use crate::expr::{Expr, RelName};
use crate::relation::Relation;
use crate::schema::{Attr, RelSchema};

/// A relation as stored before the flat kernel: one heap-allocated
/// `Vec<Oid>` per tuple in a `BTreeSet`, all comparison traits derived.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LegacyRelation {
    schema: RelSchema,
    tuples: BTreeSet<Vec<Oid>>,
}

impl LegacyRelation {
    /// The empty relation over `schema`.
    pub fn empty(schema: RelSchema) -> Self {
        Self {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Snapshot a flat relation into the legacy representation.
    pub fn from_relation(r: &Relation) -> Self {
        Self {
            schema: r.schema().clone(),
            tuples: r.tuples().map(<[Oid]>::to_vec).collect(),
        }
    }

    /// The scheme.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in canonical order.
    pub fn tuples(&self) -> impl Iterator<Item = &Vec<Oid>> + '_ {
        self.tuples.iter()
    }

    /// Insert a tuple (unvalidated — oracle inputs come from the typed
    /// flat path).
    pub fn insert(&mut self, t: Vec<Oid>) -> bool {
        self.tuples.insert(t)
    }

    /// Remove a tuple.
    pub fn remove(&mut self, t: &[Oid]) -> bool {
        self.tuples.remove(t)
    }

    /// True when the flat relation `r` is bit-identical to this one:
    /// same scheme, same tuple count, same tuples *in the same canonical
    /// order*.
    pub fn matches(&self, r: &Relation) -> bool {
        self.schema == *r.schema()
            && self.tuples.len() == r.len()
            && self.tuples.iter().zip(r.tuples()).all(|(a, b)| a == b)
    }

    fn check_union_compatible(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.schema.union_compatible(other.schema()) {
            Ok(())
        } else {
            Err(RelAlgError::SchemaMismatch {
                op,
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            })
        }
    }

    /// Union, element-wise.
    pub fn union(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "union")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        })
    }

    /// Difference, element-wise.
    pub fn difference(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "difference")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Intersection, element-wise.
    pub fn intersection(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "intersection")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// Cartesian product via the nested loop of the original code.
    pub fn product(&self, other: &Self) -> Result<Self> {
        let schema = self.schema.product(other.schema())?;
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            for t2 in &other.tuples {
                let mut t = Vec::with_capacity(t1.len() + t2.len());
                t.extend_from_slice(t1);
                t.extend_from_slice(t2);
                tuples.insert(t);
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Equality selection.
    pub fn select_eq(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t[i] == t[j])
                .cloned()
                .collect(),
        })
    }

    /// Non-equality selection.
    pub fn select_ne(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t[i] != t[j])
                .cloned()
                .collect(),
        })
    }

    fn selection_positions(&self, a: &str, b: &str) -> Result<(usize, usize)> {
        let i = self.schema.position(a)?;
        let j = self.schema.position(b)?;
        if self.schema.columns()[i].1 != self.schema.columns()[j].1 {
            return Err(RelAlgError::DomainMismatch {
                left: a.to_owned(),
                right: b.to_owned(),
            });
        }
        Ok((i, j))
    }

    /// Projection via per-tuple gathers into fresh `Vec`s.
    pub fn project(&self, keep: &[Attr]) -> Result<Self> {
        let schema = self.schema.project(keep)?;
        let positions: Vec<usize> = keep
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let tuples = self
            .tuples
            .iter()
            .map(|t| positions.iter().map(|&i| t[i]).collect())
            .collect();
        Ok(Self { schema, tuples })
    }

    /// Renaming.
    pub fn rename(&self, from: &str, to: &str) -> Result<Self> {
        Ok(Self {
            schema: self.schema.rename(from, to)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Natural join via the original `BTreeMap` hash-join index.
    pub fn natural_join(&self, other: &Self) -> Result<Self> {
        let common = self.schema.common_attrs(other.schema())?;
        let schema = self.schema.natural_join(other.schema())?;
        let left_pos: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let right_pos: Vec<usize> = common
            .iter()
            .map(|a| other.schema.position(a))
            .collect::<Result<_>>()?;
        let extra_pos: Vec<usize> = other
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| !common.contains(a))
            .map(|(i, _)| i)
            .collect();
        let mut index: BTreeMap<Vec<Oid>, Vec<&Vec<Oid>>> = BTreeMap::new();
        for t in &other.tuples {
            let key: Vec<Oid> = right_pos.iter().map(|&i| t[i]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            let key: Vec<Oid> = left_pos.iter().map(|&i| t1[i]).collect();
            if let Some(matches) = index.get(&key) {
                for t2 in matches {
                    let mut t = t1.clone();
                    t.extend(extra_pos.iter().map(|&i| t2[i]));
                    tuples.insert(t);
                }
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Theta join via product-then-select (the naive definition).
    pub fn theta_join(&self, other: &Self, a: &str, b: &str, eq: bool) -> Result<Self> {
        let prod = self.product(other)?;
        if eq {
            prod.select_eq(a, b)
        } else {
            prod.select_ne(a, b)
        }
    }
}

/// The relational database in legacy representation: one
/// [`LegacyRelation`] per class and property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyDatabase {
    schema: Arc<Schema>,
    classes: BTreeMap<ClassId, LegacyRelation>,
    props: BTreeMap<PropId, LegacyRelation>,
}

/// Mirrors the manual `Hash` on [`Database`]: relation maps only.
impl std::hash::Hash for LegacyDatabase {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.classes.hash(state);
        self.props.hash(state);
    }
}

impl LegacyDatabase {
    /// Snapshot a flat database into the legacy representation.
    pub fn from_database(db: &Database) -> Self {
        let schema = Arc::clone(db.schema());
        let mut classes = BTreeMap::new();
        for c in schema.classes() {
            let r = db.relation(RelName::Class(c)).expect("class relation");
            classes.insert(c, LegacyRelation::from_relation(r));
        }
        let mut props = BTreeMap::new();
        for p in schema.properties() {
            let r = db.relation(RelName::Prop(p)).expect("prop relation");
            props.insert(p, LegacyRelation::from_relation(r));
        }
        Self {
            schema,
            classes,
            props,
        }
    }

    /// Look up a base relation.
    pub fn relation(&self, rel: RelName) -> Result<&LegacyRelation> {
        match rel {
            RelName::Class(c) => self
                .classes
                .get(&c)
                .ok_or_else(|| RelAlgError::UnknownRelation(format!("C{}", c.0))),
            RelName::Prop(p) => self
                .props
                .get(&p)
                .ok_or_else(|| RelAlgError::UnknownRelation(format!("P{}", p.0))),
        }
    }

    /// Apply the same touched-tuple mutation the flat
    /// [`Database::insert_node_tuple`] family performs.
    pub fn insert_node_tuple(&mut self, o: Oid) -> bool {
        self.classes
            .get_mut(&o.class)
            .expect("class relation")
            .insert(vec![o])
    }

    /// Remove a class tuple.
    pub fn remove_node_tuple(&mut self, o: Oid) -> bool {
        self.classes
            .get_mut(&o.class)
            .expect("class relation")
            .remove(&[o])
    }

    /// Insert a property tuple.
    pub fn insert_edge_tuple(&mut self, p: PropId, src: Oid, dst: Oid) -> bool {
        self.props
            .get_mut(&p)
            .expect("prop relation")
            .insert(vec![src, dst])
    }

    /// Remove a property tuple.
    pub fn remove_edge_tuple(&mut self, p: PropId, src: Oid, dst: Oid) -> bool {
        self.props
            .get_mut(&p)
            .expect("prop relation")
            .remove(&[src, dst])
    }

    /// True when every relation of the flat database `db` is bit-identical
    /// to its legacy counterpart (same schemes, same canonical order).
    pub fn matches(&self, db: &Database) -> bool {
        self.schema.classes().all(|c| {
            db.relation(RelName::Class(c))
                .is_ok_and(|r| self.classes[&c].matches(r))
        }) && self.schema.properties().all(|p| {
            db.relation(RelName::Prop(p))
                .is_ok_and(|r| self.props[&p].matches(r))
        })
    }

    /// The base scheme of `rel` under this database's object-base schema.
    pub fn base_schema(&self, rel: RelName) -> RelSchema {
        base_schema(&self.schema, rel)
    }
}

/// Structural (planner-free) evaluation against the legacy representation:
/// every operator evaluates exactly as written, products materialize, and
/// joins use the original per-operator code. The differential oracle for
/// the flat path's `eval` (which plans join chains and borrows leaves).
pub fn eval_naive(
    expr: &Expr,
    db: &LegacyDatabase,
    bindings: &BTreeMap<String, LegacyRelation>,
) -> Result<LegacyRelation> {
    match expr {
        Expr::Base(rel) => db.relation(*rel).cloned(),
        Expr::Param(p) => bindings
            .get(p)
            .cloned()
            .ok_or_else(|| RelAlgError::UnknownParam(p.clone())),
        Expr::Union(l, r) => eval_naive(l, db, bindings)?.union(&eval_naive(r, db, bindings)?),
        Expr::Diff(l, r) => eval_naive(l, db, bindings)?.difference(&eval_naive(r, db, bindings)?),
        Expr::Product(l, r) => eval_naive(l, db, bindings)?.product(&eval_naive(r, db, bindings)?),
        Expr::SelectEq(e, a, b) => eval_naive(e, db, bindings)?.select_eq(a, b),
        Expr::SelectNe(e, a, b) => eval_naive(e, db, bindings)?.select_ne(a, b),
        Expr::Project(e, attrs) => eval_naive(e, db, bindings)?.project(attrs),
        Expr::Rename(e, from, to) => eval_naive(e, db, bindings)?.rename(from, to),
        Expr::NatJoin(l, r) => {
            eval_naive(l, db, bindings)?.natural_join(&eval_naive(r, db, bindings)?)
        }
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq,
        } => eval_naive(left, db, bindings)?.theta_join(
            &eval_naive(right, db, bindings)?,
            on_left,
            on_right,
            *eq,
        ),
    }
}
