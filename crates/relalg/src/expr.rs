//! The relational algebra expression AST (Definition 5.4(1) plus the
//! parameter relations needed by Sections 5.2 and 6).

use std::fmt;

use receivers_objectbase::{ClassId, PropId, Schema};

use crate::schema::Attr;

/// Name of a base relation of the relational representation of an
/// object-base schema (Section 5.1): the unary class relation `C` or the
/// binary property relation `Ca`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelName {
    /// The unary relation for a class.
    Class(ClassId),
    /// The binary relation for a property edge.
    Prop(PropId),
}

impl RelName {
    /// Render against a schema (`C` or `Ca` in the paper's notation).
    pub fn display(self, schema: &Schema) -> String {
        match self {
            RelName::Class(c) => schema.class_name(c).to_owned(),
            RelName::Prop(p) => {
                let prop = schema.property(p);
                format!("{}·{}", schema.class_name(prop.src), prop.name)
            }
        }
    }
}

/// A relational algebra expression.
///
/// The *positive algebra* (Definition 5.2) is the fragment without
/// [`Expr::Diff`]; [`crate::positive::is_positive`] checks membership.
/// Natural join and theta joins are first-class but definable; the
/// conjunctive-query compiler in `receivers-cq` handles them directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A base relation of the object-base representation.
    Base(RelName),
    /// A named parameter relation: `self`, `arg1`, …, `rec`, or the primed
    /// copies `self'`, `arg1'`, … used by the Theorem 5.6 reduction.
    Param(String),
    /// Union.
    Union(Box<Expr>, Box<Expr>),
    /// Difference (excluded from the positive algebra).
    Diff(Box<Expr>, Box<Expr>),
    /// Cartesian product.
    Product(Box<Expr>, Box<Expr>),
    /// Equality selection `σ_{A=B}`.
    SelectEq(Box<Expr>, Attr, Attr),
    /// Non-equality selection `σ_{A≠B}`.
    SelectNe(Box<Expr>, Attr, Attr),
    /// Projection `π_{A1,…,Ap}` (possibly 0-ary).
    Project(Box<Expr>, Vec<Attr>),
    /// Renaming `ρ_{A→B}`.
    Rename(Box<Expr>, Attr, Attr),
    /// Natural join on all common attributes.
    NatJoin(Box<Expr>, Box<Expr>),
    /// Theta join `⋈_{A θ B}` with `θ ∈ {=, ≠}`; `A` addresses the left
    /// operand's scheme and `B` the right one's.
    ThetaJoin {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Left attribute of the comparison.
        on_left: Attr,
        /// Right attribute of the comparison.
        on_right: Attr,
        /// `true` for `=`, `false` for `≠`.
        eq: bool,
    },
}

impl Expr {
    /// The parameter relation `self`.
    pub fn self_rel() -> Self {
        Expr::Param("self".to_owned())
    }

    /// The parameter relation `arg_i` (1-based, as in the paper).
    pub fn arg(i: usize) -> Self {
        Expr::Param(format!("arg{i}"))
    }

    /// The receiver-set relation `rec` of Section 6.
    pub fn rec() -> Self {
        Expr::Param("rec".to_owned())
    }

    /// The unary class relation.
    pub fn class(c: ClassId) -> Self {
        Expr::Base(RelName::Class(c))
    }

    /// The binary property relation.
    pub fn prop(p: PropId) -> Self {
        Expr::Base(RelName::Prop(p))
    }

    /// `self ∪ other`.
    pub fn union(self, other: Expr) -> Self {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn diff(self, other: Expr) -> Self {
        Expr::Diff(Box::new(self), Box::new(other))
    }

    /// `self × other`.
    pub fn product(self, other: Expr) -> Self {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `σ_{a=b}(self)`.
    pub fn select_eq(self, a: impl Into<Attr>, b: impl Into<Attr>) -> Self {
        Expr::SelectEq(Box::new(self), a.into(), b.into())
    }

    /// `σ_{a≠b}(self)`.
    pub fn select_ne(self, a: impl Into<Attr>, b: impl Into<Attr>) -> Self {
        Expr::SelectNe(Box::new(self), a.into(), b.into())
    }

    /// `π_{attrs}(self)`.
    pub fn project<I, S>(self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Attr>,
    {
        Expr::Project(Box::new(self), attrs.into_iter().map(Into::into).collect())
    }

    /// `π_∅(self)` — the 0-ary emptiness probe.
    pub fn probe(self) -> Self {
        Expr::Project(Box::new(self), Vec::new())
    }

    /// `ρ_{from→to}(self)`.
    pub fn rename(self, from: impl Into<Attr>, to: impl Into<Attr>) -> Self {
        Expr::Rename(Box::new(self), from.into(), to.into())
    }

    /// `self ⋈ other` (natural join).
    pub fn nat_join(self, other: Expr) -> Self {
        Expr::NatJoin(Box::new(self), Box::new(other))
    }

    /// `self ⋈_{a=b} other`.
    pub fn join_eq(self, other: Expr, a: impl Into<Attr>, b: impl Into<Attr>) -> Self {
        Expr::ThetaJoin {
            left: Box::new(self),
            right: Box::new(other),
            on_left: a.into(),
            on_right: b.into(),
            eq: true,
        }
    }

    /// `self ⋈_{a≠b} other`.
    pub fn join_ne(self, other: Expr, a: impl Into<Attr>, b: impl Into<Attr>) -> Self {
        Expr::ThetaJoin {
            left: Box::new(self),
            right: Box::new(other),
            on_left: a.into(),
            on_right: b.into(),
            eq: false,
        }
    }

    /// Structural size of the expression (number of AST nodes), used by
    /// the benchmark harness to report complexity sweeps.
    pub fn size(&self) -> usize {
        match self {
            Expr::Base(_) | Expr::Param(_) => 1,
            Expr::Union(l, r) | Expr::Diff(l, r) | Expr::Product(l, r) | Expr::NatJoin(l, r) => {
                1 + l.size() + r.size()
            }
            Expr::ThetaJoin { left, right, .. } => 1 + left.size() + right.size(),
            Expr::SelectEq(e, _, _)
            | Expr::SelectNe(e, _, _)
            | Expr::Project(e, _)
            | Expr::Rename(e, _, _) => 1 + e.size(),
        }
    }

    /// All base relations referenced by the expression.
    pub fn base_relations(&self) -> std::collections::BTreeSet<RelName> {
        let mut out = std::collections::BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Base(r) = e {
                out.insert(*r);
            }
        });
        out
    }

    /// All parameter relations referenced by the expression.
    pub fn params(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Param(p) = e {
                out.insert(p.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Base(_) | Expr::Param(_) => {}
            Expr::Union(l, r) | Expr::Diff(l, r) | Expr::Product(l, r) | Expr::NatJoin(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::ThetaJoin { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::SelectEq(e, _, _)
            | Expr::SelectNe(e, _, _)
            | Expr::Project(e, _)
            | Expr::Rename(e, _, _) => e.visit(f),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(RelName::Class(c)) => write!(f, "C{}", c.0),
            Expr::Base(RelName::Prop(p)) => write!(f, "P{}", p.0),
            Expr::Param(p) => write!(f, "{p}"),
            Expr::Union(l, r) => write!(f, "({l} ∪ {r})"),
            Expr::Diff(l, r) => write!(f, "({l} − {r})"),
            Expr::Product(l, r) => write!(f, "({l} × {r})"),
            Expr::SelectEq(e, a, b) => write!(f, "σ[{a}={b}]({e})"),
            Expr::SelectNe(e, a, b) => write!(f, "σ[{a}≠{b}]({e})"),
            Expr::Project(e, attrs) => write!(f, "π[{}]({e})", attrs.join(",")),
            Expr::Rename(e, a, b) => write!(f, "ρ[{a}→{b}]({e})"),
            Expr::NatJoin(l, r) => write!(f, "({l} ⋈ {r})"),
            Expr::ThetaJoin {
                left,
                right,
                on_left,
                on_right,
                eq,
            } => write!(
                f,
                "({left} ⋈[{on_left}{}{on_right}] {right})",
                if *eq { "=" } else { "≠" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // add_bar (Example 5.5): f := π_f(self ⋈[self=D] Df) ∪ arg1
        let e = Expr::self_rel()
            .join_eq(Expr::prop(PropId(0)), "self", "Drinker")
            .project(["frequents"])
            .union(Expr::arg(1));
        assert_eq!(e.size(), 6); // self, Df, ⋈, π, arg1, ∪
        assert_eq!(e.params().into_iter().collect::<Vec<_>>(), ["arg1", "self"]);
        assert_eq!(
            e.base_relations().into_iter().collect::<Vec<_>>(),
            [RelName::Prop(PropId(0))]
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::class(ClassId(1)).diff(Expr::self_rel()).probe();
        assert_eq!(e.to_string(), "π[]((C1 − self))");
    }
}
