//! Relation schemes: ordered lists of named, class-typed attributes.

use std::fmt;

use receivers_objectbase::ClassId;

use crate::error::{RelAlgError, Result};

/// An attribute name. Attribute names are plain strings (`"self"`,
/// `"arg1"`, `"Drinker"`, `"frequents"`, primed copies `"self'"`, …).
pub type Attr = String;

/// A relation scheme: attribute names with their domains (class ids), in
/// *declaration order*. Union and difference are positional, following
/// standard implementation practice for union-compatibility; joins and
/// selections address attributes by name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelSchema {
    attrs: Vec<(Attr, ClassId)>,
}

impl RelSchema {
    /// Build a scheme, rejecting duplicate attribute names.
    pub fn new(attrs: Vec<(Attr, ClassId)>) -> Result<Self> {
        for (i, (a, _)) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|(b, _)| b == a) {
                return Err(RelAlgError::DuplicateAttr(a.clone()));
            }
        }
        Ok(Self { attrs })
    }

    /// The 0-ary scheme (used by the `π_∅(E)` emptiness guards of the
    /// Theorem 5.6 construction).
    pub fn nullary() -> Self {
        Self { attrs: Vec::new() }
    }

    /// A unary scheme.
    pub fn unary(attr: impl Into<Attr>, dom: ClassId) -> Self {
        Self {
            attrs: vec![(attr.into(), dom)],
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in order.
    pub fn attrs(&self) -> impl Iterator<Item = &Attr> + '_ {
        self.attrs.iter().map(|(a, _)| a)
    }

    /// `(name, domain)` pairs in order.
    pub fn columns(&self) -> &[(Attr, ClassId)] {
        &self.attrs
    }

    /// Position of an attribute.
    pub fn position(&self, attr: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|(a, _)| a == attr)
            .ok_or_else(|| RelAlgError::UnknownAttr(attr.to_owned()))
    }

    /// Domain of an attribute.
    pub fn domain(&self, attr: &str) -> Result<ClassId> {
        let i = self.position(attr)?;
        Ok(self.attrs[i].1)
    }

    /// Whether an attribute is present.
    pub fn contains(&self, attr: &str) -> bool {
        self.attrs.iter().any(|(a, _)| a == attr)
    }

    /// Positional union-compatibility: same arity and same domains in
    /// order. Attribute names may differ (the left operand's names win).
    pub fn union_compatible(&self, other: &Self) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(&other.attrs)
                .all(|((_, d1), (_, d2))| d1 == d2)
    }

    /// Scheme of the Cartesian product; attribute names must be disjoint.
    pub fn product(&self, other: &Self) -> Result<Self> {
        let mut attrs = self.attrs.clone();
        for (a, d) in &other.attrs {
            if self.contains(a) {
                return Err(RelAlgError::ProductAttrClash(a.clone()));
            }
            attrs.push((a.clone(), *d));
        }
        Ok(Self { attrs })
    }

    /// Scheme of a projection onto `keep` (in the order given).
    pub fn project(&self, keep: &[Attr]) -> Result<Self> {
        let mut attrs = Vec::with_capacity(keep.len());
        for a in keep {
            let i = self.position(a)?;
            if attrs.iter().any(|(b, _): &(Attr, ClassId)| b == a) {
                return Err(RelAlgError::DuplicateAttr(a.clone()));
            }
            attrs.push(self.attrs[i].clone());
        }
        Ok(Self { attrs })
    }

    /// Scheme after renaming `from` to `to`.
    pub fn rename(&self, from: &str, to: &str) -> Result<Self> {
        let i = self.position(from)?;
        if from != to && self.contains(to) {
            return Err(RelAlgError::DuplicateAttr(to.to_owned()));
        }
        let mut attrs = self.attrs.clone();
        attrs[i].0 = to.to_owned();
        Ok(Self { attrs })
    }

    /// Attributes common to both schemes (by name), requiring equal
    /// domains; used by the natural join.
    pub fn common_attrs(&self, other: &Self) -> Result<Vec<Attr>> {
        let mut out = Vec::new();
        for (a, d) in &self.attrs {
            if let Ok(d2) = other.domain(a) {
                if *d != d2 {
                    return Err(RelAlgError::DomainMismatch {
                        left: a.clone(),
                        right: a.clone(),
                    });
                }
                out.push(a.clone());
            }
        }
        Ok(out)
    }

    /// Scheme of the natural join: this scheme followed by the other's
    /// non-common attributes.
    pub fn natural_join(&self, other: &Self) -> Result<Self> {
        let common = self.common_attrs(other)?;
        let mut attrs = self.attrs.clone();
        for (a, d) in &other.attrs {
            if !common.contains(a) {
                if self.contains(a) {
                    return Err(RelAlgError::ProductAttrClash(a.clone()));
                }
                attrs.push((a.clone(), *d));
            }
        }
        Ok(Self { attrs })
    }
}

impl fmt::Display for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (a, d)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}:c{}", d.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ClassId = ClassId(0);
    const B: ClassId = ClassId(1);

    #[test]
    fn rejects_duplicates() {
        assert!(RelSchema::new(vec![("x".into(), A), ("x".into(), B)]).is_err());
    }

    #[test]
    fn positional_union_compatibility() {
        let s1 = RelSchema::new(vec![("f".into(), B)]).unwrap();
        let s2 = RelSchema::new(vec![("arg1".into(), B)]).unwrap();
        let s3 = RelSchema::new(vec![("x".into(), A)]).unwrap();
        assert!(s1.union_compatible(&s2));
        assert!(!s1.union_compatible(&s3));
    }

    #[test]
    fn product_requires_disjoint_names() {
        let s1 = RelSchema::unary("x", A);
        let s2 = RelSchema::unary("x", B);
        assert!(s1.product(&s2).is_err());
        let s3 = RelSchema::unary("y", B);
        let p = s1.product(&s3).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.position("y").unwrap(), 1);
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        let p = s.project(&["y".into(), "x".into()]).unwrap();
        assert_eq!(p.attrs().collect::<Vec<_>>(), ["y", "x"]);
        assert!(s.project(&["z".into()]).is_err());
        assert_eq!(s.project(&[]).unwrap(), RelSchema::nullary());
    }

    #[test]
    fn rename_checks_collisions() {
        let s = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        assert!(s.rename("x", "y").is_err());
        let r = s.rename("x", "z").unwrap();
        assert!(r.contains("z") && !r.contains("x"));
        assert_eq!(s.rename("x", "x").unwrap(), s);
    }

    #[test]
    fn natural_join_scheme() {
        let s1 = RelSchema::new(vec![("self".into(), A), ("x".into(), B)]).unwrap();
        let s2 = RelSchema::new(vec![("self".into(), A), ("y".into(), B)]).unwrap();
        let j = s1.natural_join(&s2).unwrap();
        assert_eq!(j.attrs().collect::<Vec<_>>(), ["self", "x", "y"]);
    }

    #[test]
    fn natural_join_rejects_domain_clash_on_common_attr() {
        let s1 = RelSchema::unary("x", A);
        let s2 = RelSchema::unary("x", B);
        assert!(s1.natural_join(&s2).is_err());
    }
}
