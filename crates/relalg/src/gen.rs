//! Random well-typed expression generation, used by the cross-check
//! property tests (compiled-CQ evaluation vs direct evaluation, rewrite
//! soundness) and by the benchmark harness.
//!
//! The generator builds candidate operators bottom-up and *validates each
//! candidate with the type checker*, falling back to the operand when a
//! randomly chosen operator does not type-check — so every produced
//! expression is well-typed by construction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use receivers_objectbase::Schema;

use crate::expr::{Expr, RelName};
use crate::typecheck::{infer_schema, ParamSchemas};

/// Parameters for [`random_positive_expr`].
#[derive(Debug, Clone, Copy)]
pub struct ExprParams {
    /// Maximum AST depth.
    pub depth: usize,
    /// Allow the difference operator (non-positive expressions).
    pub allow_diff: bool,
}

impl Default for ExprParams {
    fn default() -> Self {
        Self {
            depth: 4,
            allow_diff: false,
        }
    }
}

/// Generate a random well-typed expression over `schema`'s base relations
/// and the declared parameter relations.
pub fn random_expr(schema: &Schema, params: &ParamSchemas, p: ExprParams, seed: u64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    go(schema, params, p.depth, p.allow_diff, &mut rng)
}

fn leaf(schema: &Schema, params: &ParamSchemas, rng: &mut StdRng) -> Expr {
    let n_classes = schema.class_count();
    let n_props = schema.property_count();
    let n_params = params.len();
    let total = n_classes + n_props + n_params;
    let pick = rng.random_range(0..total);
    if pick < n_classes {
        Expr::Base(RelName::Class(receivers_objectbase::ClassId(pick as u32)))
    } else if pick < n_classes + n_props {
        Expr::Base(RelName::Prop(receivers_objectbase::PropId(
            (pick - n_classes) as u32,
        )))
    } else {
        let name = params
            .keys()
            .nth(pick - n_classes - n_props)
            .expect("in range");
        Expr::Param(name.clone())
    }
}

fn go(
    schema: &Schema,
    params: &ParamSchemas,
    depth: usize,
    allow_diff: bool,
    rng: &mut StdRng,
) -> Expr {
    if depth == 0 {
        return leaf(schema, params, rng);
    }
    let e = go(schema, params, depth - 1, allow_diff, rng);
    let scheme = infer_schema(&e, schema, params).expect("generated exprs are well-typed");
    let attrs: Vec<String> = scheme.attrs().cloned().collect();

    let candidate: Option<Expr> = match rng.random_range(0..8u32) {
        // Projection onto a random non-empty prefix-shuffle of attrs.
        0 if !attrs.is_empty() => {
            let keep = rng.random_range(1..=attrs.len());
            let mut chosen = attrs.clone();
            for i in (1..chosen.len()).rev() {
                chosen.swap(i, rng.random_range(0..=i));
            }
            chosen.truncate(keep);
            Some(e.clone().project(chosen))
        }
        // Rename one attribute to a fresh name.
        1 if !attrs.is_empty() => {
            let a = attrs[rng.random_range(0..attrs.len())].clone();
            Some(
                e.clone()
                    .rename(a, format!("g{}", rng.random_range(0..1000))),
            )
        }
        // Equality / non-equality selection between same-domain attrs.
        2 | 3 => {
            let mut pairs = Vec::new();
            for (i, (a, da)) in scheme.columns().iter().enumerate() {
                for (b, db) in scheme.columns().iter().skip(i + 1) {
                    if da == db {
                        pairs.push((a.clone(), b.clone()));
                    }
                }
            }
            if pairs.is_empty() {
                None
            } else {
                let (a, b) = pairs[rng.random_range(0..pairs.len())].clone();
                Some(if rng.random_bool(0.5) {
                    e.clone().select_eq(a, b)
                } else {
                    e.clone().select_ne(a, b)
                })
            }
        }
        // Union with a same-scheme variant of e.
        4 => {
            let variant = if attrs.len() >= 2 {
                let (a, b) = (attrs[0].clone(), attrs[1].clone());
                let da = scheme.columns()[0].1;
                let db = scheme.columns()[1].1;
                if da == db {
                    e.clone().select_ne(a, b)
                } else {
                    e.clone()
                }
            } else {
                e.clone()
            };
            Some(e.clone().union(variant))
        }
        // Product with a fresh leaf, auto-renamed apart.
        5 => {
            let mut other = leaf(schema, params, rng);
            // Rename the other side's attributes to fresh names to avoid
            // clashes.
            if let Ok(os) = infer_schema(&other, schema, params) {
                for a in os.attrs() {
                    other = other.rename(a.clone(), format!("h{}_{a}", rng.random_range(0..1000)));
                }
                Some(e.clone().product(other))
            } else {
                None
            }
        }
        // Natural join with another sub-expression.
        6 => {
            let other = go(schema, params, depth.saturating_sub(2), allow_diff, rng);
            Some(e.clone().nat_join(other))
        }
        // Difference with a same-scheme variant (full algebra only).
        7 if allow_diff => Some(e.clone().diff(e.clone())),
        _ => None,
    };

    match candidate {
        Some(c) if infer_schema(&c, schema, params).is_ok() => c,
        _ => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::positive::is_positive;
    use receivers_objectbase::examples::beer_schema;

    #[test]
    fn generated_expressions_are_well_typed() {
        let s = beer_schema();
        let params = ParamSchemas::new();
        for seed in 0..200u64 {
            let e = random_expr(
                &s.schema,
                &params,
                ExprParams {
                    depth: 5,
                    allow_diff: false,
                },
                seed,
            );
            assert!(
                infer_schema(&e, &s.schema, &params).is_ok(),
                "seed {seed}: {e}"
            );
            assert!(is_positive(&e), "seed {seed}");
        }
    }

    #[test]
    fn diff_only_appears_when_allowed() {
        let s = beer_schema();
        let params = ParamSchemas::new();
        let mut saw_diff = false;
        for seed in 0..200u64 {
            let e = random_expr(
                &s.schema,
                &params,
                ExprParams {
                    depth: 5,
                    allow_diff: true,
                },
                seed,
            );
            assert!(infer_schema(&e, &s.schema, &params).is_ok());
            saw_diff |= !is_positive(&e);
        }
        assert!(
            saw_diff,
            "difference should appear in some generated expression"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let s = beer_schema();
        let params = ParamSchemas::new();
        let a = random_expr(&s.schema, &params, ExprParams::default(), 11);
        let b = random_expr(&s.schema, &params, ExprParams::default(), 11);
        assert_eq!(a, b);
    }
}
