//! Semantics-preserving expression simplification.
//!
//! The `par(·)` transform and the Theorem 5.6 reduction generate deeply
//! nested expressions full of identity renames and stacked projections;
//! this pass cleans them up. Rules:
//!
//! * `ρ_{A→A}(E)` → `E`;
//! * `ρ_{A→B}(ρ_{C→A}(E))` → `ρ_{C→B}(E)` (composition);
//! * `π_X(π_Y(E))` → `π_X(E)` (the outer projection addresses a subset of
//!   the inner one's output);
//! * `E ∪ E` → `E` (set semantics);
//! * projection of the full scheme in order → dropped.
//!
//! Every rule is validated by the property test
//! `simplify_preserves_semantics` (in `receivers-cq`'s cross-check suite)
//! over randomly generated expressions.

use receivers_objectbase::Schema;

use crate::error::Result;
use crate::expr::Expr;
use crate::typecheck::{infer_schema, ParamSchemas};

/// Simplify an expression; the result has the same scheme and the same
/// value on every database and binding.
pub fn simplify(expr: &Expr, schema: &Schema, params: &ParamSchemas) -> Result<Expr> {
    let out = match expr {
        Expr::Base(_) | Expr::Param(_) => expr.clone(),
        Expr::Union(l, r) => {
            let l = simplify(l, schema, params)?;
            let r = simplify(r, schema, params)?;
            if l == r {
                l
            } else {
                l.union(r)
            }
        }
        Expr::Diff(l, r) => simplify(l, schema, params)?.diff(simplify(r, schema, params)?),
        Expr::Product(l, r) => simplify(l, schema, params)?.product(simplify(r, schema, params)?),
        Expr::SelectEq(e, a, b) => {
            let e = simplify(e, schema, params)?;
            if a == b {
                e // σ_{A=A} is the identity
            } else {
                e.select_eq(a.clone(), b.clone())
            }
        }
        Expr::SelectNe(e, a, b) => simplify(e, schema, params)?.select_ne(a.clone(), b.clone()),
        Expr::Project(e, attrs) => {
            let inner = simplify(e, schema, params)?;
            // π_X(π_Y(E)) → π_X(E) when X ⊆ output of E … which holds
            // exactly when the inner is itself a projection whose own
            // input contains X with the same positions semantics: πs
            // address by name, so collapsing is sound whenever the inner
            // expression's input scheme still contains every name in X
            // uniquely. Names can be *introduced* only by renames, so
            // collapsing a directly nested projection is always sound.
            let collapsed = if let Expr::Project(inner_e, _) = &inner {
                let candidate = Expr::Project(inner_e.clone(), attrs.clone());
                match infer_schema(&candidate, schema, params) {
                    Ok(s) if s == infer_schema(expr, schema, params)? => candidate,
                    _ => inner.project(attrs.iter().cloned()),
                }
            } else {
                inner.project(attrs.iter().cloned())
            };
            // Drop full-scheme identity projections.
            if let Expr::Project(e, attrs) = &collapsed {
                let inner_scheme = infer_schema(e, schema, params)?;
                let identity = inner_scheme.arity() == attrs.len()
                    && inner_scheme.attrs().zip(attrs.iter()).all(|(a, b)| a == b);
                if identity {
                    return Ok((**e).clone());
                }
            }
            collapsed
        }
        Expr::Rename(e, from, to) => {
            let inner = simplify(e, schema, params)?;
            if from == to {
                return Ok(inner);
            }
            if let Expr::Rename(ee, f2, t2) = &inner {
                if t2 == from {
                    // ρ_{from→to} ∘ ρ_{f2→from} = ρ_{f2→to}, valid when
                    // the composed rename type-checks.
                    let candidate = Expr::Rename((*ee).clone(), f2.clone(), to.clone());
                    if infer_schema(&candidate, schema, params).is_ok() {
                        return Ok(candidate);
                    }
                }
            }
            inner.rename(from.clone(), to.clone())
        }
        Expr::NatJoin(l, r) => simplify(l, schema, params)?.nat_join(simplify(r, schema, params)?),
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq,
        } => {
            let l = simplify(left, schema, params)?;
            let r = simplify(right, schema, params)?;
            if *eq {
                l.join_eq(r, on_left.clone(), on_right.clone())
            } else {
                l.join_ne(r, on_left.clone(), on_right.clone())
            }
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    fn no_params() -> ParamSchemas {
        ParamSchemas::new()
    }

    #[test]
    fn identity_rename_dropped() {
        let s = beer_schema();
        let e = Expr::class(s.bar).rename("Bar", "Bar");
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::class(s.bar)
        );
    }

    #[test]
    fn rename_composition() {
        let s = beer_schema();
        let e = Expr::class(s.bar).rename("Bar", "X").rename("X", "Y");
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::class(s.bar).rename("Bar", "Y")
        );
    }

    #[test]
    fn nested_projections_collapse() {
        let s = beer_schema();
        let e = Expr::prop(s.frequents)
            .project(["Drinker", "frequents"])
            .project(["frequents"]);
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::prop(s.frequents).project(["frequents"])
        );
    }

    #[test]
    fn identity_projection_dropped() {
        let s = beer_schema();
        let e = Expr::prop(s.frequents).project(["Drinker", "frequents"]);
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::prop(s.frequents)
        );
    }

    #[test]
    fn reordering_projection_kept() {
        let s = beer_schema();
        let e = Expr::prop(s.frequents).project(["frequents", "Drinker"]);
        // Not the identity: column order differs.
        assert_eq!(simplify(&e, &s.schema, &no_params()).unwrap(), e);
    }

    #[test]
    fn idempotent_union_collapses() {
        let s = beer_schema();
        let e = Expr::class(s.bar).union(Expr::class(s.bar));
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::class(s.bar)
        );
    }

    #[test]
    fn trivial_equality_selection_dropped() {
        let s = beer_schema();
        let e = Expr::class(s.bar).select_eq("Bar", "Bar");
        assert_eq!(
            simplify(&e, &s.schema, &no_params()).unwrap(),
            Expr::class(s.bar)
        );
    }
}
