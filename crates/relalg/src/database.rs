//! The relational representation of object-base instances
//! (Proposition 5.1).

use std::collections::BTreeMap;
use std::sync::Arc;

use receivers_objectbase::{ClassId, Edge, Instance, Oid, PropId, Schema};

use crate::error::{RelAlgError, Result};
use crate::expr::RelName;
use crate::relation::Relation;
use crate::schema::RelSchema;

/// The relational database corresponding to an object-base instance:
/// one unary relation per class, one binary relation per property.
///
/// Conversion is lossless in both directions (Proposition 5.1): see
/// [`Database::from_instance`] and [`Database::to_instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    schema: Arc<Schema>,
    classes: BTreeMap<ClassId, Relation>,
    props: BTreeMap<PropId, Relation>,
}

/// Hashes the relation contents only. `Schema` has no `Hash` impl, and
/// equal databases (which share equal relation maps) still hash equal, so
/// consistency with `Eq` holds.
impl std::hash::Hash for Database {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.classes.hash(state);
        self.props.hash(state);
    }
}

/// The relation scheme of a base relation.
///
/// * `Class(C)` — unary scheme with one attribute named after the class,
///   of domain `C`;
/// * `Prop(p)` for a schema edge `(C, a, B)` — binary scheme `Ca` with
///   attributes named after `C` (domain `C`) and after `a` (domain `B`),
///   exactly as in Section 5.1.
pub fn base_schema(schema: &Schema, rel: RelName) -> RelSchema {
    match rel {
        RelName::Class(c) => RelSchema::unary(schema.class_name(c), c),
        RelName::Prop(p) => {
            let prop = schema.property(p);
            RelSchema::new(vec![
                (schema.class_name(prop.src).to_owned(), prop.src),
                (prop.name.clone(), prop.dst),
            ])
            .expect("class and property namespaces are disjoint")
        }
    }
}

impl Database {
    /// Build the relational representation of `instance`.
    ///
    /// Each class relation reads one contiguous node range and each
    /// property relation one per-property index entry, so the whole
    /// conversion is `O(N + E)` rather than one full scan per relation.
    pub fn from_instance(instance: &Instance) -> Self {
        let schema = Arc::clone(instance.schema());
        let mut classes = BTreeMap::new();
        for c in schema.classes() {
            let mut r = Relation::empty(base_schema(&schema, RelName::Class(c)));
            for o in instance.class_members(c) {
                r.insert(&[o]).expect("typed by construction");
            }
            classes.insert(c, r);
        }
        let mut props = BTreeMap::new();
        for p in schema.properties() {
            let mut r = Relation::empty(base_schema(&schema, RelName::Prop(p)));
            for (src, dst) in instance.edges_labeled_pairs(p) {
                r.insert(&[src, dst]).expect("typed by construction");
            }
            props.insert(p, r);
        }
        Self {
            schema,
            classes,
            props,
        }
    }

    /// The object-base schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Look up a base relation.
    pub fn relation(&self, rel: RelName) -> Result<&Relation> {
        match rel {
            RelName::Class(c) => self
                .classes
                .get(&c)
                .ok_or_else(|| RelAlgError::UnknownRelation(format!("C{}", c.0))),
            RelName::Prop(p) => self
                .props
                .get(&p)
                .ok_or_else(|| RelAlgError::UnknownRelation(format!("P{}", p.0))),
        }
    }

    /// Replace the contents of a property relation (used by algebraic
    /// method application when rebuilding instances).
    pub fn set_prop(&mut self, p: PropId, r: Relation) -> Result<()> {
        let expected = base_schema(&self.schema, RelName::Prop(p));
        if !expected.union_compatible(r.schema()) {
            return Err(RelAlgError::SchemaMismatch {
                op: "set_prop",
                left: expected.to_string(),
                right: r.schema().to_string(),
            });
        }
        self.props.insert(p, r);
        Ok(())
    }

    /// Insert the class tuple `{o}` for a newly added object. `O(log N)` —
    /// the touched-tuple primitive behind incremental maintenance
    /// ([`DatabaseView`](crate::view::DatabaseView)). Returns `true` when
    /// the tuple was new.
    pub fn insert_node_tuple(&mut self, o: Oid) -> Result<bool> {
        self.classes
            .get_mut(&o.class)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("C{}", o.class.0)))?
            .insert(&[o])
    }

    /// Remove the class tuple `{o}`. `O(log N)`. Returns `true` when the
    /// tuple was present.
    pub fn remove_node_tuple(&mut self, o: Oid) -> Result<bool> {
        Ok(self
            .classes
            .get_mut(&o.class)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("C{}", o.class.0)))?
            .remove(&[o]))
    }

    /// Insert the property tuple `(src, dst)` for a newly added edge.
    /// `O(log E)`. Returns `true` when the tuple was new.
    pub fn insert_edge_tuple(&mut self, e: &Edge) -> Result<bool> {
        self.props
            .get_mut(&e.prop)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("P{}", e.prop.0)))?
            .insert(&[e.src, e.dst])
    }

    /// Remove the property tuple `(src, dst)`. `O(log E)`. Returns `true`
    /// when the tuple was present.
    pub fn remove_edge_tuple(&mut self, e: &Edge) -> Result<bool> {
        Ok(self
            .props
            .get_mut(&e.prop)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("P{}", e.prop.0)))?
            .remove(&[e.src, e.dst]))
    }

    /// Apply a netted batch of class-tuple edits to `class`'s relation:
    /// insert every oid of `adds`, remove every oid of `dels` (both
    /// sorted and mutually disjoint). One consolidation per relation per
    /// transaction — see [`Relation::apply_row_edits`].
    pub fn apply_node_edits(&mut self, class: ClassId, adds: &[Oid], dels: &[Oid]) -> Result<()> {
        self.classes
            .get_mut(&class)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("C{}", class.0)))?
            .apply_row_edits(adds, dels)
    }

    /// Apply a netted batch of property-tuple edits to `prop`'s relation:
    /// `adds` and `dels` are flat `(src, dst)`-chunked row buffers, each
    /// sorted, mutually disjoint. See [`Relation::apply_row_edits`].
    pub fn apply_edge_edits(&mut self, prop: PropId, adds: &[Oid], dels: &[Oid]) -> Result<()> {
        self.props
            .get_mut(&prop)
            .ok_or_else(|| RelAlgError::UnknownRelation(format!("P{}", prop.0)))?
            .apply_row_edits(adds, dels)
    }

    /// The `src`'s `prop`-successors in ascending oid order — the
    /// relational analogue of `Instance::successors`, answered by the flat
    /// kernel's prefix probe in `O(log E + d)`. Yields nothing for an
    /// unknown property, matching the empty successor set.
    pub fn prop_successors(&self, prop: PropId, src: Oid) -> impl Iterator<Item = Oid> + '_ {
        self.props.get(&prop).into_iter().flat_map(move |r| {
            let ts = r.tuple_set();
            ts.range_iter(ts.prefix_bounds(&[src])).map(|t| t[1])
        })
    }

    /// Recover the object-base instance (the inverse direction of
    /// Proposition 5.1). Fails when an edge tuple references an object that
    /// is not in its class relation, i.e. when the inclusion dependencies
    /// `Ca[C] ⊆ C[C]` and `Ca[a] ⊆ B[B]` are violated.
    pub fn to_instance(&self) -> Result<Instance> {
        let mut i = Instance::empty(Arc::clone(&self.schema));
        for r in self.classes.values() {
            for t in r.tuples() {
                i.add_object(t[0]);
            }
        }
        for (&p, r) in &self.props {
            for t in r.tuples() {
                i.add_edge(Edge::new(t[0], p, t[1])).map_err(|_| {
                    RelAlgError::IllTypedTuple(format!(
                        "edge tuple of relation P{} violates an inclusion dependency",
                        p.0
                    ))
                })?;
            }
        }
        Ok(i)
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.classes
            .values()
            .chain(self.props.values())
            .map(Relation::len)
            .sum()
    }
}

/// Objects appearing anywhere in a unary/binary relation column of the
/// database-derived kind. Convenience used in tests.
pub fn column_objects(r: &Relation) -> impl Iterator<Item = Oid> + '_ {
    r.tuples().flat_map(|t| t.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::{beer_schema, figure1};

    #[test]
    fn round_trip_preserves_instances() {
        let s = beer_schema();
        let i = figure1(&s);
        let db = Database::from_instance(&i);
        let back = db.to_instance().unwrap();
        assert_eq!(i, back);
    }

    /// The prefix probe agrees with the instance's successor sets, in the
    /// same ascending order.
    #[test]
    fn prop_successors_matches_instance_successors() {
        let s = beer_schema();
        let i = figure1(&s);
        let db = Database::from_instance(&i);
        for o in i.nodes() {
            for p in s.schema.properties() {
                assert_eq!(
                    db.prop_successors(p, o).collect::<Vec<_>>(),
                    i.successors(o, p).collect::<Vec<_>>(),
                    "successors of {o:?} over P{}",
                    p.0
                );
            }
        }
    }

    #[test]
    fn relation_shapes_match_section_5_1() {
        let s = beer_schema();
        let i = figure1(&s);
        let db = Database::from_instance(&i);
        let drinkers = db.relation(RelName::Class(s.drinker)).unwrap();
        assert_eq!(drinkers.schema().arity(), 1);
        assert_eq!(drinkers.len(), 2);
        let serves = db.relation(RelName::Prop(s.serves)).unwrap();
        assert_eq!(serves.schema().arity(), 2);
        assert_eq!(
            serves.schema().attrs().collect::<Vec<_>>(),
            ["Bar", "serves"]
        );
    }

    #[test]
    fn to_instance_rejects_ind_violations() {
        let s = beer_schema();
        let i = figure1(&s);
        let mut db = Database::from_instance(&i);
        // Point a serves-edge at a bar object that is not in class Bar.
        let ghost_bar = Oid::new(s.bar, 99);
        let beer = i.class_members(s.beer).next().unwrap();
        let mut serves = db.relation(RelName::Prop(s.serves)).unwrap().clone();
        serves.insert(&[ghost_bar, beer]).unwrap();
        db.set_prop(s.serves, serves).unwrap();
        assert!(db.to_instance().is_err());
    }
}
