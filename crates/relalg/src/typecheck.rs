//! Static typing of algebra expressions: result-scheme inference.

use std::collections::BTreeMap;

use receivers_objectbase::{Schema, Signature};

use crate::database::base_schema;
use crate::error::{RelAlgError, Result};
use crate::expr::Expr;
use crate::schema::RelSchema;

/// Declared schemes for parameter relations (`self`, `arg1`, …, `rec`).
pub type ParamSchemas = BTreeMap<String, RelSchema>;

/// The standard parameter schemes of an update expression of type σ
/// (Definition 5.4(1)): `self` is unary over the receiving class, `arg_i`
/// unary over the `i`-th argument class.
pub fn update_params(sig: &Signature) -> ParamSchemas {
    let mut out = ParamSchemas::new();
    out.insert(
        "self".to_owned(),
        RelSchema::unary("self", sig.receiving_class()),
    );
    for (i, &c) in sig.argument_classes().iter().enumerate() {
        let name = format!("arg{}", i + 1);
        out.insert(name.clone(), RelSchema::unary(name, c));
    }
    out
}

/// Parameter schemes for the *parallel* interpretation of Section 6: the
/// single relation `rec` over scheme `self arg1 … argk`.
pub fn rec_params(sig: &Signature) -> ParamSchemas {
    let mut cols = vec![("self".to_owned(), sig.receiving_class())];
    for (i, &c) in sig.argument_classes().iter().enumerate() {
        cols.push((format!("arg{}", i + 1), c));
    }
    let mut out = ParamSchemas::new();
    out.insert(
        "rec".to_owned(),
        RelSchema::new(cols).expect("distinct parameter names"),
    );
    out
}

/// Infer the result scheme of `expr` over the relational representation of
/// `schema`, with parameter relations typed by `params`. Errors on any
/// ill-formed subexpression.
pub fn infer_schema(expr: &Expr, schema: &Schema, params: &ParamSchemas) -> Result<RelSchema> {
    match expr {
        Expr::Base(rel) => Ok(base_schema(schema, *rel)),
        Expr::Param(p) => params
            .get(p)
            .cloned()
            .ok_or_else(|| RelAlgError::UnknownParam(p.clone())),
        Expr::Union(l, r) | Expr::Diff(l, r) => {
            let ls = infer_schema(l, schema, params)?;
            let rs = infer_schema(r, schema, params)?;
            if ls.union_compatible(&rs) {
                Ok(ls)
            } else {
                Err(RelAlgError::SchemaMismatch {
                    op: if matches!(expr, Expr::Union(..)) {
                        "union"
                    } else {
                        "difference"
                    },
                    left: ls.to_string(),
                    right: rs.to_string(),
                })
            }
        }
        Expr::Product(l, r) => {
            let ls = infer_schema(l, schema, params)?;
            let rs = infer_schema(r, schema, params)?;
            ls.product(&rs)
        }
        Expr::SelectEq(e, a, b) | Expr::SelectNe(e, a, b) => {
            let s = infer_schema(e, schema, params)?;
            if s.domain(a)? != s.domain(b)? {
                return Err(RelAlgError::DomainMismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            Ok(s)
        }
        Expr::Project(e, attrs) => infer_schema(e, schema, params)?.project(attrs),
        Expr::Rename(e, from, to) => infer_schema(e, schema, params)?.rename(from, to),
        Expr::NatJoin(l, r) => {
            let ls = infer_schema(l, schema, params)?;
            let rs = infer_schema(r, schema, params)?;
            ls.natural_join(&rs)
        }
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq: _,
        } => {
            let ls = infer_schema(left, schema, params)?;
            let rs = infer_schema(right, schema, params)?;
            if ls.domain(on_left)? != rs.domain(on_right)? {
                return Err(RelAlgError::DomainMismatch {
                    left: on_left.clone(),
                    right: on_right.clone(),
                });
            }
            ls.product(&rs)
        }
    }
}

/// Collect **every** type error in `expr` instead of stopping at the
/// first, for diagnostic front-ends (`receivers-lint`): an ill-formed
/// subexpression is recorded and its scheme treated as unknown, which
/// suppresses follow-on errors that would only restate it.
pub fn collect_errors(expr: &Expr, schema: &Schema, params: &ParamSchemas) -> Vec<RelAlgError> {
    let mut out = Vec::new();
    walk(expr, schema, params, &mut out);
    out
}

fn walk(
    expr: &Expr,
    schema: &Schema,
    params: &ParamSchemas,
    out: &mut Vec<RelAlgError>,
) -> Option<RelSchema> {
    match expr {
        Expr::Base(rel) => Some(base_schema(schema, *rel)),
        Expr::Param(p) => match params.get(p) {
            Some(s) => Some(s.clone()),
            None => {
                out.push(RelAlgError::UnknownParam(p.clone()));
                None
            }
        },
        Expr::Union(l, r) | Expr::Diff(l, r) => {
            let ls = walk(l, schema, params, out);
            let rs = walk(r, schema, params, out);
            match (ls, rs) {
                (Some(ls), Some(rs)) => {
                    if ls.union_compatible(&rs) {
                        Some(ls)
                    } else {
                        out.push(RelAlgError::SchemaMismatch {
                            op: if matches!(expr, Expr::Union(..)) {
                                "union"
                            } else {
                                "difference"
                            },
                            left: ls.to_string(),
                            right: rs.to_string(),
                        });
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::Product(l, r) => {
            let ls = walk(l, schema, params, out)?;
            let rs = walk(r, schema, params, out)?;
            record(ls.product(&rs), out)
        }
        Expr::SelectEq(e, a, b) | Expr::SelectNe(e, a, b) => {
            let s = walk(e, schema, params, out)?;
            match (s.domain(a), s.domain(b)) {
                (Ok(da), Ok(db)) => {
                    if da != db {
                        out.push(RelAlgError::DomainMismatch {
                            left: a.clone(),
                            right: b.clone(),
                        });
                    }
                }
                (l, r) => {
                    if let Err(e) = l {
                        out.push(e);
                    }
                    if let Err(e) = r {
                        out.push(e);
                    }
                }
            }
            Some(s)
        }
        Expr::Project(e, attrs) => {
            let s = walk(e, schema, params, out)?;
            record(s.project(attrs), out)
        }
        Expr::Rename(e, from, to) => {
            let s = walk(e, schema, params, out)?;
            record(s.rename(from, to), out)
        }
        Expr::NatJoin(l, r) => {
            let ls = walk(l, schema, params, out)?;
            let rs = walk(r, schema, params, out)?;
            record(ls.natural_join(&rs), out)
        }
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq: _,
        } => {
            let ls = walk(left, schema, params, out)?;
            let rs = walk(right, schema, params, out)?;
            match (ls.domain(on_left), rs.domain(on_right)) {
                (Ok(da), Ok(db)) => {
                    if da != db {
                        out.push(RelAlgError::DomainMismatch {
                            left: on_left.clone(),
                            right: on_right.clone(),
                        });
                    }
                }
                (l, r) => {
                    if let Err(e) = l {
                        out.push(e);
                    }
                    if let Err(e) = r {
                        out.push(e);
                    }
                }
            }
            record(ls.product(&rs), out)
        }
    }
}

fn record(r: Result<RelSchema>, out: &mut Vec<RelAlgError>) -> Option<RelSchema> {
    match r {
        Ok(s) => Some(s),
        Err(e) => {
            out.push(e);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    #[test]
    fn add_bar_expression_types_as_unary_bar() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let params = update_params(&sig);
        // f := π_frequents(self ⋈[self=Drinker] Dfrequents) ∪ arg1
        let e = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .project(["frequents"])
            .union(Expr::arg(1));
        let scheme = infer_schema(&e, &s.schema, &params).unwrap();
        assert_eq!(scheme.arity(), 1);
        assert_eq!(scheme.domain("frequents").unwrap(), s.bar);
    }

    #[test]
    fn rejects_cross_domain_joins() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let params = update_params(&sig);
        // self (Drinker) joined on equality with a Beer column: ill-typed.
        let e = Expr::self_rel().join_eq(Expr::prop(s.serves), "self", "serves");
        assert!(matches!(
            infer_schema(&e, &s.schema, &params),
            Err(RelAlgError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn unknown_param_is_reported() {
        let s = beer_schema();
        let e = Expr::arg(3);
        let err = infer_schema(&e, &s.schema, &ParamSchemas::new()).unwrap_err();
        assert_eq!(err, RelAlgError::UnknownParam("arg3".to_owned()));
    }

    #[test]
    fn collect_errors_finds_every_independent_error() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker]).unwrap();
        let params = update_params(&sig);
        // Two independent mistakes: an unknown parameter on the left of a
        // union, and a projection onto a missing attribute on the right.
        let e = Expr::arg(7).union(Expr::prop(s.serves).project(["no_such_attr"]));
        let errs = collect_errors(&e, &s.schema, &params);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs
            .iter()
            .any(|e| matches!(e, RelAlgError::UnknownParam(p) if p == "arg7")));

        // A well-typed expression collects nothing, matching infer_schema.
        let ok = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .project(["frequents"]);
        assert!(collect_errors(&ok, &s.schema, &params).is_empty());
        assert!(infer_schema(&ok, &s.schema, &params).is_ok());
    }

    #[test]
    fn rec_params_cover_full_receiver() {
        let s = beer_schema();
        let sig = Signature::new(vec![s.drinker, s.bar, s.beer]).unwrap();
        let params = rec_params(&sig);
        let rec = params.get("rec").unwrap();
        assert_eq!(rec.arity(), 3);
        assert_eq!(rec.domain("arg2").unwrap(), s.beer);
    }
}
