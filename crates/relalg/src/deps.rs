//! Functional and full inclusion dependencies (Appendix A), and the
//! dependency set induced by the relational representation of an
//! object-base schema (Section 5.1).

use receivers_objectbase::Schema;

use crate::database::base_schema;
use crate::expr::RelName;
use crate::schema::Attr;

/// A relation symbol a dependency can mention: a base relation of the
/// object-base representation, or a named parameter relation (`self`,
/// `arg1`, `self'`, … — the Theorem 5.6 reduction treats these as ordinary
/// relations constrained by dependencies).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomRel {
    /// A base relation.
    Base(RelName),
    /// A parameter relation.
    Param(String),
}

impl AtomRel {
    /// Render against a schema.
    pub fn display(&self, schema: &Schema) -> String {
        match self {
            AtomRel::Base(r) => r.display(schema),
            AtomRel::Param(p) => p.clone(),
        }
    }
}

/// A functional dependency `R : X → A` (Appendix A): any two `R`-tuples
/// agreeing on all attributes in `X` agree on `A`. With `X = ∅` this forces
/// `R` to hold at most one `A`-value — the singleton constraint imposed on
/// `self` and `arg_i` in the Theorem 5.6 reduction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionalDep {
    /// The constrained relation.
    pub rel: AtomRel,
    /// The determining attribute set `X` (possibly empty).
    pub lhs: Vec<Attr>,
    /// The determined attribute `A`.
    pub rhs: Attr,
}

/// A *full* inclusion dependency `R[A₁…Aₖ] ⊆ S[B₁…Bₖ]` where `B₁…Bₖ` is
/// exactly the scheme of `S` (Appendix A).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InclusionDep {
    /// The relation on the left-hand side.
    pub from: AtomRel,
    /// The projected attributes `A₁…Aₖ` of `from`.
    pub from_attrs: Vec<Attr>,
    /// The relation on the right-hand side (its full scheme is covered).
    pub to: AtomRel,
}

/// A dependency: fd or full ind.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dependency {
    /// Functional dependency.
    Fd(FunctionalDep),
    /// Full inclusion dependency.
    Ind(InclusionDep),
}

/// The inclusion dependencies of the relational representation: for each
/// schema edge `(C, a, B)`, `Ca[C] ⊆ C[C]` and `Ca[a] ⊆ B[B]`
/// (Section 5.1). Disjointness dependencies are enforced by typing and
/// need no explicit representation.
pub fn object_base_dependencies(schema: &Schema) -> Vec<Dependency> {
    let mut out = Vec::with_capacity(schema.property_count() * 2);
    for p in schema.properties() {
        let prop_schema = base_schema(schema, RelName::Prop(p));
        let cols: Vec<Attr> = prop_schema.attrs().cloned().collect();
        let prop = schema.property(p);
        out.push(Dependency::Ind(InclusionDep {
            from: AtomRel::Base(RelName::Prop(p)),
            from_attrs: vec![cols[0].clone()],
            to: AtomRel::Base(RelName::Class(prop.src)),
        }));
        out.push(Dependency::Ind(InclusionDep {
            from: AtomRel::Base(RelName::Prop(p)),
            from_attrs: vec![cols[1].clone()],
            to: AtomRel::Base(RelName::Class(prop.dst)),
        }));
    }
    out
}

/// The dependencies constraining a parameter relation that must hold at
/// most one tuple (requirement (i) of the Theorem 5.6 reduction): one fd
/// `∅ → A` per attribute of the parameter's scheme.
pub fn singleton_deps(param: &str, attrs: &[Attr]) -> Vec<Dependency> {
    attrs
        .iter()
        .map(|a| {
            Dependency::Fd(FunctionalDep {
                rel: AtomRel::Param(param.to_owned()),
                lhs: Vec::new(),
                rhs: a.clone(),
            })
        })
        .collect()
}

/// The functional dependency declaring a property *single-valued*
/// (footnote 1's extended model): the binary relation `Ca` satisfies
/// `C → a`, i.e. every object has at most one `a`-value. Supplying these
/// to the containment engine refines equivalence judgements to
/// single-valued instances only.
pub fn single_valued_dep(schema: &Schema, prop: receivers_objectbase::PropId) -> Dependency {
    let scheme = base_schema(schema, RelName::Prop(prop));
    let cols: Vec<Attr> = scheme.attrs().cloned().collect();
    Dependency::Fd(FunctionalDep {
        rel: AtomRel::Base(RelName::Prop(prop)),
        lhs: vec![cols[0].clone()],
        rhs: cols[1].clone(),
    })
}

/// The full inclusion dependency stating that a unary parameter relation's
/// values are objects of class relation `class_rel` — receivers must be
/// receivers *over the instance* (Definition 2.5).
pub fn param_membership_dep(param: &str, attr: &Attr, class_rel: RelName) -> Dependency {
    Dependency::Ind(InclusionDep {
        from: AtomRel::Param(param.to_owned()),
        from_attrs: vec![attr.clone()],
        to: AtomRel::Base(class_rel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::beer_schema;

    #[test]
    fn object_base_dependencies_cover_both_columns() {
        let s = beer_schema();
        let deps = object_base_dependencies(&s.schema);
        assert_eq!(deps.len(), 6); // 3 properties × 2 inds
        let serves_src = deps.iter().any(|d| {
            matches!(d, Dependency::Ind(ind)
                if ind.from == AtomRel::Base(RelName::Prop(s.serves))
                && ind.from_attrs == ["Bar"]
                && ind.to == AtomRel::Base(RelName::Class(s.bar)))
        });
        assert!(serves_src);
    }

    #[test]
    fn singleton_deps_have_empty_lhs() {
        let deps = singleton_deps("self", &["self".to_owned()]);
        assert_eq!(deps.len(), 1);
        match &deps[0] {
            Dependency::Fd(fd) => {
                assert!(fd.lhs.is_empty());
                assert_eq!(fd.rhs, "self");
            }
            Dependency::Ind(_) => panic!("expected fd"),
        }
    }
}
