//! Expression evaluation against a [`Database`] and parameter bindings.

use std::borrow::Cow;
use std::collections::BTreeMap;

use receivers_objectbase::{Receiver, ReceiverSet, Signature};

use crate::database::Database;
use crate::error::{RelAlgError, Result};
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::RelSchema;

/// Bindings for parameter relations.
///
/// For an update expression of type σ applied to receiver `t = [o₀,…,oₖ]`,
/// `self` is bound to the singleton `{o₀}` and `arg_i` to `{o_i}`
/// (Definition 5.4(2)); for the parallel semantics, `rec` is bound to the
/// whole receiver set (Definition 6.2(1)).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    params: BTreeMap<String, Relation>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a named parameter relation.
    pub fn bind(&mut self, name: impl Into<String>, rel: Relation) -> &mut Self {
        self.params.insert(name.into(), rel);
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.params.get(name)
    }

    /// The standard single-receiver bindings: `self ↦ {o₀}`,
    /// `arg_i ↦ {o_i}`.
    pub fn for_receiver(t: &Receiver) -> Self {
        let mut b = Self::new();
        b.bind("self", Relation::singleton("self", t.receiving_object()));
        for (i, &o) in t.arguments().iter().enumerate() {
            let name = format!("arg{}", i + 1);
            b.bind(name.clone(), Relation::singleton(name, o));
        }
        b
    }

    /// Like [`Bindings::for_receiver`] but with every parameter name primed
    /// (`self'`, `arg1'`, …) — used by the Theorem 5.6 reduction to hold a
    /// second receiver.
    pub fn for_receiver_primed(t: &Receiver) -> Self {
        let mut b = Self::new();
        b.bind("self'", Relation::singleton("self'", t.receiving_object()));
        for (i, &o) in t.arguments().iter().enumerate() {
            let name = format!("arg{}'", i + 1);
            b.bind(name.clone(), Relation::singleton(name, o));
        }
        b
    }

    /// The parallel-semantics binding: `rec` holds the entire receiver set
    /// as a relation over scheme `self arg1 … argk`.
    pub fn for_receiver_set(sig: &Signature, t: &ReceiverSet) -> Result<Self> {
        let mut cols = vec![("self".to_owned(), sig.receiving_class())];
        for (i, &c) in sig.argument_classes().iter().enumerate() {
            cols.push((format!("arg{}", i + 1), c));
        }
        let schema = RelSchema::new(cols)?;
        let rec = Relation::from_tuples(schema, t.iter().map(|r| r.objects().to_vec()))?;
        let mut b = Self::new();
        b.bind("rec", rec);
        Ok(b)
    }

    /// Merge two sets of bindings (right wins on clashes).
    pub fn merged(mut self, other: Bindings) -> Self {
        self.params.extend(other.params);
        self
    }
}

/// Evaluate `expr` on `db` under `bindings`.
///
/// Equality selections sitting above products, natural joins, or theta
/// joins are **pushed into the join** and executed as hash-join keys (or
/// as early per-side filters), avoiding materialization of Cartesian
/// products — the difference between milliseconds and seconds on the
/// `par(·)`-generated plans (bench `sql/update`). Non-equality selections
/// and all other operators evaluate structurally.
pub fn eval(expr: &Expr, db: &Database, bindings: &Bindings) -> Result<Relation> {
    eval_cow(expr, db, bindings).map(Cow::into_owned)
}

/// The borrowing evaluator behind [`eval`]: base relations and parameter
/// bindings come back as `Cow::Borrowed`, so operators probe them in place
/// and a full copy is made only when a leaf itself is the final result.
/// This is what makes evaluation against a maintained
/// [`DatabaseView`](crate::view::DatabaseView) `O(probe)` instead of
/// `O(relation)`: a singleton `self ⋈ Ca` no longer clones all of `Ca`
/// first.
fn eval_cow<'a>(
    expr: &Expr,
    db: &'a Database,
    bindings: &'a Bindings,
) -> Result<Cow<'a, Relation>> {
    match expr {
        Expr::Base(rel) => db.relation(*rel).map(Cow::Borrowed),
        Expr::Param(p) => bindings
            .get(p)
            .map(Cow::Borrowed)
            .ok_or_else(|| RelAlgError::UnknownParam(p.clone())),
        Expr::Union(l, r) => {
            let lrel = eval_cow(l, db, bindings)?;
            let rrel = eval_cow(r, db, bindings)?;
            Ok(Cow::Owned(lrel.union(&rrel)?))
        }
        Expr::Diff(l, r) => {
            let lrel = eval_cow(l, db, bindings)?;
            let rrel = eval_cow(r, db, bindings)?;
            Ok(Cow::Owned(lrel.difference(&rrel)?))
        }
        Expr::Product(_, _) | Expr::NatJoin(_, _) | Expr::ThetaJoin { .. } | Expr::SelectEq(..) => {
            eval_join_chain(expr, Vec::new(), db, bindings).map(Cow::Owned)
        }
        Expr::SelectNe(e, a, b) => Ok(Cow::Owned(eval_cow(e, db, bindings)?.select_ne(a, b)?)),
        Expr::Project(e, attrs) => Ok(Cow::Owned(eval_cow(e, db, bindings)?.project(attrs)?)),
        Expr::Rename(e, from, to) => Ok(Cow::Owned(eval_cow(e, db, bindings)?.rename(from, to)?)),
    }
}

/// Evaluate a chain of equality selections over a join, pushing each
/// selection to the side that can evaluate it (or into the join key when
/// it spans both sides).
fn eval_join_chain(
    expr: &Expr,
    mut eqs: Vec<(String, String)>,
    db: &Database,
    bindings: &Bindings,
) -> Result<Relation> {
    match expr {
        Expr::SelectEq(e, a, b) => {
            eqs.push((a.clone(), b.clone()));
            eval_join_chain(e, eqs, db, bindings)
        }
        Expr::Product(l, r) | Expr::NatJoin(l, r) => {
            let natural = matches!(expr, Expr::NatJoin(_, _));
            let mut lrel = eval_cow(l, db, bindings)?;
            let mut rrel = eval_cow(r, db, bindings)?;
            let mut cross: Vec<(String, String)> = Vec::new();
            // Selections whose attributes cannot be located on either
            // side (impossible for type-correct input, where the join's
            // output scheme is the union of the sides' schemes — kept as
            // a safe fallback) are applied after the join.
            let mut leftover: Vec<(String, String)> = Vec::new();
            for (a, b) in eqs {
                let (a_left, a_right) = (lrel.schema().contains(&a), rrel.schema().contains(&a));
                let (b_left, b_right) = (lrel.schema().contains(&b), rrel.schema().contains(&b));
                if a_left && b_left {
                    lrel = Cow::Owned(lrel.select_eq(&a, &b)?);
                } else if a_right && b_right {
                    rrel = Cow::Owned(rrel.select_eq(&a, &b)?);
                } else if a_left && b_right {
                    cross.push((a, b));
                } else if a_right && b_left {
                    cross.push((b, a));
                } else {
                    leftover.push((a, b));
                }
            }
            let joined = if natural {
                lrel.natural_join_on(&rrel, &cross)?
            } else {
                lrel.product_on(&rrel, &cross)?
            };
            apply_eqs(joined, &leftover)
        }
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq,
        } => {
            if *eq {
                eqs.push((on_left.clone(), on_right.clone()));
                let product = Expr::Product(left.clone(), right.clone());
                eval_join_chain(&product, eqs, db, bindings)
            } else {
                let lrel = eval_cow(left, db, bindings)?;
                let rrel = eval_cow(right, db, bindings)?;
                let joined = lrel.theta_join(&rrel, on_left, on_right, false)?;
                apply_eqs(joined, &eqs)
            }
        }
        other => {
            let rel = eval_cow(other, db, bindings)?.into_owned();
            apply_eqs(rel, &eqs)
        }
    }
}

fn apply_eqs(mut rel: Relation, eqs: &[(String, String)]) -> Result<Relation> {
    for (a, b) in eqs {
        rel = rel.select_eq(a, b)?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::Receiver;

    #[test]
    fn evaluates_add_bar_expression() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let db = Database::from_instance(&i);
        let t = Receiver::new(vec![o.d1, o.bar3]);
        let bindings = Bindings::for_receiver(&t);
        // π_frequents(self ⋈[self=Drinker] Dfrequents) ∪ arg1
        let e = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .project(["frequents"])
            .union(Expr::arg(1));
        let out = eval(&e, &db, &bindings).unwrap();
        let bars: Vec<_> = out.column("frequents").unwrap();
        assert_eq!(bars, vec![o.bar1, o.bar2, o.bar3]);
    }

    #[test]
    fn evaluates_favorite_bar_expression() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let db = Database::from_instance(&i);
        let t = Receiver::new(vec![o.d1, o.bar1]);
        let bindings = Bindings::for_receiver(&t);
        let e = Expr::arg(1);
        let out = eval(&e, &db, &bindings).unwrap();
        assert_eq!(out.column("arg1").unwrap(), vec![o.bar1]);
    }

    #[test]
    fn evaluates_delete_bar_expression() {
        // delete_bar (Example 5.11):
        //   f := π_f(self ⋈[self=D] Df ⋈[f≠arg1] arg1)
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let db = Database::from_instance(&i);
        let t = Receiver::new(vec![o.d1, o.bar1]);
        let bindings = Bindings::for_receiver(&t);
        let e = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .join_ne(Expr::arg(1), "frequents", "arg1")
            .project(["frequents"]);
        let out = eval(&e, &db, &bindings).unwrap();
        assert_eq!(out.column("frequents").unwrap(), vec![o.bar2]);
    }

    #[test]
    fn rec_binding_holds_whole_receiver_set() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let t = ReceiverSet::from_iter([
            Receiver::new(vec![o.d1, o.bar1]),
            Receiver::new(vec![o.d1, o.bar3]),
        ]);
        let bindings = Bindings::for_receiver_set(&sig, &t).unwrap();
        let db = Database::from_instance(&i);
        let out = eval(&Expr::rec(), &db, &bindings).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().arity(), 2);
    }

    /// The join planner: equality selections over products/joins are
    /// executed as hash joins; the result must equal the naive
    /// product-then-filter evaluation in every placement case.
    #[test]
    fn join_planner_matches_naive_semantics() {
        let s = beer_schema();
        let (i, _o) = figure2(&s);
        let db = Database::from_instance(&i);
        let b = Bindings::new();

        // Cross-side equality: σ[Drinker=D2](frequents × ρ(frequents)).
        let copy = Expr::prop(s.frequents)
            .rename("Drinker", "D2")
            .rename("frequents", "f2");
        let planned = Expr::prop(s.frequents)
            .product(copy.clone())
            .select_eq("Drinker", "D2");
        let planned_result = eval(&planned, &db, &b).unwrap();
        // Naive: evaluate the product and filter manually.
        let naive = eval(&Expr::prop(s.frequents).product(copy), &db, &b)
            .unwrap()
            .select_eq("Drinker", "D2")
            .unwrap();
        assert_eq!(planned_result, naive);
        assert_eq!(planned_result.len(), 4); // 2 edges × 2 (same drinker)

        // Intra-side equality pushed to one operand: σ[f=f3](… × Bar).
        let bar_side = Expr::class(s.bar).rename("Bar", "B3");
        let expr = Expr::prop(s.frequents)
            .rename("frequents", "f")
            .product(
                Expr::prop(s.frequents)
                    .rename("Drinker", "D2")
                    .rename("frequents", "f3"),
            )
            .product(bar_side)
            .select_eq("f", "f3");
        let planned_result = eval(&expr, &db, &b).unwrap();
        assert_eq!(planned_result.len(), 2 * 3); // matched pairs × 3 bars

        // Stacked selections over a natural join with a shared attribute.
        let left = Expr::prop(s.frequents).rename("frequents", "f");
        let right = Expr::prop(s.frequents).rename("frequents", "g");
        let expr = left.nat_join(right).select_eq("f", "g");
        let joined = eval(&expr, &db, &b).unwrap();
        assert_eq!(joined.len(), 2); // diagonal of the 2-edge join
    }

    #[test]
    fn missing_binding_errors() {
        let s = beer_schema();
        let (i, _) = figure2(&s);
        let db = Database::from_instance(&i);
        assert!(matches!(
            eval(&Expr::self_rel(), &db, &Bindings::new()),
            Err(RelAlgError::UnknownParam(_))
        ));
    }
}
