//! Errors for the relational algebra substrate.

use std::fmt;

/// Errors raised while type-checking or evaluating algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelAlgError {
    /// An attribute name occurs twice in one relation scheme.
    DuplicateAttr(String),
    /// An attribute was referenced that the scheme does not contain.
    UnknownAttr(String),
    /// A parameter relation was referenced but never declared/bound.
    UnknownParam(String),
    /// A base relation was referenced that the database does not contain.
    UnknownRelation(String),
    /// Union/difference operands with incompatible schemas.
    SchemaMismatch {
        /// Operator name for the message.
        op: &'static str,
        /// Rendered left scheme.
        left: String,
        /// Rendered right scheme.
        right: String,
    },
    /// Cartesian product of relations with overlapping attribute names.
    ProductAttrClash(String),
    /// Selection comparing attributes of different domains: in the typed
    /// (many-sorted) setting of the paper such comparisons are vacuous and
    /// almost certainly a bug, so they are rejected.
    DomainMismatch {
        /// Left attribute.
        left: String,
        /// Right attribute.
        right: String,
    },
    /// A tuple of the wrong arity or with a value of the wrong domain.
    IllTypedTuple(String),
    /// Renaming the reserved `self` attribute inside `par(·)`.
    RenamesSelf,
}

impl fmt::Display for RelAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateAttr(a) => write!(f, "duplicate attribute `{a}`"),
            Self::UnknownAttr(a) => write!(f, "unknown attribute `{a}`"),
            Self::UnknownParam(p) => write!(f, "unknown parameter relation `{p}`"),
            Self::UnknownRelation(r) => write!(f, "unknown base relation `{r}`"),
            Self::SchemaMismatch { op, left, right } => {
                write!(f, "{op}: incompatible schemas {left} vs {right}")
            }
            Self::ProductAttrClash(a) => {
                write!(f, "cartesian product operands share attribute `{a}`")
            }
            Self::DomainMismatch { left, right } => write!(
                f,
                "selection compares attributes `{left}` and `{right}` of different domains"
            ),
            Self::IllTypedTuple(msg) => write!(f, "ill-typed tuple: {msg}"),
            Self::RenamesSelf => {
                write!(f, "par(·) is undefined for expressions renaming `self`")
            }
        }
    }
}

impl std::error::Error for RelAlgError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelAlgError>;
