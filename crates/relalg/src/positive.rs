//! The positive algebra fragment (Definition 5.2): union, Cartesian
//! product, equality selection, projection, renaming, and non-equality
//! selection — but *not* difference.

use crate::expr::Expr;

/// Whether `expr` belongs to the positive algebra, i.e. contains no
/// difference operator. Positive expressions express monotone queries,
/// and positive update methods (Definition 5.10) have decidable
/// (key-)order independence (Theorem 5.12).
pub fn is_positive(expr: &Expr) -> bool {
    let mut positive = true;
    expr.visit(&mut |e| {
        if matches!(e, Expr::Diff(_, _)) {
            positive = false;
        }
    });
    positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::ClassId;

    #[test]
    fn detects_difference_anywhere() {
        let base = Expr::class(ClassId(0));
        assert!(is_positive(&base));
        assert!(is_positive(
            &base.clone().union(base.clone()).select_ne("a", "b")
        ));
        let with_diff = base
            .clone()
            .product(base.clone().diff(base.clone()))
            .probe();
        assert!(!is_positive(&with_diff));
    }
}
