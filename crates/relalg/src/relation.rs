//! Relations: sets of typed tuples, with the algebra operators implemented
//! directly as methods. The expression evaluator ([`crate::eval`]) lowers
//! the AST onto these methods.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use receivers_objectbase::{ClassId, Oid};

use crate::error::{RelAlgError, Result};
use crate::schema::{Attr, RelSchema};

/// A tuple: one [`Oid`] per attribute, in scheme order. The empty tuple is
/// the single inhabitant of 0-ary relation schemes.
pub type Tuple = Vec<Oid>;

/// A finite relation over a [`RelSchema`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    schema: RelSchema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation over `schema`.
    pub fn empty(schema: RelSchema) -> Self {
        Self {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// A unary singleton `{o}` — how the special relations `self` and
    /// `arg_i` are interpreted (Definition 5.4(2)).
    pub fn singleton(attr: impl Into<Attr>, o: Oid) -> Self {
        let schema = RelSchema::unary(attr, o.class);
        let mut tuples = BTreeSet::new();
        tuples.insert(vec![o]);
        Self { schema, tuples }
    }

    /// The 0-ary relation `{()}` ("true").
    pub fn nullary_true() -> Self {
        let mut tuples = BTreeSet::new();
        tuples.insert(Vec::new());
        Self {
            schema: RelSchema::nullary(),
            tuples,
        }
    }

    /// The 0-ary relation `{}` ("false").
    pub fn nullary_false() -> Self {
        Self::empty(RelSchema::nullary())
    }

    /// The scheme.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in canonical order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Insert a tuple after checking arity and domains.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.len() != self.schema.arity() {
            return Err(RelAlgError::IllTypedTuple(format!(
                "arity {} vs scheme arity {}",
                t.len(),
                self.schema.arity()
            )));
        }
        for (o, (a, d)) in t.iter().zip(self.schema.columns()) {
            if o.class != *d {
                return Err(RelAlgError::IllTypedTuple(format!(
                    "attribute `{a}` expects domain c{}, got value of class c{}",
                    d.0, o.class.0
                )));
            }
        }
        Ok(self.tuples.insert(t))
    }

    /// Remove a tuple. Returns `true` when it was present. `O(log n)` —
    /// the touched-tuple primitive incremental views are maintained with.
    pub fn remove(&mut self, t: &[Oid]) -> bool {
        self.tuples.remove(t)
    }

    /// Build a relation from tuples, validating each.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(schema: RelSchema, iter: I) -> Result<Self> {
        let mut r = Self::empty(schema);
        for t in iter {
            r.insert(t)?;
        }
        Ok(r)
    }

    fn check_union_compatible(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.schema.union_compatible(other.schema()) {
            Ok(())
        } else {
            Err(RelAlgError::SchemaMismatch {
                op,
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            })
        }
    }

    /// Union (positional compatibility; left scheme's names win).
    pub fn union(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "union")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        })
    }

    /// Difference.
    pub fn difference(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "difference")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// Intersection.
    pub fn intersection(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "intersection")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// Cartesian product (attribute names must be disjoint).
    pub fn product(&self, other: &Self) -> Result<Self> {
        let schema = self.schema.product(other.schema())?;
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            for t2 in &other.tuples {
                let mut t = Vec::with_capacity(t1.len() + t2.len());
                t.extend_from_slice(t1);
                t.extend_from_slice(t2);
                tuples.insert(t);
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Equality selection `σ_{A=B}`.
    pub fn select_eq(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t[i] == t[j])
                .cloned()
                .collect(),
        })
    }

    /// Non-equality selection `σ_{A≠B}` (the positive algebra's extra
    /// operator, Definition 5.2).
    pub fn select_ne(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t[i] != t[j])
                .cloned()
                .collect(),
        })
    }

    fn selection_positions(&self, a: &str, b: &str) -> Result<(usize, usize)> {
        let i = self.schema.position(a)?;
        let j = self.schema.position(b)?;
        if self.schema.columns()[i].1 != self.schema.columns()[j].1 {
            return Err(RelAlgError::DomainMismatch {
                left: a.to_owned(),
                right: b.to_owned(),
            });
        }
        Ok((i, j))
    }

    /// Projection `π_{A1,…,Ap}` (possibly 0-ary: `π_∅(E)` is the emptiness
    /// guard used by the Theorem 5.6 construction).
    pub fn project(&self, keep: &[Attr]) -> Result<Self> {
        let schema = self.schema.project(keep)?;
        let positions: Vec<usize> = keep
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let tuples = self
            .tuples
            .iter()
            .map(|t| positions.iter().map(|&i| t[i]).collect())
            .collect();
        Ok(Self { schema, tuples })
    }

    /// Renaming `ρ_{A→B}`.
    pub fn rename(&self, from: &str, to: &str) -> Result<Self> {
        Ok(Self {
            schema: self.schema.rename(from, to)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Natural join on all common attributes.
    pub fn natural_join(&self, other: &Self) -> Result<Self> {
        let common = self.schema.common_attrs(other.schema())?;
        let schema = self.schema.natural_join(other.schema())?;
        let left_pos: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let right_pos: Vec<usize> = common
            .iter()
            .map(|a| other.schema.position(a))
            .collect::<Result<_>>()?;
        let extra_pos: Vec<usize> = other
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| !common.contains(a))
            .map(|(i, _)| i)
            .collect();

        // Hash-join on the common-attribute key.
        let mut index: std::collections::BTreeMap<Vec<Oid>, Vec<&Tuple>> = Default::default();
        for t in &other.tuples {
            let key: Vec<Oid> = right_pos.iter().map(|&i| t[i]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            let key: Vec<Oid> = left_pos.iter().map(|&i| t1[i]).collect();
            if let Some(matches) = index.get(&key) {
                for t2 in matches {
                    let mut t = t1.clone();
                    t.extend(extra_pos.iter().map(|&i| t2[i]));
                    tuples.insert(t);
                }
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Theta join `⋈_{A θ B}`: Cartesian product followed by one equality
    /// or non-equality selection between a left and a right attribute.
    /// Equality theta joins are executed as hash joins.
    pub fn theta_join(&self, other: &Self, a: &str, b: &str, eq: bool) -> Result<Self> {
        if eq && self.schema.contains(a) && other.schema.contains(b) {
            return self.product_on(other, &[(a.to_owned(), b.to_owned())]);
        }
        let prod = self.product(other)?;
        if eq {
            prod.select_eq(a, b)
        } else {
            prod.select_ne(a, b)
        }
    }

    /// Hash equi-join keeping **all** columns of both sides: equivalent to
    /// `σ_{a₁=b₁ ∧ …}(self × other)` where each `aᵢ` addresses this
    /// relation and each `bᵢ` the other, but evaluated with a hash index
    /// instead of materializing the product. The evaluator's join planner
    /// lowers chains of equality selections over products onto this.
    pub fn product_on(&self, other: &Self, pairs: &[(Attr, Attr)]) -> Result<Self> {
        let schema = self.schema.product(other.schema())?;
        let mut left_pos = Vec::with_capacity(pairs.len());
        let mut right_pos = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let i = self.schema.position(a)?;
            let j = other.schema.position(b)?;
            if self.schema.columns()[i].1 != other.schema.columns()[j].1 {
                return Err(RelAlgError::DomainMismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            left_pos.push(i);
            right_pos.push(j);
        }
        // When the join key is exactly the leading-column prefix of
        // `other`'s scheme, `other`'s canonical tuple order doubles as an
        // index: all matches for a key form one contiguous range. Probing
        // per left tuple costs `O(|L|·(log |R| + matches))` and skips the
        // `O(|R|)` hash-index build — the dominant case when a method body
        // `self ⋈ Ca` is probed with a singleton receiver against a large
        // property relation.
        let leading_prefix =
            !right_pos.is_empty() && right_pos.iter().enumerate().all(|(k, &j)| j == k);
        if leading_prefix && self.tuples.len() < other.tuples.len() {
            let mut tuples = BTreeSet::new();
            for t1 in &self.tuples {
                let key: Vec<Oid> = left_pos.iter().map(|&i| t1[i]).collect();
                for t2 in other.prefix_range(key) {
                    let mut t = Vec::with_capacity(t1.len() + t2.len());
                    t.extend_from_slice(t1);
                    t.extend_from_slice(t2);
                    tuples.insert(t);
                }
            }
            return Ok(Self { schema, tuples });
        }
        let mut index: BTreeMap<Vec<Oid>, Vec<&Tuple>> = BTreeMap::new();
        for t in &other.tuples {
            let key: Vec<Oid> = right_pos.iter().map(|&j| t[j]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            let key: Vec<Oid> = left_pos.iter().map(|&i| t1[i]).collect();
            if let Some(matches) = index.get(&key) {
                for t2 in matches {
                    let mut t = Vec::with_capacity(t1.len() + t2.len());
                    t.extend_from_slice(t1);
                    t.extend_from_slice(t2);
                    tuples.insert(t);
                }
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Tuples whose leading columns equal `key`, in canonical order.
    /// `O(log n + matches)` over the sorted tuple set.
    fn prefix_range(&self, key: Vec<Oid>) -> impl Iterator<Item = &Tuple> + '_ {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        let upper = match prefix_successor(key.clone()) {
            Some(s) => Excluded(s),
            None => Unbounded,
        };
        self.tuples.range((Included(key), upper))
    }

    /// Natural join with additional equality constraints between left and
    /// right attributes, all evaluated as one hash join. The extra pairs'
    /// columns are both kept (unlike the merged common attributes).
    pub fn natural_join_on(&self, other: &Self, extra: &[(Attr, Attr)]) -> Result<Self> {
        let common = self.schema.common_attrs(other.schema())?;
        let schema = self.schema.natural_join(other.schema())?;
        let mut left_pos: Vec<usize> = common
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let mut right_pos: Vec<usize> = common
            .iter()
            .map(|a| other.schema.position(a))
            .collect::<Result<_>>()?;
        for (a, b) in extra {
            let i = self.schema.position(a)?;
            let j = other.schema.position(b)?;
            if self.schema.columns()[i].1 != other.schema.columns()[j].1 {
                return Err(RelAlgError::DomainMismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            left_pos.push(i);
            right_pos.push(j);
        }
        let keep_pos: Vec<usize> = other
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| !common.contains(a))
            .map(|(i, _)| i)
            .collect();
        let mut index: BTreeMap<Vec<Oid>, Vec<&Tuple>> = BTreeMap::new();
        for t in &other.tuples {
            let key: Vec<Oid> = right_pos.iter().map(|&j| t[j]).collect();
            index.entry(key).or_default().push(t);
        }
        let mut tuples = BTreeSet::new();
        for t1 in &self.tuples {
            let key: Vec<Oid> = left_pos.iter().map(|&i| t1[i]).collect();
            if let Some(matches) = index.get(&key) {
                for t2 in matches {
                    let mut t = t1.clone();
                    t.extend(keep_pos.iter().map(|&i| t2[i]));
                    tuples.insert(t);
                }
            }
        }
        Ok(Self { schema, tuples })
    }

    /// Collect the values in column `attr`.
    pub fn column(&self, attr: &str) -> Result<Vec<Oid>> {
        let i = self.schema.position(attr)?;
        Ok(self.tuples.iter().map(|t| t[i]).collect())
    }
}

/// The [`Oid`] immediately after `o` in the global `(class, index)` order,
/// if any.
fn oid_successor(o: Oid) -> Option<Oid> {
    if o.index < u32::MAX {
        Some(Oid::new(o.class, o.index + 1))
    } else if o.class.0 < u32::MAX {
        Some(Oid::new(ClassId(o.class.0 + 1), 0))
    } else {
        None
    }
}

/// The smallest tuple strictly greater than every tuple extending `key`
/// (lexicographic order), or `None` when no such tuple exists. Positions
/// that cannot be incremented carry into the preceding one, shortening the
/// key — `[a, MAX]` becomes `[a+1]`, which still bounds every extension of
/// `[a, MAX]` from above.
fn prefix_successor(mut key: Vec<Oid>) -> Option<Vec<Oid>> {
    while let Some(last) = key.pop() {
        if let Some(next) = oid_successor(last) {
            key.push(next);
            return Some(key);
        }
    }
    None
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {{", self.schema)?;
        for t in &self.tuples {
            write!(f, "  (")?;
            for (i, o) in t.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
            writeln!(f, ")")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::ClassId;

    const A: ClassId = ClassId(0);
    const B: ClassId = ClassId(1);

    fn oa(i: u32) -> Oid {
        Oid::new(A, i)
    }
    fn ob(i: u32) -> Oid {
        Oid::new(B, i)
    }

    fn rel_ab(pairs: &[(u32, u32)]) -> Relation {
        let schema = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        Relation::from_tuples(schema, pairs.iter().map(|&(a, b)| vec![oa(a), ob(b)])).unwrap()
    }

    #[test]
    fn insert_validates_types() {
        let mut r = Relation::empty(RelSchema::unary("x", A));
        assert!(r.insert(vec![ob(0)]).is_err());
        assert!(r.insert(vec![oa(0), oa(1)]).is_err());
        assert!(r.insert(vec![oa(0)]).unwrap());
        assert!(!r.insert(vec![oa(0)]).unwrap());
    }

    #[test]
    fn union_is_positional() {
        let r = Relation::singleton("f", ob(1));
        let s = Relation::singleton("arg1", ob(2));
        let u = r.union(&s).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.schema().attrs().next().unwrap(), "f");
        let t = Relation::singleton("z", oa(0));
        assert!(r.union(&t).is_err());
    }

    #[test]
    fn product_and_projection() {
        let r = Relation::singleton("x", oa(0));
        let s = rel_ab(&[(1, 1), (1, 2)]).rename("x", "u").unwrap();
        let p = r.product(&s).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().arity(), 3);
        let proj = p.project(&["y".into()]).unwrap();
        assert_eq!(proj.len(), 2);
        let nothing = p.project(&[]).unwrap();
        assert_eq!(nothing, Relation::nullary_true());
    }

    #[test]
    fn nullary_guard_semantics() {
        let empty = rel_ab(&[]);
        let full = rel_ab(&[(0, 0)]);
        assert_eq!(empty.project(&[]).unwrap(), Relation::nullary_false());
        assert_eq!(full.project(&[]).unwrap(), Relation::nullary_true());
        // Guard: E × π∅(C) is E when C non-empty, ∅ otherwise.
        let guarded = full.product(&empty.project(&[]).unwrap()).unwrap();
        assert!(guarded.is_empty());
        let passed = full.product(&full.project(&[]).unwrap()).unwrap();
        assert_eq!(passed.len(), 1);
    }

    #[test]
    fn selections() {
        let schema = RelSchema::new(vec![("x".into(), A), ("z".into(), A)]).unwrap();
        let r = Relation::from_tuples(
            schema,
            [vec![oa(0), oa(0)], vec![oa(0), oa(1)], vec![oa(2), oa(2)]],
        )
        .unwrap();
        assert_eq!(r.select_eq("x", "z").unwrap().len(), 2);
        assert_eq!(r.select_ne("x", "z").unwrap().len(), 1);
        // Cross-domain comparison rejected.
        let rab = rel_ab(&[(0, 0)]);
        assert!(rab.select_eq("x", "y").is_err());
    }

    #[test]
    fn natural_join_matches_on_common_attrs() {
        let s1 = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        let r = Relation::from_tuples(s1, [vec![oa(0), ob(0)], vec![oa(1), ob(1)]]).unwrap();
        let s2 = RelSchema::new(vec![("x".into(), A), ("z".into(), B)]).unwrap();
        let s = Relation::from_tuples(s2, [vec![oa(0), ob(5)]]).unwrap();
        let j = r.natural_join(&s).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().attrs().collect::<Vec<_>>(), ["x", "y", "z"]);
        assert_eq!(j.tuples().next().unwrap(), &vec![oa(0), ob(0), ob(5)]);
    }

    #[test]
    fn natural_join_with_no_common_attrs_is_product() {
        let r = Relation::singleton("x", oa(0));
        let s = Relation::singleton("y", ob(0));
        assert_eq!(r.natural_join(&s).unwrap(), r.product(&s).unwrap());
    }

    #[test]
    fn remove_is_set_removal() {
        let mut r = rel_ab(&[(0, 0), (1, 1)]);
        assert!(r.remove(&[oa(0), ob(0)]));
        assert!(!r.remove(&[oa(0), ob(0)]));
        assert_eq!(r, rel_ab(&[(1, 1)]));
    }

    #[test]
    fn prefix_probe_matches_hash_join() {
        // Small left, large right with the join key in leading position:
        // takes the range-probe path. Compare against the product+select
        // definition it must be equivalent to.
        let left = Relation::from_tuples(
            RelSchema::unary("u", A),
            [vec![oa(1)], vec![oa(3)], vec![oa(u32::MAX)]],
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 5, i)).collect();
        let right = rel_ab(&pairs);
        let fast = left
            .product_on(&right, &[("u".into(), "x".into())])
            .unwrap();
        let slow = left.product(&right).unwrap().select_eq("u", "x").unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 16, "8 matches per present key");
    }

    #[test]
    fn prefix_successor_handles_carries() {
        let max = Oid::new(ClassId(u32::MAX), u32::MAX);
        assert_eq!(prefix_successor(vec![oa(0)]), Some(vec![oa(1)]));
        assert_eq!(
            prefix_successor(vec![oa(0), ob(u32::MAX)]),
            Some(vec![oa(0), Oid::new(ClassId(2), 0)]),
            "index overflow bumps to the next class in the global order"
        );
        assert_eq!(prefix_successor(vec![max]), None);
        assert_eq!(prefix_successor(vec![oa(0), max]), Some(vec![oa(1)]));
    }

    #[test]
    fn theta_join_eq_and_ne() {
        let r = Relation::singleton("x", oa(0));
        let s =
            Relation::from_tuples(RelSchema::unary("z", A), [vec![oa(0)], vec![oa(1)]]).unwrap();
        assert_eq!(r.theta_join(&s, "x", "z", true).unwrap().len(), 1);
        assert_eq!(r.theta_join(&s, "x", "z", false).unwrap().len(), 1);
    }
}
