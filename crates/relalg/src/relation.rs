//! Relations: sets of typed tuples, with the algebra operators implemented
//! directly as methods. The expression evaluator ([`crate::eval`]) lowers
//! the AST onto these methods.
//!
//! Tuples live in a flat, canonically-sorted row arena ([`TupleSet`]):
//! one `Vec<Oid>` chunked by arity, tuples exposed as `&[Oid]` views. The
//! operators are batch passes over the sorted runs — linear merges for
//! union/difference/intersection, order-preserving scans for selection
//! and leading-prefix projection, and sorted probes for the joins — so
//! most operator outputs are born in canonical order and adopt their row
//! buffer without a sort.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use receivers_objectbase::Oid;

use crate::error::{RelAlgError, Result};
use crate::schema::{Attr, RelSchema};
use crate::tuples::{TupleSet, Tuples};

/// A finite relation over a [`RelSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: RelSchema,
    tuples: TupleSet,
}

/// Matches the `Ord` the legacy `(RelSchema, BTreeSet<Vec<Oid>>)` derive
/// produced: scheme first, then the lexicographic tuple-sequence order.
/// `BTreeMap<_, Relation>` iteration order and the lowest-index-wins
/// determinism in `receivers-rt` depend on this staying fixed.
impl Ord for Relation {
    fn cmp(&self, other: &Self) -> Ordering {
        self.schema
            .cmp(&other.schema)
            .then_with(|| self.tuples.cmp(&other.tuples))
    }
}

impl PartialOrd for Relation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Matches the legacy derived `Hash` (scheme, then tuple set) so
/// `Database: Hash` observes identical hashes across the representation
/// change — pinned by the `relation_ops` differential suite.
impl Hash for Relation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.schema.hash(state);
        self.tuples.hash(state);
    }
}

impl Relation {
    /// The empty relation over `schema`.
    pub fn empty(schema: RelSchema) -> Self {
        let tuples = TupleSet::new(schema.arity());
        Self { schema, tuples }
    }

    /// A unary singleton `{o}` — how the special relations `self` and
    /// `arg_i` are interpreted (Definition 5.4(2)).
    pub fn singleton(attr: impl Into<Attr>, o: Oid) -> Self {
        Self {
            schema: RelSchema::unary(attr, o.class),
            tuples: TupleSet::from_rows(1, vec![o]),
        }
    }

    /// The 0-ary relation `{()}` ("true").
    pub fn nullary_true() -> Self {
        let mut tuples = TupleSet::new(0);
        tuples.insert(&[]);
        Self {
            schema: RelSchema::nullary(),
            tuples,
        }
    }

    /// The 0-ary relation `{}` ("false").
    pub fn nullary_false() -> Self {
        Self::empty(RelSchema::nullary())
    }

    /// The scheme.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The underlying flat tuple set.
    pub fn tuple_set(&self) -> &TupleSet {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in canonical order, as `&[Oid]` views into the
    /// flat row buffer.
    pub fn tuples(&self) -> Tuples<'_> {
        self.tuples.iter()
    }

    /// Membership test.
    pub fn contains(&self, t: &[Oid]) -> bool {
        self.tuples.contains(t)
    }

    fn check_tuple(schema: &RelSchema, t: &[Oid]) -> Result<()> {
        if t.len() != schema.arity() {
            return Err(RelAlgError::IllTypedTuple(format!(
                "arity {} vs scheme arity {}",
                t.len(),
                schema.arity()
            )));
        }
        for (o, (a, d)) in t.iter().zip(schema.columns()) {
            if o.class != *d {
                return Err(RelAlgError::IllTypedTuple(format!(
                    "attribute `{a}` expects domain c{}, got value of class c{}",
                    d.0, o.class.0
                )));
            }
        }
        Ok(())
    }

    /// Insert a tuple after checking arity and domains.
    pub fn insert(&mut self, t: &[Oid]) -> Result<bool> {
        Self::check_tuple(&self.schema, t)?;
        Ok(self.tuples.insert(t))
    }

    /// Remove a tuple. Returns `true` when it was present. The
    /// touched-tuple primitive incremental views are maintained with.
    pub fn remove(&mut self, t: &[Oid]) -> bool {
        self.tuples.remove(t)
    }

    /// Apply a netted batch of point edits: insert every row of `adds`
    /// and remove every row of `dels` (flat buffers of `arity`-chunked
    /// rows, each strictly sorted, disjoint from one another, with no row
    /// of `adds` present and every row of `dels` present). Small batches
    /// pay one nearest-side memmove per edit; past that, one linear
    /// difference+union merge replaces the whole buffer — `O(len + k)`
    /// for the entire batch, the consolidation primitive behind
    /// [`DatabaseView`](crate::view::DatabaseView)'s per-transaction
    /// flush.
    pub fn apply_row_edits(&mut self, adds: &[Oid], dels: &[Oid]) -> Result<()> {
        let arity = self.schema.arity();
        debug_assert!(arity > 0, "batched edits target class/property relations");
        for t in adds.chunks(arity) {
            Self::check_tuple(&self.schema, t)?;
        }
        // Below the threshold, k nearest-side moves beat two full-buffer
        // merge passes (a point edit moves ~len/4 rows, a merge copies
        // ~2·len).
        if (adds.len() + dels.len()) / arity < 8 {
            for t in dels.chunks(arity) {
                let removed = self.tuples.remove(t);
                debug_assert!(removed, "netted delete of an absent tuple");
            }
            for t in adds.chunks(arity) {
                let inserted = self.tuples.insert(t);
                debug_assert!(inserted, "netted insert of a present tuple");
            }
            return Ok(());
        }
        let adds = TupleSet::from_sorted_rows(arity, adds.to_vec());
        let dels = TupleSet::from_sorted_rows(arity, dels.to_vec());
        self.tuples = self.tuples.difference(&dels).union(&adds);
        Ok(())
    }

    /// Build a relation from tuples, validating each. The rows are
    /// collected into one buffer and sorted once — `O(n log n)` instead of
    /// the `O(n log n)` *node-wise* inserts of the legacy `BTreeSet`.
    pub fn from_tuples<I>(schema: RelSchema, iter: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: AsRef<[Oid]>,
    {
        let arity = schema.arity();
        let mut rows = Vec::new();
        let mut count = 0usize;
        for t in iter {
            let t = t.as_ref();
            Self::check_tuple(&schema, t)?;
            rows.extend_from_slice(t);
            count += 1;
        }
        let tuples = if arity == 0 {
            let mut t = TupleSet::new(0);
            if count > 0 {
                t.insert(&[]);
            }
            t
        } else {
            TupleSet::from_rows(arity, rows)
        };
        Ok(Self { schema, tuples })
    }

    /// Adopt an already-built [`TupleSet`], validating arity and domains.
    pub fn from_tuple_set(schema: RelSchema, tuples: TupleSet) -> Result<Self> {
        if tuples.arity() != schema.arity() {
            return Err(RelAlgError::IllTypedTuple(format!(
                "arity {} vs scheme arity {}",
                tuples.arity(),
                schema.arity()
            )));
        }
        for t in tuples.iter() {
            Self::check_tuple(&schema, t)?;
        }
        Ok(Self { schema, tuples })
    }

    fn check_union_compatible(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.schema.union_compatible(other.schema()) {
            Ok(())
        } else {
            Err(RelAlgError::SchemaMismatch {
                op,
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            })
        }
    }

    /// Union (positional compatibility; left scheme's names win).
    /// Linear sort-merge over the two canonical runs.
    pub fn union(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "union")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.union(&other.tuples),
        })
    }

    /// Difference. Linear sort-merge.
    pub fn difference(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "difference")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.difference(&other.tuples),
        })
    }

    /// Intersection. Linear sort-merge.
    pub fn intersection(&self, other: &Self) -> Result<Self> {
        self.check_union_compatible(other, "intersection")?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.tuples.intersection(&other.tuples),
        })
    }

    /// Cartesian product (attribute names must be disjoint). The nested
    /// scan emits rows already in canonical order — same-width prefixes
    /// sort by the strictly increasing outer tuple first — so the output
    /// buffer is adopted without sorting.
    pub fn product(&self, other: &Self) -> Result<Self> {
        let schema = self.schema.product(other.schema())?;
        let arity = schema.arity();
        if arity == 0 {
            return Ok(Self {
                schema,
                tuples: nullary_set(!self.is_empty() && !other.is_empty()),
            });
        }
        let mut rows = Vec::with_capacity(self.len() * other.len() * arity);
        for t1 in self.tuples.iter() {
            for t2 in other.tuples.iter() {
                rows.extend_from_slice(t1);
                rows.extend_from_slice(t2);
            }
        }
        Ok(Self {
            schema,
            tuples: TupleSet::from_sorted_rows(arity, rows),
        })
    }

    /// Equality selection `σ_{A=B}`: one order-preserving filter pass.
    pub fn select_eq(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.filter_rows(|t| t[i] == t[j]),
        })
    }

    /// Non-equality selection `σ_{A≠B}` (the positive algebra's extra
    /// operator, Definition 5.2).
    pub fn select_ne(&self, a: &str, b: &str) -> Result<Self> {
        let (i, j) = self.selection_positions(a, b)?;
        Ok(Self {
            schema: self.schema.clone(),
            tuples: self.filter_rows(|t| t[i] != t[j]),
        })
    }

    fn filter_rows(&self, mut pred: impl FnMut(&[Oid]) -> bool) -> TupleSet {
        let arity = self.schema.arity();
        debug_assert!(arity > 0, "selections address named attributes");
        let mut rows = Vec::new();
        for t in self.tuples.iter() {
            if pred(t) {
                rows.extend_from_slice(t);
            }
        }
        TupleSet::from_sorted_rows(arity, rows)
    }

    fn selection_positions(&self, a: &str, b: &str) -> Result<(usize, usize)> {
        let i = self.schema.position(a)?;
        let j = self.schema.position(b)?;
        if self.schema.columns()[i].1 != self.schema.columns()[j].1 {
            return Err(RelAlgError::DomainMismatch {
                left: a.to_owned(),
                right: b.to_owned(),
            });
        }
        Ok((i, j))
    }

    /// Projection `π_{A1,…,Ap}` (possibly 0-ary: `π_∅(E)` is the emptiness
    /// guard used by the Theorem 5.6 construction). Projecting onto a
    /// leading-column prefix preserves canonical order, so that case is a
    /// single scan deduplicating adjacent rows; arbitrary column orders
    /// gather into a buffer that is sorted and deduplicated once.
    pub fn project(&self, keep: &[Attr]) -> Result<Self> {
        let schema = self.schema.project(keep)?;
        let positions: Vec<usize> = keep
            .iter()
            .map(|a| self.schema.position(a))
            .collect::<Result<_>>()?;
        let k = positions.len();
        if k == 0 {
            return Ok(Self {
                schema,
                tuples: nullary_set(!self.is_empty()),
            });
        }
        if positions.iter().enumerate().all(|(idx, &p)| idx == p) {
            let mut rows: Vec<Oid> = Vec::with_capacity(self.len() * k);
            for t in self.tuples.iter() {
                let p = &t[..k];
                if rows.is_empty() || &rows[rows.len() - k..] != p {
                    rows.extend_from_slice(p);
                }
            }
            return Ok(Self {
                schema,
                tuples: TupleSet::from_sorted_rows(k, rows),
            });
        }
        let mut rows = Vec::with_capacity(self.len() * k);
        for t in self.tuples.iter() {
            rows.extend(positions.iter().map(|&p| t[p]));
        }
        Ok(Self {
            schema,
            tuples: TupleSet::from_rows(k, rows),
        })
    }

    /// Renaming `ρ_{A→B}`.
    pub fn rename(&self, from: &str, to: &str) -> Result<Self> {
        Ok(Self {
            schema: self.schema.rename(from, to)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Natural join on all common attributes.
    pub fn natural_join(&self, other: &Self) -> Result<Self> {
        self.natural_join_on(other, &[])
    }

    /// Theta join `⋈_{A θ B}`: Cartesian product followed by one equality
    /// or non-equality selection between a left and a right attribute.
    /// Equality theta joins are executed as sorted probes.
    pub fn theta_join(&self, other: &Self, a: &str, b: &str, eq: bool) -> Result<Self> {
        if eq && self.schema.contains(a) && other.schema.contains(b) {
            return self.product_on(other, &[(a.to_owned(), b.to_owned())]);
        }
        let prod = self.product(other)?;
        if eq {
            prod.select_eq(a, b)
        } else {
            prod.select_ne(a, b)
        }
    }

    /// Equi-join keeping **all** columns of both sides: equivalent to
    /// `σ_{a₁=b₁ ∧ …}(self × other)` where each `aᵢ` addresses this
    /// relation and each `bᵢ` the other, but evaluated as a sorted probe
    /// instead of materializing the product. The evaluator's join planner
    /// lowers chains of equality selections over products onto this.
    ///
    /// When the join key is exactly the leading-column prefix of `other`'s
    /// scheme, `other`'s canonical row order doubles as the index: all
    /// matches for a key form one contiguous run found by binary search,
    /// with no build cost at all. For arbitrary key positions a `u32`
    /// permutation of `other`'s rows is sorted by the key columns once and
    /// probed the same way — both paths emit rows in canonical order, so
    /// the output buffer is adopted without a final sort.
    pub fn product_on(&self, other: &Self, pairs: &[(Attr, Attr)]) -> Result<Self> {
        if pairs.is_empty() {
            return self.product(other);
        }
        let schema = self.schema.product(other.schema())?;
        let (left_pos, right_pos) = self.join_positions(other, pairs)?;
        let arity = schema.arity();
        let mut rows = Vec::new();
        let mut key = Vec::with_capacity(left_pos.len());
        let leading_prefix = right_pos.iter().enumerate().all(|(k, &j)| j == k);
        if leading_prefix {
            for t1 in self.tuples.iter() {
                key.clear();
                key.extend(left_pos.iter().map(|&i| t1[i]));
                for t2 in other.tuples.range_iter(other.tuples.prefix_bounds(&key)) {
                    rows.extend_from_slice(t1);
                    rows.extend_from_slice(t2);
                }
            }
        } else {
            let perm = key_perm(&other.tuples, &right_pos);
            for t1 in self.tuples.iter() {
                key.clear();
                key.extend(left_pos.iter().map(|&i| t1[i]));
                for &p in &perm[perm_bounds(&other.tuples, &perm, &right_pos, &key)] {
                    rows.extend_from_slice(t1);
                    rows.extend_from_slice(other.tuples.get(p as usize));
                }
            }
        }
        Ok(Self {
            schema,
            tuples: TupleSet::from_sorted_rows(arity, rows),
        })
    }

    /// Natural join with additional equality constraints between left and
    /// right attributes, all evaluated as one sorted probe. The extra
    /// pairs' columns are both kept (unlike the merged common attributes).
    pub fn natural_join_on(&self, other: &Self, extra: &[(Attr, Attr)]) -> Result<Self> {
        let common = self.schema.common_attrs(other.schema())?;
        let schema = self.schema.natural_join(other.schema())?;
        let common_pairs: Vec<(Attr, Attr)> =
            common.iter().map(|a| (a.clone(), a.clone())).collect();
        let all_pairs: Vec<(Attr, Attr)> =
            common_pairs.iter().chain(extra.iter()).cloned().collect();
        let (left_pos, right_pos) = self.join_positions(other, &all_pairs)?;
        let keep_pos: Vec<usize> = other
            .schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| !common.contains(a))
            .map(|(i, _)| i)
            .collect();
        let arity = self.schema.arity() + keep_pos.len();
        if arity == 0 {
            // Both sides 0-ary (so the key is empty): {()} iff both hold.
            return Ok(Self {
                schema,
                tuples: nullary_set(!self.is_empty() && !other.is_empty()),
            });
        }
        let perm = key_perm(&other.tuples, &right_pos);
        let mut rows = Vec::new();
        let mut key = Vec::with_capacity(left_pos.len());
        for t1 in self.tuples.iter() {
            key.clear();
            key.extend(left_pos.iter().map(|&i| t1[i]));
            for &p in &perm[perm_bounds(&other.tuples, &perm, &right_pos, &key)] {
                let t2 = other.tuples.get(p as usize);
                rows.extend_from_slice(t1);
                rows.extend(keep_pos.iter().map(|&i| t2[i]));
            }
        }
        // Dropping the merged common columns can break canonical order and
        // introduce duplicates; `from_rows` detects the already-sorted
        // common case and sorts/dedups otherwise.
        Ok(Self {
            schema,
            tuples: TupleSet::from_rows(arity, rows),
        })
    }

    fn join_positions(
        &self,
        other: &Self,
        pairs: &[(Attr, Attr)],
    ) -> Result<(Vec<usize>, Vec<usize>)> {
        let mut left_pos = Vec::with_capacity(pairs.len());
        let mut right_pos = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            let i = self.schema.position(a)?;
            let j = other.schema.position(b)?;
            if self.schema.columns()[i].1 != other.schema.columns()[j].1 {
                return Err(RelAlgError::DomainMismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            left_pos.push(i);
            right_pos.push(j);
        }
        Ok((left_pos, right_pos))
    }

    /// Collect the values in column `attr`.
    pub fn column(&self, attr: &str) -> Result<Vec<Oid>> {
        let i = self.schema.position(attr)?;
        Ok(self.tuples.iter().map(|t| t[i]).collect())
    }
}

/// The 0-ary tuple set: `{()}` when `present`, `{}` otherwise.
fn nullary_set(present: bool) -> TupleSet {
    let mut t = TupleSet::new(0);
    if present {
        t.insert(&[]);
    }
    t
}

/// A permutation of `ts`'s tuple indices sorted by the projection onto
/// `key_pos`, tie-broken by the full row: matches for one key value form a
/// contiguous, full-row-ordered run, so probing it emits join output in
/// canonical order.
fn key_perm(ts: &TupleSet, key_pos: &[usize]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..ts.len() as u32).collect();
    perm.sort_unstable_by(|&a, &b| {
        let (ta, tb) = (ts.get(a as usize), ts.get(b as usize));
        key_pos
            .iter()
            .map(|&p| ta[p].cmp(&tb[p]))
            .find(|c| c.is_ne())
            .unwrap_or_else(|| ta.cmp(tb))
    });
    perm
}

/// The run of `perm` whose tuples project onto exactly `key`.
fn perm_bounds(ts: &TupleSet, perm: &[u32], key_pos: &[usize], key: &[Oid]) -> Range<usize> {
    let proj_cmp = |idx: u32| -> Ordering {
        let t = ts.get(idx as usize);
        key_pos
            .iter()
            .zip(key)
            .map(|(&p, k)| t[p].cmp(k))
            .find(|c| c.is_ne())
            .unwrap_or(Ordering::Equal)
    };
    let start = perm.partition_point(|&i| proj_cmp(i) == Ordering::Less);
    let end = start + perm[start..].partition_point(|&i| proj_cmp(i) == Ordering::Equal);
    start..end
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {{", self.schema)?;
        for t in self.tuples.iter() {
            write!(f, "  (")?;
            for (i, o) in t.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
            writeln!(f, ")")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::ClassId;

    const A: ClassId = ClassId(0);
    const B: ClassId = ClassId(1);

    fn oa(i: u32) -> Oid {
        Oid::new(A, i)
    }
    fn ob(i: u32) -> Oid {
        Oid::new(B, i)
    }

    fn rel_ab(pairs: &[(u32, u32)]) -> Relation {
        let schema = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        Relation::from_tuples(schema, pairs.iter().map(|&(a, b)| vec![oa(a), ob(b)])).unwrap()
    }

    #[test]
    fn insert_validates_types() {
        let mut r = Relation::empty(RelSchema::unary("x", A));
        assert!(r.insert(&[ob(0)]).is_err());
        assert!(r.insert(&[oa(0), oa(1)]).is_err());
        assert!(r.insert(&[oa(0)]).unwrap());
        assert!(!r.insert(&[oa(0)]).unwrap());
    }

    #[test]
    fn union_is_positional() {
        let r = Relation::singleton("f", ob(1));
        let s = Relation::singleton("arg1", ob(2));
        let u = r.union(&s).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.schema().attrs().next().unwrap(), "f");
        let t = Relation::singleton("z", oa(0));
        assert!(r.union(&t).is_err());
    }

    #[test]
    fn product_and_projection() {
        let r = Relation::singleton("x", oa(0));
        let s = rel_ab(&[(1, 1), (1, 2)]).rename("x", "u").unwrap();
        let p = r.product(&s).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().arity(), 3);
        let proj = p.project(&["y".into()]).unwrap();
        assert_eq!(proj.len(), 2);
        let nothing = p.project(&[]).unwrap();
        assert_eq!(nothing, Relation::nullary_true());
    }

    #[test]
    fn nullary_guard_semantics() {
        let empty = rel_ab(&[]);
        let full = rel_ab(&[(0, 0)]);
        assert_eq!(empty.project(&[]).unwrap(), Relation::nullary_false());
        assert_eq!(full.project(&[]).unwrap(), Relation::nullary_true());
        // Guard: E × π∅(C) is E when C non-empty, ∅ otherwise.
        let guarded = full.product(&empty.project(&[]).unwrap()).unwrap();
        assert!(guarded.is_empty());
        let passed = full.product(&full.project(&[]).unwrap()).unwrap();
        assert_eq!(passed.len(), 1);
    }

    #[test]
    fn selections() {
        let schema = RelSchema::new(vec![("x".into(), A), ("z".into(), A)]).unwrap();
        let r = Relation::from_tuples(
            schema,
            [vec![oa(0), oa(0)], vec![oa(0), oa(1)], vec![oa(2), oa(2)]],
        )
        .unwrap();
        assert_eq!(r.select_eq("x", "z").unwrap().len(), 2);
        assert_eq!(r.select_ne("x", "z").unwrap().len(), 1);
        // Cross-domain comparison rejected.
        let rab = rel_ab(&[(0, 0)]);
        assert!(rab.select_eq("x", "y").is_err());
    }

    #[test]
    fn natural_join_matches_on_common_attrs() {
        let s1 = RelSchema::new(vec![("x".into(), A), ("y".into(), B)]).unwrap();
        let r = Relation::from_tuples(s1, [vec![oa(0), ob(0)], vec![oa(1), ob(1)]]).unwrap();
        let s2 = RelSchema::new(vec![("x".into(), A), ("z".into(), B)]).unwrap();
        let s = Relation::from_tuples(s2, [vec![oa(0), ob(5)]]).unwrap();
        let j = r.natural_join(&s).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().attrs().collect::<Vec<_>>(), ["x", "y", "z"]);
        assert_eq!(j.tuples().next().unwrap(), &[oa(0), ob(0), ob(5)][..]);
    }

    #[test]
    fn natural_join_with_no_common_attrs_is_product() {
        let r = Relation::singleton("x", oa(0));
        let s = Relation::singleton("y", ob(0));
        assert_eq!(r.natural_join(&s).unwrap(), r.product(&s).unwrap());
    }

    #[test]
    fn remove_is_set_removal() {
        let mut r = rel_ab(&[(0, 0), (1, 1)]);
        assert!(r.remove(&[oa(0), ob(0)]));
        assert!(!r.remove(&[oa(0), ob(0)]));
        assert_eq!(r, rel_ab(&[(1, 1)]));
    }

    #[test]
    fn prefix_probe_matches_hash_join() {
        // Small left, large right with the join key in leading position:
        // takes the range-probe path. Compare against the product+select
        // definition it must be equivalent to.
        let left = Relation::from_tuples(
            RelSchema::unary("u", A),
            [vec![oa(1)], vec![oa(3)], vec![oa(u32::MAX)]],
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = (0..40).map(|i| (i % 5, i)).collect();
        let right = rel_ab(&pairs);
        let fast = left
            .product_on(&right, &[("u".into(), "x".into())])
            .unwrap();
        let slow = left.product(&right).unwrap().select_eq("u", "x").unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 16, "8 matches per present key");
    }

    #[test]
    fn permuted_probe_matches_product_select() {
        // Join key at a NON-leading position of the right scheme: takes
        // the permuted-probe path, which must agree with the
        // product+select definition and (operands flipped so the key is
        // leading again) with the prefix-probe path.
        let left = Relation::from_tuples(
            RelSchema::unary("u", B),
            [vec![ob(0)], vec![ob(2)], vec![ob(7)]],
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = (0..30).map(|i| (i, i % 4)).collect();
        let right = rel_ab(&pairs);
        let permuted = left
            .product_on(&right, &[("u".into(), "y".into())])
            .unwrap();
        let slow = left.product(&right).unwrap().select_eq("u", "y").unwrap();
        assert_eq!(permuted, slow);
        let flipped = right
            .product_on(&left, &[("y".into(), "u".into())])
            .unwrap();
        assert_eq!(permuted.len(), flipped.len());

        // Multi-column key in permuted order (right positions [1, 0]).
        let two = RelSchema::new(vec![("v".into(), B), ("w".into(), A)]).unwrap();
        let left2 = Relation::from_tuples(two, [vec![ob(1), oa(4)], vec![ob(3), oa(3)]]).unwrap();
        let fast2 = left2
            .product_on(
                &right,
                &[("v".into(), "y".into()), ("w".into(), "x".into())],
            )
            .unwrap();
        let slow2 = left2
            .product(&right)
            .unwrap()
            .select_eq("v", "y")
            .unwrap()
            .select_eq("w", "x")
            .unwrap();
        assert_eq!(fast2, slow2);
    }

    #[test]
    fn theta_join_eq_and_ne() {
        let r = Relation::singleton("x", oa(0));
        let s =
            Relation::from_tuples(RelSchema::unary("z", A), [vec![oa(0)], vec![oa(1)]]).unwrap();
        assert_eq!(r.theta_join(&s, "x", "z", true).unwrap().len(), 1);
        assert_eq!(r.theta_join(&s, "x", "z", false).unwrap().len(), 1);
    }
}
