//! The flat tuple kernel: a canonically-sorted row arena.
//!
//! A [`TupleSet`] stores every tuple of a fixed arity in **one** `Vec<Oid>`
//! chunked by arity, kept strictly sorted in the lexicographic `(class,
//! index)` order that `BTreeSet<Vec<Oid>>` used to provide. Tuples are
//! exposed as `&[Oid]` views into the arena — no per-tuple allocation, no
//! pointer chasing — and the set operators are linear merges over the
//! sorted runs.
//!
//! ## Canonical-order invariant
//!
//! The logical buffer holds exactly `len * arity` oids; the `len` chunks
//! of `arity` oids are strictly increasing under slice comparison. `len`
//! is stored explicitly so the two 0-ary relations `{()}` (`len == 1`)
//! and `{}` (`len == 0`) stay distinguishable even though both have empty
//! rows. The backing `Vec` may carry `front` oids of dead slack before
//! the first row: point edits shift whichever side of the edit point is
//! smaller, and removals near the front pay for later inserts there — the
//! remove-then-reinsert pattern of transactional view maintenance.
//!
//! ## `Ord`/`Hash` stability
//!
//! The manual [`Ord`] and [`Hash`] impls reproduce what
//! `#[derive(Ord, Hash)]` produced on the legacy
//! `BTreeSet<Vec<Oid>>`-backed relation: `Ord` is the lexicographic
//! comparison of the tuple sequences (slice cmp ≡ `Vec` cmp), and `Hash`
//! feeds the set length followed by each tuple's slice hash (a `Vec<T>`
//! hashes as its slice). Downstream invariants — `Database: Hash`,
//! lowest-index-wins determinism in `receivers-rt`, `BTreeMap<_, Relation>`
//! ordering — therefore survive the representation change bit-for-bit;
//! `tests/relation_ops.rs` pins this against the legacy oracle.

use std::hash::{Hash, Hasher};
use std::ops::Range;

use receivers_objectbase::Oid;

/// A set of fixed-arity tuples in one flat, canonically-sorted buffer.
#[derive(Debug, Clone)]
pub struct TupleSet {
    arity: usize,
    len: usize,
    /// Dead slack (in oids, a multiple of `arity`) before the first row.
    front: usize,
    /// `front` slack oids followed by the `len * arity` row oids.
    rows: Vec<Oid>,
}

/// Equality over the logical content only — the `front` slack a pair of
/// sets happens to carry is representation, not value.
impl PartialEq for TupleSet {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.len == other.len && self.rows() == other.rows()
    }
}

impl Eq for TupleSet {}

impl TupleSet {
    /// The empty set of `arity`-tuples.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            len: 0,
            front: 0,
            rows: Vec::new(),
        }
    }

    /// The logical row buffer: `len * arity` oids past the slack.
    fn rows(&self) -> &[Oid] {
        &self.rows[self.front..]
    }

    /// Build from a row buffer of concatenated tuples, sorting and
    /// deduplicating as needed. Already-sorted input (the common case for
    /// operator outputs) is detected in one linear scan and adopted
    /// without copying; otherwise a `u32` permutation index is sorted and
    /// the rows gathered once — cheaper than sorting wide rows in place.
    ///
    /// `arity == 0` admits only the empty buffer (use [`TupleSet::insert`]
    /// to build `{()}`; a row buffer cannot carry the count).
    pub fn from_rows(arity: usize, rows: Vec<Oid>) -> Self {
        if arity == 0 {
            assert!(rows.is_empty(), "0-ary rows carry no count");
            return Self::new(0);
        }
        assert_eq!(rows.len() % arity, 0, "row buffer not a multiple of arity");
        let n = rows.len() / arity;
        let chunk = |i: usize| &rows[i * arity..(i + 1) * arity];
        if (1..n).all(|i| chunk(i - 1) < chunk(i)) {
            return Self {
                arity,
                len: n,
                front: 0,
                rows,
            };
        }
        debug_assert!(u32::try_from(n).is_ok());
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by(|&a, &b| chunk(a as usize).cmp(chunk(b as usize)));
        perm.dedup_by(|a, b| chunk(*a as usize) == chunk(*b as usize));
        let mut out = Vec::with_capacity(perm.len() * arity);
        for &p in &perm {
            out.extend_from_slice(chunk(p as usize));
        }
        Self {
            arity,
            len: perm.len(),
            front: 0,
            rows: out,
        }
    }

    /// Adopt a row buffer known to be strictly sorted (operator outputs
    /// whose construction preserves canonical order). Checked in debug
    /// builds.
    pub(crate) fn from_sorted_rows(arity: usize, rows: Vec<Oid>) -> Self {
        assert!(arity > 0, "0-ary rows carry no count");
        debug_assert_eq!(rows.len() % arity, 0);
        let len = rows.len() / arity;
        debug_assert!(
            (1..len).all(|i| rows[(i - 1) * arity..i * arity] < rows[i * arity..(i + 1) * arity]),
            "from_sorted_rows requires strictly sorted rows"
        );
        Self {
            arity,
            len,
            front: 0,
            rows,
        }
    }

    /// Tuple width.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th tuple in canonical order.
    pub fn get(&self, i: usize) -> &[Oid] {
        &self.rows()[i * self.arity..(i + 1) * self.arity]
    }

    /// The underlying row buffer (`len * arity` oids).
    pub fn as_rows(&self) -> &[Oid] {
        self.rows()
    }

    /// Iterate over tuples in canonical order.
    pub fn iter(&self) -> Tuples<'_> {
        self.range_iter(0..self.len)
    }

    /// Iterate over the tuples at indices `range` in canonical order.
    pub fn range_iter(&self, range: Range<usize>) -> Tuples<'_> {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        Tuples {
            rows: self.rows(),
            arity: self.arity,
            front: range.start,
            back: range.end,
        }
    }

    /// Index of the first tuple `>= t` in canonical order.
    fn lower_bound(&self, t: &[Oid]) -> usize {
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Membership test. `O(arity · log len)`.
    pub fn contains(&self, t: &[Oid]) -> bool {
        let i = self.lower_bound(t);
        i < self.len && self.get(i) == t
    }

    /// Insert a tuple, keeping canonical order. Returns `true` when it was
    /// new. `O(len)` worst case — one memmove of whichever side of the
    /// insertion point is smaller (the prefix move needs `front` slack,
    /// which removals leave behind) — the touched-tuple primitive
    /// incremental views are maintained with.
    pub fn insert(&mut self, t: &[Oid]) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        let i = self.lower_bound(t);
        if i < self.len && self.get(i) == t {
            return false;
        }
        let at = i * self.arity;
        let total = self.len * self.arity;
        if 2 * at <= total && self.front >= self.arity {
            // Prefix is the smaller side and slack is available: move the
            // first `i` rows one slot left into it.
            let f = self.front;
            self.rows.copy_within(f..f + at, f - self.arity);
            self.front -= self.arity;
            let pos = self.front + at;
            self.rows[pos..pos + self.arity].copy_from_slice(t);
        } else {
            // Grow by one row, shift the tail right, write the tuple.
            let pos = self.front + at;
            let old = self.rows.len();
            self.rows.extend_from_slice(t);
            self.rows.copy_within(pos..old, pos + self.arity);
            self.rows[pos..pos + self.arity].copy_from_slice(t);
        }
        self.len += 1;
        true
    }

    /// Remove a tuple. Returns `true` when it was present. `O(len)` worst
    /// case — one memmove of whichever side of the removal point is
    /// smaller; a prefix move grows the `front` slack that later inserts
    /// reuse.
    pub fn remove(&mut self, t: &[Oid]) -> bool {
        if t.len() != self.arity {
            return false;
        }
        let i = self.lower_bound(t);
        if i >= self.len || self.get(i) != t {
            return false;
        }
        let at = i * self.arity;
        let total = self.len * self.arity;
        if 2 * at <= total {
            let f = self.front;
            self.rows.copy_within(f..f + at, f + self.arity);
            self.front += self.arity;
        } else {
            let pos = self.front + at;
            self.rows.copy_within(pos + self.arity.., pos);
            self.rows.truncate(self.rows.len() - self.arity);
        }
        self.len -= 1;
        true
    }

    /// Indices of the tuples whose leading `key.len()` columns equal
    /// `key`: a contiguous run of the sorted buffer, found with two binary
    /// searches. `O(key.len() · log len)` — no successor-key arithmetic
    /// needed, unlike the `BTreeSet::range` probe this replaces.
    pub fn prefix_bounds(&self, key: &[Oid]) -> Range<usize> {
        let k = key.len();
        debug_assert!(k <= self.arity);
        let (mut lo, mut hi) = (0, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if &self.get(mid)[..k] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let start = lo;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if &self.get(mid)[..k] <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        start..lo
    }

    /// Sort-merge union. `O(self.len + other.len)`.
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(self.arity, other.arity);
        let mut out = Vec::with_capacity(self.rows.len() + other.rows.len());
        let mut len = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.len && j < other.len {
            match self.get(i).cmp(other.get(j)) {
                std::cmp::Ordering::Less => {
                    out.extend_from_slice(self.get(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.extend_from_slice(other.get(j));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.extend_from_slice(self.get(i));
                    i += 1;
                    j += 1;
                }
            }
            len += 1;
        }
        len += (self.len - i) + (other.len - j);
        out.extend_from_slice(&self.rows()[i * self.arity..]);
        out.extend_from_slice(&other.rows()[j * other.arity..]);
        Self {
            arity: self.arity,
            len,
            front: 0,
            rows: out,
        }
    }

    /// Sort-merge difference. `O(self.len + other.len)`.
    pub fn difference(&self, other: &Self) -> Self {
        assert_eq!(self.arity, other.arity);
        let mut out = Vec::with_capacity(self.rows.len());
        let mut len = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.len && j < other.len {
            match self.get(i).cmp(other.get(j)) {
                std::cmp::Ordering::Less => {
                    out.extend_from_slice(self.get(i));
                    len += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        len += self.len - i;
        out.extend_from_slice(&self.rows()[i * self.arity..]);
        Self {
            arity: self.arity,
            len,
            front: 0,
            rows: out,
        }
    }

    /// Sort-merge intersection. `O(self.len + other.len)`.
    pub fn intersection(&self, other: &Self) -> Self {
        assert_eq!(self.arity, other.arity);
        let mut out = Vec::with_capacity(self.rows.len().min(other.rows.len()));
        let mut len = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.len && j < other.len {
            match self.get(i).cmp(other.get(j)) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.extend_from_slice(self.get(i));
                    len += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        Self {
            arity: self.arity,
            len,
            front: 0,
            rows: out,
        }
    }
}

/// Matches the derived `Ord` of the legacy `BTreeSet<Vec<Oid>>`:
/// lexicographic over the canonical tuple sequence.
impl Ord for TupleSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl PartialOrd for TupleSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Matches the derived `Hash` of the legacy `BTreeSet<Vec<Oid>>` (for
/// hashers whose length prefix is `write_usize`, e.g. the std
/// `DefaultHasher`): set length, then each tuple's slice hash — identical
/// to hashing the `Vec<Oid>` tuples the legacy representation stored.
impl Hash for TupleSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len);
        for t in self.iter() {
            t.hash(state);
        }
    }
}

/// Iterator over the tuples of a [`TupleSet`], yielding `&[Oid]` views
/// into the flat buffer.
#[derive(Debug, Clone)]
pub struct Tuples<'a> {
    rows: &'a [Oid],
    arity: usize,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Tuples<'a> {
    type Item = &'a [Oid];

    fn next(&mut self) -> Option<&'a [Oid]> {
        if self.front == self.back {
            return None;
        }
        let i = self.front;
        self.front += 1;
        Some(&self.rows[i * self.arity..(i + 1) * self.arity])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Tuples<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front == self.back {
            return None;
        }
        self.back -= 1;
        Some(&self.rows[self.back * self.arity..(self.back + 1) * self.arity])
    }
}

impl ExactSizeIterator for Tuples<'_> {}

impl<'a> IntoIterator for &'a TupleSet {
    type Item = &'a [Oid];
    type IntoIter = Tuples<'a>;

    fn into_iter(self) -> Tuples<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::ClassId;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::BTreeSet;

    fn o(c: u32, i: u32) -> Oid {
        Oid::new(ClassId(c), i)
    }

    fn set(rows: &[&[Oid]]) -> TupleSet {
        let arity = rows.first().map_or(1, |r| r.len());
        let mut t = TupleSet::new(arity);
        for r in rows {
            t.insert(r);
        }
        t
    }

    #[test]
    fn insert_remove_contains_keep_canonical_order() {
        let mut t = TupleSet::new(2);
        assert!(t.insert(&[o(0, 3), o(1, 0)]));
        assert!(t.insert(&[o(0, 1), o(1, 9)]));
        assert!(t.insert(&[o(0, 3), o(0, 5)]));
        assert!(!t.insert(&[o(0, 1), o(1, 9)]));
        let got: Vec<_> = t.iter().collect();
        assert_eq!(
            got,
            vec![
                &[o(0, 1), o(1, 9)][..],
                &[o(0, 3), o(0, 5)][..],
                &[o(0, 3), o(1, 0)][..],
            ]
        );
        assert!(t.contains(&[o(0, 3), o(0, 5)]));
        assert!(t.remove(&[o(0, 3), o(0, 5)]));
        assert!(!t.remove(&[o(0, 3), o(0, 5)]));
        assert!(!t.contains(&[o(0, 3), o(0, 5)]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn nullary_sets_distinguish_true_and_false() {
        let mut t = TupleSet::new(0);
        assert!(t.is_empty());
        assert!(t.insert(&[]));
        assert!(!t.insert(&[]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![&[][..]]);
        assert!(t.contains(&[]));
        assert!(t.remove(&[]));
        assert!(t.is_empty());
        // {()} > {} like the legacy BTreeSet comparison.
        let mut tru = TupleSet::new(0);
        tru.insert(&[]);
        assert!(tru > TupleSet::new(0));
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let rows = vec![o(0, 2), o(0, 0), o(0, 2), o(0, 1)];
        let t = TupleSet::from_rows(1, rows);
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_rows(), &[o(0, 0), o(0, 1), o(0, 2)]);
        // Sorted input is adopted as-is.
        let t2 = TupleSet::from_rows(2, vec![o(0, 0), o(0, 9), o(0, 1), o(0, 0)]);
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn merges_match_btreeset_semantics() {
        let a = set(&[&[o(0, 1)], &[o(0, 3)], &[o(0, 5)]]);
        let b = set(&[&[o(0, 2)], &[o(0, 3)], &[o(0, 6)]]);
        let model =
            |t: &TupleSet| -> BTreeSet<Vec<Oid>> { t.iter().map(<[Oid]>::to_vec).collect() };
        let (ma, mb) = (model(&a), model(&b));
        assert_eq!(model(&a.union(&b)), ma.union(&mb).cloned().collect());
        assert_eq!(
            model(&a.difference(&b)),
            ma.difference(&mb).cloned().collect()
        );
        assert_eq!(
            model(&a.intersection(&b)),
            ma.intersection(&mb).cloned().collect()
        );
    }

    #[test]
    fn prefix_bounds_finds_contiguous_run() {
        let mut t = TupleSet::new(2);
        for (a, b) in [(1u32, 0u32), (1, 2), (2, 0), (2, 1), (2, 7), (3, 0)] {
            t.insert(&[o(0, a), o(1, b)]);
        }
        let r = t.prefix_bounds(&[o(0, 2)]);
        assert_eq!(r, 2..5);
        assert!(t.prefix_bounds(&[o(0, 9)]).is_empty());
        // Max-valued keys need no successor arithmetic.
        t.insert(&[o(u32::MAX, u32::MAX), o(1, 1)]);
        let r = t.prefix_bounds(&[o(u32::MAX, u32::MAX)]);
        assert_eq!(r.len(), 1);
        // Full-width key degenerates to a membership range.
        assert_eq!(t.prefix_bounds(&[o(0, 1), o(1, 2)]).len(), 1);
        // Empty key spans everything.
        assert_eq!(t.prefix_bounds(&[]), 0..t.len());
    }

    #[test]
    fn interleaved_edits_with_front_slack_match_model() {
        // Drive the nearest-end edit paths hard: build, then toggle
        // tuples at pseudo-random positions so removals grow the front
        // slack and inserts consume it, checking the full canonical
        // sequence (and slack-independent equality/hash) after every op.
        let mut t = TupleSet::new(2);
        let mut model: BTreeSet<Vec<Oid>> = BTreeSet::new();
        let tuple = |k: u32| vec![o(0, k % 41), o(1, k % 29)];
        for k in 0..200u32 {
            let x = tuple(k.wrapping_mul(2654435761) >> 3);
            assert_eq!(t.insert(&x), model.insert(x.clone()), "insert {x:?}");
            let y = tuple(k.wrapping_mul(40503) >> 2);
            assert_eq!(t.remove(&y), model.remove(&y), "remove {y:?}");
            assert_eq!(t.len(), model.len());
            assert!(t.iter().map(<[Oid]>::to_vec).eq(model.iter().cloned()));
        }
        // A slack-free rebuild of the same content is equal and hashes
        // identically even though the buffers differ.
        let rebuilt = TupleSet::from_rows(2, t.as_rows().to_vec());
        assert_eq!(t, rebuilt);
        let hash_of = |s: &TupleSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&t), hash_of(&rebuilt));
    }

    #[test]
    fn hash_matches_legacy_btreeset_of_vecs() {
        let t = set(&[&[o(0, 1), o(1, 2)], &[o(0, 0), o(1, 5)]]);
        let legacy: BTreeSet<Vec<Oid>> = t.iter().map(<[Oid]>::to_vec).collect();
        let hash_of = |x: &dyn Fn(&mut DefaultHasher)| {
            let mut h = DefaultHasher::new();
            x(&mut h);
            h.finish()
        };
        let flat = hash_of(&|h: &mut DefaultHasher| t.hash(h));
        let old = hash_of(&|h: &mut DefaultHasher| legacy.hash(h));
        assert_eq!(flat, old);
    }

    #[test]
    fn ord_matches_legacy_btreeset_of_vecs() {
        let pairs = [
            (set(&[&[o(0, 1)]]), set(&[&[o(0, 2)]])),
            (set(&[&[o(0, 1)], &[o(0, 2)]]), set(&[&[o(0, 1)]])),
            (set(&[]), set(&[&[o(0, 0)]])),
            (set(&[&[o(1, 0)]]), set(&[&[o(1, 0)]])),
        ];
        for (a, b) in &pairs {
            let (la, lb): (BTreeSet<Vec<Oid>>, BTreeSet<Vec<Oid>>) = (
                a.iter().map(<[Oid]>::to_vec).collect(),
                b.iter().map(<[Oid]>::to_vec).collect(),
            );
            assert_eq!(a.cmp(b), la.cmp(&lb));
        }
    }
}
