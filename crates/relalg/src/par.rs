//! The `par(·)` transform (Definition 6.1): rewriting an update expression
//! so that the whole receiver set, stored in the relation `rec` over scheme
//! `self arg1 … argk`, is processed at once.
//!
//! The transform:
//!
//! * replaces each base relation `R` by `π_self(rec) × R`;
//! * replaces `self` by `π_self(rec)` and each `arg_i` by
//!   `π_{self,arg_i}(rec)`;
//! * extends each projection with the attribute `self`;
//! * turns each Cartesian product into a natural join on `self`.
//!
//! Union, difference, selections and renamings are untouched (they preserve
//! the `self` column); theta joins desugar to natural-join-on-`self`
//! followed by the selection; natural joins keep `self` among the common
//! attributes. Renaming the attribute `self` is rejected: the transform's
//! bookkeeping column would be lost (the paper's constructions never do
//! this).

use crate::error::{RelAlgError, Result};
use crate::expr::Expr;
use crate::schema::Attr;

const SELF: &str = "self";

/// Apply Definition 6.1 to an update expression.
pub fn par(expr: &Expr) -> Result<Expr> {
    Ok(match expr {
        Expr::Base(r) => Expr::rec().project([SELF]).product(Expr::Base(*r)),
        Expr::Param(p) if p == SELF => Expr::rec().project([SELF]),
        Expr::Param(p) if p.starts_with("arg") => Expr::rec().project([SELF.to_owned(), p.clone()]),
        Expr::Param(p) => return Err(RelAlgError::UnknownParam(p.clone())),
        Expr::Union(l, r) => par(l)?.union(par(r)?),
        Expr::Diff(l, r) => par(l)?.diff(par(r)?),
        Expr::Product(l, r) => par(l)?.nat_join(par(r)?),
        Expr::SelectEq(e, a, b) => par(e)?.select_eq(a.clone(), b.clone()),
        Expr::SelectNe(e, a, b) => par(e)?.select_ne(a.clone(), b.clone()),
        Expr::Project(e, attrs) => {
            let mut keep: Vec<Attr> = Vec::with_capacity(attrs.len() + 1);
            if !attrs.iter().any(|a| a == SELF) {
                keep.push(SELF.to_owned());
            }
            keep.extend(attrs.iter().cloned());
            par(e)?.project(keep)
        }
        Expr::Rename(e, from, to) => {
            if from == SELF || to == SELF {
                return Err(RelAlgError::RenamesSelf);
            }
            par(e)?.rename(from.clone(), to.clone())
        }
        Expr::NatJoin(l, r) => par(l)?.nat_join(par(r)?),
        Expr::ThetaJoin {
            left,
            right,
            on_left,
            on_right,
            eq,
        } => {
            let joined = par(left)?.nat_join(par(right)?);
            if *eq {
                joined.select_eq(on_left.clone(), on_right.clone())
            } else {
                joined.select_ne(on_left.clone(), on_right.clone())
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::{eval, Bindings};
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::{Oid, Receiver, ReceiverSet, Signature};

    #[test]
    fn par_of_self_projects_rec() {
        let e = par(&Expr::self_rel()).unwrap();
        assert_eq!(e, Expr::rec().project(["self"]));
    }

    #[test]
    fn par_keeps_self_through_projections() {
        let s = beer_schema();
        // π_frequents(self ⋈[self=Drinker] Dfrequents)
        let e = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .project(["frequents"]);
        let p = par(&e).unwrap();
        // Result must be a projection on {self, frequents}.
        match &p {
            Expr::Project(_, attrs) => {
                assert_eq!(attrs, &["self".to_owned(), "frequents".to_owned()])
            }
            other => panic!("expected projection, got {other}"),
        }
    }

    #[test]
    fn par_rejects_renaming_self() {
        let e = Expr::self_rel().rename("self", "x");
        assert_eq!(par(&e).unwrap_err(), RelAlgError::RenamesSelf);
    }

    /// Lemma 6.7 on a concrete example: `par(E)(I,T)` equals the union over
    /// `t ∈ T` of `{t(self)} × E(I,t)`.
    #[test]
    fn lemma_6_7_on_add_bar() {
        let s = beer_schema();
        let (i, o) = figure2(&s);
        let db = Database::from_instance(&i);
        let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
        let e = Expr::self_rel()
            .join_eq(Expr::prop(s.frequents), "self", "Drinker")
            .project(["frequents"])
            .union(Expr::arg(1));

        let t = ReceiverSet::from_iter([
            Receiver::new(vec![o.d1, o.bar1]),
            Receiver::new(vec![o.d1, o.bar3]),
        ]);
        let par_e = par(&e).unwrap();
        let rec_bindings = Bindings::for_receiver_set(&sig, &t).unwrap();
        let lhs = eval(&par_e, &db, &rec_bindings).unwrap();

        // Manual right-hand side of Lemma 6.7.
        let mut expected = std::collections::BTreeSet::new();
        for r in t.iter() {
            let b = Bindings::for_receiver(r);
            let out = eval(&e, &db, &b).unwrap();
            for tuple in out.tuples() {
                expected.insert(vec![r.receiving_object(), tuple[0]]);
            }
        }
        let got: std::collections::BTreeSet<_> = lhs.tuples().map(<[Oid]>::to_vec).collect();
        assert_eq!(got, expected);
    }
}
