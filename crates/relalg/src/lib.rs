#![warn(missing_docs)]

//! # receivers-relalg
//!
//! The typed relational algebra substrate of Section 5.1 of *Applying an
//! Update Method to a Set of Receivers*.
//!
//! Object-base schemas and instances are viewed relationally (Proposition
//! 5.1): each class name `C` becomes a unary relation scheme `C` whose
//! domain is the universe of `C`-objects, and each schema edge `(C, a, B)`
//! becomes a binary relation scheme `Ca` with attributes `C` (domain `C`)
//! and `a` (domain `B`), subject to the full inclusion dependencies
//! `Ca[C] ⊆ C[C]` and `Ca[a] ⊆ B[B]`. Disjointness of class universes is
//! enforced *by construction* here: attribute domains are class ids and
//! every value is a typed [`receivers_objectbase::Oid`].
//!
//! The algebra is the standard named relational algebra of the paper:
//! union, difference, Cartesian product, equality selection `σ_{A=B}`,
//! projection, renaming, plus the non-equality selection `σ_{A≠B}` of the
//! *positive* algebra (Definition 5.2), and the derived natural and theta
//! joins. Expressions may refer to named *parameter relations* (`self`,
//! `arg1`, …, `rec`, and the primed copies used by the Theorem 5.6
//! reduction) through [`expr::Expr::Param`].
//!
//! Well-definedness of update expressions (the `E(I,t) ⊆ B(I)` requirement
//! discussed after Example 5.5) holds automatically in this typed setting:
//! every value flowing through an expression originates from the instance's
//! relations or from the receiver, so the "many-sorted expressions"
//! solution the paper cites (Van den Bussche & Cabibbo 1998) is what this
//! crate implements.

pub mod database;
pub mod deps;
pub mod error;
pub mod eval;
pub mod expr;
pub mod gen;
#[cfg(feature = "legacy-oracle")]
pub mod legacy;
pub mod par;
pub mod positive;
pub mod relation;
pub mod rewrite;
pub mod schema;
pub mod tuples;
pub mod typecheck;
pub mod view;

pub use database::Database;
pub use deps::{Dependency, FunctionalDep, InclusionDep};
pub use error::{RelAlgError, Result};
pub use eval::{eval, Bindings};
pub use expr::{Expr, RelName};
pub use positive::is_positive;
pub use relation::Relation;
pub use schema::{Attr, RelSchema};
pub use tuples::{TupleSet, Tuples};
pub use typecheck::{collect_errors, infer_schema, ParamSchemas};
pub use view::DatabaseView;
