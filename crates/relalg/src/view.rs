//! An incrementally maintained relational view of an object-base instance.
//!
//! [`Database::from_instance`] costs `O(N + E)`; re-running it before every
//! receiver of a sequential application is what kept the in-place
//! application path from reaching the paper's `O(changed edges)` bound.
//! [`DatabaseView`] is that same database, built **once** and thereafter
//! kept in lockstep with the instance by implementing
//! [`DeltaObserver`]: every op an observed
//! [`InstanceTxn`](receivers_objectbase::InstanceTxn) logs maps to one
//! touched-tuple update —
//!
//! | delta op         | view update                                  |
//! |------------------|----------------------------------------------|
//! | `AddedNode(o)`   | insert `{o}` into class relation `C(o)`      |
//! | `RemovedNode(o)` | remove `{o}` from class relation `C(o)`      |
//! | `AddedEdge(e)`   | insert `(src, dst)` into property rel. `Ca`  |
//! | `RemovedEdge(e)` | remove `(src, dst)` from property rel. `Ca`  |
//!
//! — and every *undone* op maps to the inverse update, so the view equals a
//! fresh rebuild after every transaction **and** after every rollback. The
//! differential test suites (`tests/view_differential.rs` and
//! `tests/relation_ops.rs` at the workspace root) pin this equality across
//! hundreds of random method sequences.
//!
//! On the flat [`TupleSet`](crate::tuples::TupleSet) storage a point edit
//! costs a memmove of the smaller side of the buffer, so the view does
//! **not** apply ops one at a time. It buffers the burst and consolidates
//! at [`DeltaObserver::batch_end`] (a transaction's commit or rollback):
//! ops that cancel within the burst — the entire log of a rolled-back
//! transaction, an added-then-removed fresh object — vanish without
//! touching a relation, and what remains is applied per relation, as
//! point edits for small nets or one linear merge for large ones. The
//! borrow rules make the staleness unobservable: whoever holds the
//! transaction holds the view mutably, so the view can only be read
//! between bursts, where it is always consolidated.

use std::collections::BTreeMap;

use receivers_objectbase::{ClassId, DeltaObserver, DeltaOp, Instance, Oid, PropId};
use receivers_obs as obs;

use crate::database::Database;

obs::counter!(C_BUILDS, "view.builds");
obs::counter!(C_BATCHES, "view.batches");
obs::counter!(C_RAW_OPS, "view.raw_ops");
obs::counter!(C_NETTED_OPS, "view.netted_ops");
obs::histogram!(H_BATCH_RAW_OPS, "view.batch_raw_ops");

/// A [`Database`] maintained edge-by-edge from an instance's delta log.
///
/// Construct with [`DatabaseView::new`], pass as the observer to
/// [`InstanceTxn::begin_observed`](receivers_objectbase::InstanceTxn::begin_observed)
/// for every transaction on the underlying instance, and read through
/// [`DatabaseView::database`]. As long as every edit to the instance flows
/// through an observed transaction (or [`receivers_objectbase::undo_ops`]),
/// the view is bit-identical to `Database::from_instance` of the current
/// instance at all times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseView {
    db: Database,
    /// Effective edits buffered since the last [`DeltaObserver::batch_end`]
    /// — always empty whenever the view is externally readable.
    pending: Vec<DeltaOp>,
}

impl DatabaseView {
    /// Build the view from scratch: one `O(N + E)` conversion.
    pub fn new(instance: &Instance) -> Self {
        C_BUILDS.incr();
        Self {
            db: Database::from_instance(instance),
            pending: Vec::new(),
        }
    }

    /// Wrap an already-built database — no conversion, no build counted.
    ///
    /// This is how a sharded application equips each worker with a
    /// maintained replica: clone (and prune) the caller's database once,
    /// then keep the copy in lockstep with the worker's own delta stream.
    pub fn from_database(db: Database) -> Self {
        Self {
            db,
            pending: Vec::new(),
        }
    }

    /// The maintained database, for evaluation.
    pub fn database(&self) -> &Database {
        debug_assert!(self.pending.is_empty(), "view read inside a burst");
        &self.db
    }

    /// Consume the view, keeping the maintained database.
    pub fn into_database(self) -> Database {
        debug_assert!(self.pending.is_empty(), "view consumed inside a burst");
        self.db
    }

    /// `true` when the maintained view equals a fresh rebuild from
    /// `instance` — the invariant the differential suite pins.
    pub fn matches_rebuild(&self, instance: &Instance) -> bool {
        debug_assert!(self.pending.is_empty(), "view read inside a burst");
        self.db == Database::from_instance(instance)
    }

    /// Consolidate the buffered burst into the maintained database.
    ///
    /// The first op of a tuple's run fixes its pre-burst presence, the
    /// last its post-burst presence; runs whose endpoints agree (a
    /// rolled-back edit, a fresh object removed again) net to nothing.
    /// What remains is applied per relation through
    /// [`Database::apply_node_edits`]/[`Database::apply_edge_edits`].
    /// Panics when an op does not type-check against the view's schema —
    /// impossible when the ops come from an observed transaction on the
    /// instance this view was built from.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        C_BATCHES.incr();
        C_RAW_OPS.add(self.pending.len() as u64);
        H_BATCH_RAW_OPS.record(self.pending.len() as u64);
        let mut netted: u64 = 0;
        // (first op was an insert, last op was an insert) per tuple; the
        // BTreeMaps keep tuples in canonical row order per relation.
        fn record<K: Ord>(m: &mut BTreeMap<K, (bool, bool)>, key: K, add: bool) {
            m.entry(key).and_modify(|e| e.1 = add).or_insert((add, add));
        }
        let mut nodes: BTreeMap<Oid, (bool, bool)> = BTreeMap::new();
        let mut edges: BTreeMap<(PropId, Oid, Oid), (bool, bool)> = BTreeMap::new();
        for op in std::mem::take(&mut self.pending) {
            match op {
                DeltaOp::AddedNode(o) => record(&mut nodes, o, true),
                DeltaOp::RemovedNode(o) => record(&mut nodes, o, false),
                DeltaOp::AddedEdge(e) => record(&mut edges, (e.prop, e.src, e.dst), true),
                DeltaOp::RemovedEdge(e) => record(&mut edges, (e.prop, e.src, e.dst), false),
            }
        }
        // A run nets to an edit exactly when its endpoints have the same
        // kind: absent→…→present is an insert, present→…→absent a delete.
        let mut adds: Vec<Oid> = Vec::new();
        let mut dels: Vec<Oid> = Vec::new();
        let mut group: Option<ClassId> = None;
        let mut nodes = nodes.into_iter().peekable();
        while let Some((o, (first, last))) = nodes.next() {
            if first == last {
                group = Some(o.class);
                netted += 1;
                if first { &mut adds } else { &mut dels }.push(o);
            }
            let boundary = nodes.peek().is_none_or(|(n, _)| Some(n.class) != group);
            if boundary {
                if let Some(c) = group.take() {
                    self.db
                        .apply_node_edits(c, &adds, &dels)
                        .expect("delta ops typed by the observed instance");
                    adds.clear();
                    dels.clear();
                }
            }
        }
        let mut group: Option<PropId> = None;
        let mut edges = edges.into_iter().peekable();
        while let Some(((p, src, dst), (first, last))) = edges.next() {
            if first == last {
                group = Some(p);
                netted += 1;
                let rows = if first { &mut adds } else { &mut dels };
                rows.push(src);
                rows.push(dst);
            }
            let boundary = edges.peek().is_none_or(|((n, _, _), _)| Some(*n) != group);
            if boundary {
                if let Some(p) = group.take() {
                    self.db
                        .apply_edge_edits(p, &adds, &dels)
                        .expect("delta ops typed by the observed instance");
                    adds.clear();
                    dels.clear();
                }
            }
        }
        C_NETTED_OPS.add(netted);
    }
}

impl DeltaObserver for DatabaseView {
    fn applied(&mut self, op: &DeltaOp) {
        self.pending.push(*op);
    }

    fn undone(&mut self, op: &DeltaOp) {
        // The effective edit is the inverse of the op being reversed.
        self.pending.push(match *op {
            DeltaOp::AddedNode(o) => DeltaOp::RemovedNode(o),
            DeltaOp::RemovedNode(o) => DeltaOp::AddedNode(o),
            DeltaOp::AddedEdge(e) => DeltaOp::RemovedEdge(e),
            DeltaOp::RemovedEdge(e) => DeltaOp::AddedEdge(e),
        });
    }

    fn batch_end(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::{Edge, InstanceTxn};

    #[test]
    fn maintained_view_tracks_edits_and_rollback() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut view = DatabaseView::new(&i);
        let snapshot = view.clone();

        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.commit();
        assert!(view.matches_rebuild(&i));
        assert_ne!(view, snapshot);

        let before_rollback = i.clone();
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_object_cascade(o.bar2);
        txn.rollback();
        assert_eq!(i, before_rollback);
        assert!(view.matches_rebuild(&i));
    }

    #[test]
    fn observed_cascade_stays_in_lockstep_mid_transaction() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut view = DatabaseView::new(&i);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_object_cascade(o.bar1);
        txn.commit();
        assert!(view.matches_rebuild(&i));
    }
}
