//! An incrementally maintained relational view of an object-base instance.
//!
//! [`Database::from_instance`] costs `O(N + E)`; re-running it before every
//! receiver of a sequential application is what kept the in-place
//! application path from reaching the paper's `O(changed edges)` bound.
//! [`DatabaseView`] is that same database, built **once** and thereafter
//! kept in lockstep with the instance by implementing
//! [`DeltaObserver`]: every op an observed
//! [`InstanceTxn`](receivers_objectbase::InstanceTxn) logs maps to exactly
//! one `O(log)` touched-tuple update —
//!
//! | delta op         | view update                                  |
//! |------------------|----------------------------------------------|
//! | `AddedNode(o)`   | insert `{o}` into class relation `C(o)`      |
//! | `RemovedNode(o)` | remove `{o}` from class relation `C(o)`      |
//! | `AddedEdge(e)`   | insert `(src, dst)` into property rel. `Ca`  |
//! | `RemovedEdge(e)` | remove `(src, dst)` from property rel. `Ca`  |
//!
//! — and every *undone* op maps to the inverse update, so the view equals a
//! fresh rebuild after every statement **and** after every rollback. The
//! differential test suite (`tests/view_differential.rs` at the workspace
//! root) pins this equality across hundreds of random method sequences.

use receivers_objectbase::{DeltaObserver, DeltaOp, Instance};

use crate::database::Database;

/// A [`Database`] maintained edge-by-edge from an instance's delta log.
///
/// Construct with [`DatabaseView::new`], pass as the observer to
/// [`InstanceTxn::begin_observed`](receivers_objectbase::InstanceTxn::begin_observed)
/// for every transaction on the underlying instance, and read through
/// [`DatabaseView::database`]. As long as every edit to the instance flows
/// through an observed transaction (or [`receivers_objectbase::undo_ops`]),
/// the view is bit-identical to `Database::from_instance` of the current
/// instance at all times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseView {
    db: Database,
}

impl DatabaseView {
    /// Build the view from scratch: one `O(N + E)` conversion.
    pub fn new(instance: &Instance) -> Self {
        Self {
            db: Database::from_instance(instance),
        }
    }

    /// The maintained database, for evaluation.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consume the view, keeping the maintained database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// `true` when the maintained view equals a fresh rebuild from
    /// `instance` — the invariant the differential suite pins.
    pub fn matches_rebuild(&self, instance: &Instance) -> bool {
        self.db == Database::from_instance(instance)
    }

    /// Apply the touched-tuple update for one delta op. Panics when the op
    /// does not type-check against the view's schema or double-applies —
    /// both impossible when the ops come from an observed transaction on
    /// the instance this view was built from.
    fn forward(&mut self, op: &DeltaOp) {
        let effective = match *op {
            DeltaOp::AddedNode(o) => self.db.insert_node_tuple(o),
            DeltaOp::RemovedNode(o) => self.db.remove_node_tuple(o),
            DeltaOp::AddedEdge(e) => self.db.insert_edge_tuple(&e),
            DeltaOp::RemovedEdge(e) => self.db.remove_edge_tuple(&e),
        };
        debug_assert!(
            matches!(effective, Ok(true)),
            "delta op was not an effective view update: {op:?}"
        );
        effective.expect("delta op typed by the observed instance");
    }

    /// Apply the inverse touched-tuple update for one undone delta op.
    fn backward(&mut self, op: &DeltaOp) {
        let inverse = match *op {
            DeltaOp::AddedNode(o) => DeltaOp::RemovedNode(o),
            DeltaOp::RemovedNode(o) => DeltaOp::AddedNode(o),
            DeltaOp::AddedEdge(e) => DeltaOp::RemovedEdge(e),
            DeltaOp::RemovedEdge(e) => DeltaOp::AddedEdge(e),
        };
        self.forward(&inverse);
    }
}

impl DeltaObserver for DatabaseView {
    fn applied(&mut self, op: &DeltaOp) {
        self.forward(op);
    }

    fn undone(&mut self, op: &DeltaOp) {
        self.backward(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::{Edge, InstanceTxn};

    #[test]
    fn maintained_view_tracks_edits_and_rollback() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut view = DatabaseView::new(&i);
        let snapshot = view.clone();

        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        let fresh = txn.fresh_object(s.bar);
        txn.link(o.d1, s.frequents, fresh).unwrap();
        txn.commit();
        assert!(view.matches_rebuild(&i));
        assert_ne!(view, snapshot);

        let before_rollback = i.clone();
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_object_cascade(o.bar2);
        txn.rollback();
        assert_eq!(i, before_rollback);
        assert!(view.matches_rebuild(&i));
    }

    #[test]
    fn observed_cascade_stays_in_lockstep_mid_transaction() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut view = DatabaseView::new(&i);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut view);
        txn.remove_object_cascade(o.bar1);
        txn.commit();
        assert!(view.matches_rebuild(&i));
    }
}
