//! A fixed-size flight recorder: the last N completed top-level
//! operations, retained in a ring for postmortems.
//!
//! Production systems keep an always-on recent-history buffer so a crash
//! explains itself; this is the workspace's offline equivalent. When the
//! flight switch is on ([`flight_enabled`](crate::flight_enabled) — env
//! `RECEIVERS_FLIGHT`), completed root spans and profiled driver runs
//! append a [`FlightEntry`] to a process-global ring of
//! [`FLIGHT_SLOTS`] slots. Two dump paths read it back:
//!
//! * a **panic hook** ([`install_panic_hook`]) prints the human form to
//!   stderr after the normal panic message, and writes the
//!   `receivers-obs/flight/v1` JSON document to the path named by
//!   `RECEIVERS_FLIGHT_DUMP` when that variable is set;
//! * **recovery** — `DurableStore::open` records what it replayed and
//!   dumps the ring the same way, so a torn-tail reopen leaves an
//!   artifact.
//!
//! The ring is unsafe-free and panic-safe: each slot is a tiny `Mutex`
//! taken with `try_lock` on both the write and the read side, so a dump
//! running *inside* a panic (possibly while another thread holds a
//! slot) skips contended slots instead of deadlocking. Contended writes
//! are counted (`obs.flight.dropped`), never blocked on.
//!
//! Disabled cost is one `Relaxed` load, the PR 5 bar.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, TryLockError};

use crate::export::json_str;

crate::counter!(C_RECORDED, "obs.flight.recorded");
crate::counter!(C_DROPPED, "obs.flight.dropped");

/// Number of retained entries; older entries are overwritten.
pub const FLIGHT_SLOTS: usize = 64;

/// Monotone sequence of recorded entries (also the ring write cursor).
static HEAD: AtomicU64 = AtomicU64::new(0);
static RING: [Mutex<Option<FlightEntry>>; FLIGHT_SLOTS] =
    [const { Mutex::new(None) }; FLIGHT_SLOTS];

/// One retained operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Monotone sequence number (1-based; gaps mean overwritten slots).
    pub seq: u64,
    /// Completion time, nanoseconds since the process trace epoch.
    pub at_ns: u64,
    /// Entry kind: `"span"`, `"profile"`, `"recovery"`, …
    pub kind: &'static str,
    /// One-line human summary.
    pub summary: String,
    /// Optional pre-rendered `receivers-obs/profile/v1` document,
    /// spliced verbatim into the JSON dump as this entry's `profile`.
    pub json: Option<String>,
}

/// Record one completed operation — a no-op (one relaxed load) when the
/// flight recorder is off. Never blocks: a slot contended by a
/// concurrent writer or a mid-panic dump counts as dropped.
pub fn flight_record(kind: &'static str, summary: String, json: Option<String>) {
    if !crate::flight_enabled() {
        return;
    }
    let seq = HEAD.fetch_add(1, Ordering::Relaxed) + 1;
    let entry = FlightEntry {
        seq,
        at_ns: crate::now_ns(),
        kind,
        summary,
        json,
    };
    match RING[(seq - 1) as usize % FLIGHT_SLOTS].try_lock() {
        Ok(mut slot) => {
            *slot = Some(entry);
            C_RECORDED.incr();
        }
        Err(TryLockError::Poisoned(p)) => {
            *p.into_inner() = Some(entry);
            C_RECORDED.incr();
        }
        Err(TryLockError::WouldBlock) => C_DROPPED.incr(),
    }
}

/// Snapshot the ring, oldest first. Slots held by a concurrent writer
/// are skipped (dump-during-panic must not block).
pub fn flight_entries() -> Vec<FlightEntry> {
    let mut entries: Vec<FlightEntry> = RING
        .iter()
        .filter_map(|slot| match slot.try_lock() {
            Ok(g) => g.clone(),
            Err(TryLockError::Poisoned(p)) => p.into_inner().clone(),
            Err(TryLockError::WouldBlock) => None,
        })
        .collect();
    entries.sort_by_key(|e| e.seq);
    entries
}

/// Clear the ring (for tests and repeated runs).
pub fn reset_flight() {
    for slot in &RING {
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
    HEAD.store(0, Ordering::Relaxed);
}

/// Render entries in the human postmortem form.
pub fn render_flight_human(entries: &[FlightEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== receivers-obs flight recorder ({} entr{}) ==",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" }
    );
    for e in entries {
        let _ = writeln!(
            out,
            "  #{:<4} {:>12.3} ms  [{}] {}",
            e.seq,
            e.at_ns as f64 / 1e6,
            e.kind,
            e.summary
        );
    }
    out
}

/// Render entries as the stable `receivers-obs/flight/v1` JSON document
/// (no trailing newline), validated by `obs_check --flight`. An entry's
/// pre-rendered profile document is embedded as its `profile` member.
pub fn render_flight_json(entries: &[FlightEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"receivers-obs/flight/v1\",\n  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"seq\": {}, \"at_ns\": {}, \"kind\": {}, \"summary\": {}",
            e.seq,
            e.at_ns,
            json_str(e.kind),
            json_str(&e.summary)
        );
        if let Some(doc) = &e.json {
            let _ = write!(out, ", \"profile\": {doc}");
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}");
    out
}

/// Write the current ring as flight JSON to `path`.
pub fn dump_flight_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_flight_json(&flight_entries()))
}

/// The dump path named by `RECEIVERS_FLIGHT_DUMP`, if set.
pub fn dump_env_path() -> Option<String> {
    std::env::var("RECEIVERS_FLIGHT_DUMP")
        .ok()
        .filter(|p| !p.is_empty())
}

/// Install the panic hook (idempotent): after the normal panic message,
/// a non-empty ring is printed to stderr in the human form and, when
/// `RECEIVERS_FLIGHT_DUMP` is set, written there as flight JSON.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if !crate::flight_enabled() {
                return;
            }
            let entries = flight_entries();
            if entries.is_empty() {
                return;
            }
            eprint!("{}", render_flight_human(&entries));
            if let Some(path) = dump_env_path() {
                match std::fs::write(&path, render_flight_json(&entries)) {
                    Ok(()) => eprintln!("obs: wrote flight JSON to {path}"),
                    Err(e) => eprintln!("obs: flight dump to {path} failed: {e}"),
                }
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::tests::lock;

    #[test]
    fn disabled_recording_is_inert() {
        let _g = lock();
        crate::set_flight_enabled(false);
        reset_flight();
        flight_record("span", "never retained".into(), None);
        assert_eq!(flight_entries(), Vec::new());
    }

    #[test]
    fn ring_retains_the_last_slots_entries() {
        let _g = lock();
        crate::set_flight_enabled(true);
        reset_flight();
        for i in 0..(FLIGHT_SLOTS as u64 + 5) {
            flight_record("span", format!("op {i}"), None);
        }
        let entries = flight_entries();
        crate::set_flight_enabled(false);
        assert_eq!(entries.len(), FLIGHT_SLOTS);
        // Oldest five were overwritten; the retained window is the tail.
        assert_eq!(entries.first().unwrap().seq, 6);
        assert_eq!(entries.last().unwrap().seq, FLIGHT_SLOTS as u64 + 5);
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn flight_json_parses_and_embeds_profiles() {
        let _g = lock();
        crate::set_flight_enabled(true);
        reset_flight();
        flight_record("recovery", "epoch 3, 12 records".into(), None);
        let prof = crate::render_profile_json(&crate::ProfileNode::new("program", "profile"));
        flight_record("profile", "viewed driver".into(), Some(prof));
        let j = render_flight_json(&flight_entries());
        crate::set_flight_enabled(false);
        let v = Value::parse(&j).expect("self-emitted JSON parses");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("receivers-obs/flight/v1")
        );
        let entries = v.get("entries").and_then(Value::as_array).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("kind").and_then(Value::as_str),
            Some("recovery")
        );
        assert!(entries[0].get("profile").is_none());
        let embedded = entries[1].get("profile").expect("profile embedded");
        assert_eq!(
            embedded.get("schema").and_then(Value::as_str),
            Some("receivers-obs/profile/v1")
        );
    }

    #[test]
    fn root_spans_feed_the_ring_when_flight_is_on() {
        let _g = lock();
        crate::set_enabled(true, false);
        crate::set_flight_enabled(true);
        reset_flight();
        crate::reset_spans();
        {
            let _root = crate::span("flight_root");
            let _child = crate::span("flight_child");
        }
        let entries = flight_entries();
        crate::set_flight_enabled(false);
        crate::set_enabled(false, false);
        crate::reset_spans();
        // Only the root span is retained, not every child.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "span");
        assert!(entries[0].summary.starts_with("flight_root"));
    }
}
