//! Counters and fixed-bucket log₂ histograms.
//!
//! Both are declared as statics (via [`counter!`](crate::counter) /
//! [`histogram!`](crate::histogram)) and register themselves in a global
//! registry on first touch, so a snapshot only lists metrics the run
//! actually exercised. The hot path is gated on
//! [`metrics_enabled`](crate::metrics_enabled) — one `Relaxed` load when
//! off — and otherwise costs a few `Relaxed` `fetch_add`s.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket
/// `i ≥ 1` holds values `v` with `2^(i-1) ≤ v < 2^i` — so bucket 64
/// holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

enum MetricRef {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<MetricRef>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotone counter. Declare with [`counter!`](crate::counter).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name` (names are `dotted.lowercase` and must
    /// be listed in `crates/obs/metrics_manifest.txt`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` — a no-op (one relaxed load) when metrics are off.
    #[inline(always)]
    pub fn add(&'static self, n: u64) {
        if crate::metrics_enabled() {
            self.record(n);
        }
    }

    /// Add 1 — a no-op (one relaxed load) when metrics are off.
    #[inline(always)]
    pub fn incr(&'static self) {
        self.add(1);
    }

    fn record(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().push(MetricRef::Counter(self));
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value (whether or not metrics are enabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucket histogram. Declare with [`histogram!`](crate::histogram).
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    /// Wrapping sum of recorded values (documented as such in the JSON
    /// schema; the bucket counts are the primary signal).
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    registered: AtomicBool,
}

/// Bucket index of a value: `0 → 0`, otherwise `1 + floor(log₂ v)`.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub(crate) fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// A new histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Record one value — a no-op (one relaxed load) when metrics are off.
    #[inline(always)]
    pub fn record(&'static self, v: u64) {
        if crate::metrics_enabled() {
            self.record_always(v);
        }
    }

    fn record_always(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().push(MetricRef::Histogram(self));
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed); // wrapping by definition
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.to_owned(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: (0..HISTOGRAM_BUCKETS)
                .filter_map(|i| {
                    let n = self.buckets[i].load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        let (lo, hi) = bucket_range(i);
                        (lo, hi, n)
                    })
                })
                .collect(),
        }
    }
}

/// Declare a static [`Counter`]: `counter!(pub NAME, "metric.name");`.
#[macro_export]
macro_rules! counter {
    ($vis:vis $ident:ident, $name:expr) => {
        $vis static $ident: $crate::Counter = $crate::Counter::new($name);
    };
}

/// Declare a static [`Histogram`]: `histogram!(pub NAME, "metric.name");`.
#[macro_export]
macro_rules! histogram {
    ($vis:vis $ident:ident, $name:expr) => {
        $vis static $ident: $crate::Histogram = $crate::Histogram::new($name);
    };
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Wrapping sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(lo, hi, count)`, `lo..=hi` the value range.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) from the log₂
    /// buckets by linear interpolation within the bucket holding the
    /// rank — exact to within one bucket width, which is the resolution
    /// the histogram stores. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // 1-based rank of the order statistic the quantile names.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, hi, n) in &self.buckets {
            if seen + n >= rank {
                let within = (rank - seen) as f64 / n as f64;
                // f64 cannot represent every u64 exactly (the top bucket
                // spans to u64::MAX); saturate and clamp to the bucket.
                let off = ((hi - lo) as f64 * within) as u64;
                return lo.saturating_add(off).min(hi);
            }
            seen += n;
        }
        self.buckets.last().map_or(0, |&(_, hi, _)| hi)
    }
}

/// Point-in-time state of every touched metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every touched counter.
    pub counters: Vec<(String, u64)>,
    /// Every touched histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if it was touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshot of histogram `name`, if it was touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Every metric name in the snapshot (counters and histograms).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.histograms.iter().map(|h| h.name.as_str()))
            .collect();
        names.sort_unstable();
        names
    }
}

/// Snapshot every registered (= touched at least once) metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters = Vec::new();
    let mut histograms = Vec::new();
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => counters.push((c.name.to_owned(), c.get())),
            MetricRef::Histogram(h) => histograms.push(h.snapshot()),
        }
    }
    drop(reg);
    counters.sort();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Zero every registered metric (for tests and repeated runs).
pub fn reset_metrics() {
    for m in registry().iter() {
        match m {
            MetricRef::Counter(c) => c.value.store(0, Ordering::Relaxed),
            MetricRef::Histogram(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    crate::counter!(TEST_COUNTER, "obs.test.counter");
    crate::histogram!(TEST_HIST, "obs.test.hist");

    #[test]
    fn bucket_edges_are_exact() {
        // The satellite edge cases: 0, 1, u64::MAX — plus the power-of-two
        // boundaries around each bucket seam.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
        assert_eq!(bucket_of(1 << 63), 64);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        assert_eq!(bucket_range(64), (1 << 63, u64::MAX));
        // Every value falls in its bucket's inclusive range.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = bucket_range(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn percentiles_estimate_from_bucket_edges() {
        // Empty histogram: all quantiles 0.
        let empty = HistogramSnapshot {
            name: "h".into(),
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(empty.percentile(0.5), 0);
        // One value in [4, 7]: the estimate is the bucket's upper edge
        // (the tightest bound the log₂ resolution supports).
        let one = HistogramSnapshot {
            name: "h".into(),
            count: 1,
            sum: 5,
            buckets: vec![(4, 7, 1)],
        };
        assert_eq!(one.percentile(0.5), 7);
        assert_eq!(one.percentile(0.99), 7);
        // Ten values in [0,0], ten in [8, 15]: p50 lands on the last
        // zero, p90/p99 interpolate inside the upper bucket, and every
        // estimate stays within its bucket's inclusive range.
        let two = HistogramSnapshot {
            name: "h".into(),
            count: 20,
            sum: 100,
            buckets: vec![(0, 0, 10), (8, 15, 10)],
        };
        assert_eq!(two.percentile(0.5), 0);
        let p90 = two.percentile(0.9);
        let p99 = two.percentile(0.99);
        assert!((8..=15).contains(&p90), "p90 {p90} inside [8, 15]");
        assert_eq!(p99, 15);
        assert!(p90 <= p99);
        // The extreme buckets: 0 and [2^63, u64::MAX].
        let edges = HistogramSnapshot {
            name: "h".into(),
            count: 2,
            sum: 0,
            buckets: vec![(0, 0, 1), (1 << 63, u64::MAX, 1)],
        };
        assert_eq!(edges.percentile(0.5), 0);
        assert_eq!(edges.percentile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_records_edge_values() {
        let _g = lock();
        crate::set_enabled(false, true);
        reset_metrics();
        for v in [0u64, 1, u64::MAX] {
            TEST_HIST.record(v);
        }
        let snap = metrics_snapshot();
        let h = snap.histogram("obs.test.hist").expect("touched");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 0); // 0 + 1 + MAX wraps around to 0
        assert_eq!(
            h.buckets,
            vec![(0, 0, 1), (1, 1, 1), (1 << 63, u64::MAX, 1)]
        );
        crate::set_enabled(false, false);
    }

    #[test]
    fn disabled_metrics_do_not_record() {
        let _g = lock();
        crate::set_enabled(false, false);
        let before = TEST_COUNTER.get();
        TEST_COUNTER.incr();
        TEST_COUNTER.add(41);
        assert_eq!(TEST_COUNTER.get(), before, "disabled adds are no-ops");

        crate::set_enabled(false, true);
        TEST_COUNTER.incr();
        TEST_COUNTER.add(41);
        assert_eq!(TEST_COUNTER.get(), before + 42);
        assert_eq!(
            metrics_snapshot().counter("obs.test.counter"),
            Some(before + 42)
        );
        crate::set_enabled(false, false);
    }
}
