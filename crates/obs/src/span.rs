//! RAII scoped timers with parent/child nesting.
//!
//! Opening a [`span`] while tracing is enabled allocates a process-unique
//! id, remembers the innermost open span on this thread as its parent,
//! and starts a timer; dropping the guard records one [`SpanEvent`] into
//! a thread-local buffer. The buffer is flushed into the global sink when
//! the thread's outermost span closes, when it grows past a bound, and on
//! thread exit — so worker threads spawned by `receivers-rt` never touch
//! the sink lock while spans are open, and scoped threads always hand
//! their events over before they are joined.
//!
//! Cross-thread nesting is explicit: a spawning thread captures
//! [`current_span`] before the spawn and workers open their spans with
//! [`span_under`], which parents them across the thread boundary.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// Span name.
    pub name: &'static str,
    /// Small dense id of the recording thread (not the OS tid).
    pub thread: u64,
    /// Start, in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Flush the thread buffer to the sink once it holds this many events,
/// even with spans still open (bounds memory on span-heavy threads).
const FLUSH_AT: usize = 4096;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch — the same clock span
/// `start_ns` uses, so profile timestamps line up with span traces.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct ThreadSpans {
    thread: u64,
    stack: Vec<u64>,
    buf: Vec<SpanEvent>,
}

impl ThreadSpans {
    fn new() -> Self {
        Self {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            sink().append(&mut self.buf);
        }
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::new());
}

fn sink() -> std::sync::MutexGuard<'static, Vec<SpanEvent>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// An open span; recording happens when the guard drops. Obtained from
/// [`span`] / [`span_under`]; inert (zero work on drop) when tracing was
/// off at creation.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

/// Open a span named `name`, nested under this thread's innermost open
/// span. Returns an inert guard when tracing is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::trace_enabled() {
        return Span { data: None };
    }
    let parent = TLS.with(|t| t.borrow().stack.last().copied().unwrap_or(0));
    open(name, parent)
}

/// Open a span with an explicit parent id (0 for a root) — the
/// cross-thread form: capture [`current_span`] before spawning and pass
/// it to the workers. Returns an inert guard when tracing is off.
#[inline]
pub fn span_under(name: &'static str, parent: u64) -> Span {
    if !crate::trace_enabled() {
        return Span { data: None };
    }
    open(name, parent)
}

fn open(name: &'static str, parent: u64) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    TLS.with(|t| t.borrow_mut().stack.push(id));
    Span {
        data: Some(SpanData {
            id,
            parent,
            name,
            start,
            start_ns,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else {
            return;
        };
        let dur_ns = d.start.elapsed().as_nanos() as u64;
        // Root spans double as flight-recorder breadcrumbs: the ring
        // retains the last N completed top-level operations for the
        // panic/recovery dumps. Only reached when tracing was on at
        // open, so the disabled path is untouched.
        if d.parent == 0 && crate::flight_enabled() {
            crate::flight::flight_record(
                "span",
                format!("{} ({:.3} ms)", d.name, dur_ns as f64 / 1e6),
                None,
            );
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // Guards drop in reverse creation order under normal scoped
            // use; tolerate out-of-order drops by searching from the top.
            if let Some(pos) = t.stack.iter().rposition(|&x| x == d.id) {
                t.stack.remove(pos);
            }
            let thread = t.thread;
            t.buf.push(SpanEvent {
                id: d.id,
                parent: d.parent,
                name: d.name,
                thread,
                start_ns: d.start_ns,
                dur_ns,
            });
            if t.stack.is_empty() || t.buf.len() >= FLUSH_AT {
                t.flush();
            }
        });
    }
}

/// The innermost open span id on this thread (0 when none) — capture
/// before spawning workers and hand to [`span_under`].
pub fn current_span() -> u64 {
    if !crate::trace_enabled() {
        return 0;
    }
    TLS.with(|t| t.borrow().stack.last().copied().unwrap_or(0))
}

/// Drain every recorded span: the current thread's buffer plus the
/// global sink. Spans still open, and buffers of other threads that are
/// still running *outside* any span flush boundary, are not included —
/// `receivers-rt` workers always flush before their scope joins.
pub fn take_spans() -> Vec<SpanEvent> {
    TLS.with(|t| t.borrow_mut().flush());
    std::mem::take(&mut *sink())
}

/// Discard every recorded span (for tests and repeated runs).
pub fn reset_spans() {
    let _ = take_spans();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn nesting_and_parentage_within_a_thread() {
        let _g = lock();
        crate::set_enabled(true, false);
        reset_spans();
        {
            let _a = span("outer");
            let outer_id = current_span();
            assert_ne!(outer_id, 0);
            {
                let _b = span("inner");
                assert_ne!(current_span(), outer_id);
            }
            assert_eq!(current_span(), outer_id);
        }
        let events = take_spans();
        crate::set_enabled(false, false);
        assert_eq!(events.len(), 2);
        // Inner closes first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent, events[1].id);
        assert_eq!(events[1].parent, 0);
        assert!(events[0].start_ns >= events[1].start_ns);
        assert!(events[0].dur_ns <= events[1].dur_ns);
    }

    #[test]
    fn toggling_mid_run_neither_loses_nor_duplicates_events() {
        let _g = lock();
        crate::set_enabled(true, false);
        reset_spans();
        let open_while_on = span("started_enabled");
        crate::set_enabled(false, false);
        {
            // Opened while off: never recorded.
            let _off = span("started_disabled");
        }
        drop(open_while_on); // opened while on: recorded exactly once
        crate::set_enabled(true, false);
        {
            let _again = span("re_enabled");
        }
        let events = take_spans();
        crate::set_enabled(false, false);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["started_enabled", "re_enabled"]);
        // Exactly once each — no duplication across the flush boundary.
        assert_eq!(take_spans(), Vec::new());
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _g = lock();
        crate::set_enabled(true, false);
        reset_spans();
        let root = span("root");
        let parent = current_span();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span_under("worker", parent);
            });
        });
        drop(root);
        let events = take_spans();
        crate::set_enabled(false, false);
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        let root = events.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(worker.parent, root.id);
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = lock();
        crate::set_enabled(false, false);
        reset_spans();
        {
            let _s = span("never");
            assert_eq!(current_span(), 0);
        }
        assert_eq!(take_spans(), Vec::new());
    }
}
