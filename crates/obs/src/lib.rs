//! Zero-dependency structured observability for the receivers workspace.
//!
//! Like `receivers-rt`, this crate is fully offline: it uses nothing but
//! `std`. It provides the three instrumentation primitives every
//! performance-bearing subsystem of the workspace shares:
//!
//! * **Spans** ([`span`], [`span_under`]) — RAII scoped timers with
//!   parent/child nesting. Each thread accumulates finished spans in a
//!   thread-local buffer that is flushed into a global lock-protected
//!   sink when the thread's outermost span closes (and again on thread
//!   exit), so worker threads never contend on the sink mid-flight.
//! * **Counters and histograms** ([`Counter`], [`Histogram`], declared
//!   via [`counter!`]/[`histogram!`]) — statics with atomic updates.
//!   Histograms use fixed log₂ buckets, so recording is a handful of
//!   `fetch_add`s with no allocation.
//! * **Exporters** ([`export`]) — a human-readable summary, a stable
//!   JSON metrics schema (`receivers-obs/metrics/v1`), and the Chrome
//!   `trace_event` format so span logs open directly in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! # The disabled fast path
//!
//! Everything is **off by default**. Every instrumentation macro/guard
//! first consults one process-global atomic ([`trace_enabled`] /
//! [`metrics_enabled`]): when the subsystem is off, the cost is a single
//! `Relaxed` load and a predictable branch — measured at or below timer
//! noise on the `relation_kernel` and `view_maintenance` benches
//! (EXPERIMENTS.md P10). Enable with the `RECEIVERS_TRACE` /
//! `RECEIVERS_METRICS` environment variables (any non-empty value other
//! than `0`), or programmatically with [`enable`] / [`set_enabled`].
//!
//! # Adding a metric
//!
//! ```
//! receivers_obs::counter!(pub WIDGETS_BUILT, "demo.widgets_built");
//! receivers_obs::histogram!(pub WIDGET_SIZE, "demo.widget_size");
//!
//! receivers_obs::set_enabled(false, true);
//! WIDGETS_BUILT.incr();
//! WIDGET_SIZE.record(42);
//! let snap = receivers_obs::metrics_snapshot();
//! assert_eq!(snap.counter("demo.widgets_built"), Some(1));
//! # receivers_obs::set_enabled(false, false);
//! ```
//!
//! New metric *names* must also be added to
//! `crates/obs/metrics_manifest.txt` — CI validates every emitted name
//! against that manifest so renames are deliberate (see the `obs_check`
//! binary).

#![warn(missing_docs)]

pub mod cli;
pub mod export;
pub mod flight;
pub mod json;
mod metrics;
pub mod profile;
mod span;

pub use metrics::{
    metrics_snapshot, reset_metrics, Counter, Histogram, HistogramSnapshot, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use profile::{render_profile_chrome, render_profile_human, render_profile_json, ProfileNode};
pub use span::{current_span, now_ns, reset_spans, span, span_under, take_spans, Span, SpanEvent};

use std::sync::atomic::{AtomicU8, Ordering};

/// Bit set once the state has been initialised (from env or explicitly).
const F_INIT: u8 = 0b100;
/// Bit: span tracing on.
const F_TRACE: u8 = 0b001;
/// Bit: counters/histograms on.
const F_METRICS: u8 = 0b010;
/// Bit: profile collection on (timing attribution in the drivers).
const F_PROFILE: u8 = 0b01000;
/// Bit: flight recorder ring on.
const F_FLIGHT: u8 = 0b10000;

/// `0` means "not yet initialised": the first check reads the
/// environment. Every later check is a single `Relaxed` load.
static STATE: AtomicU8 = AtomicU8::new(0);

#[inline(always)]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        init_from_env()
    } else {
        s
    }
}

#[cold]
fn init_from_env() -> u8 {
    let on = |var: &str| {
        std::env::var_os(var).is_some_and(|v| !v.is_empty() && v != std::ffi::OsStr::new("0"))
    };
    let mut s = F_INIT;
    if on("RECEIVERS_TRACE") {
        s |= F_TRACE;
    }
    if on("RECEIVERS_METRICS") {
        s |= F_METRICS;
    }
    if on("RECEIVERS_PROFILE") {
        s |= F_PROFILE;
    }
    if on("RECEIVERS_FLIGHT") {
        s |= F_FLIGHT;
    }
    // A racing `set_enabled` may already have stored a value; keep it.
    match STATE.compare_exchange(0, s, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => s,
        Err(current) => current,
    }
}

/// Whether span tracing is on (`RECEIVERS_TRACE` or [`set_enabled`]).
#[inline(always)]
pub fn trace_enabled() -> bool {
    state() & F_TRACE != 0
}

/// Whether counters/histograms are on (`RECEIVERS_METRICS` or
/// [`set_enabled`]).
#[inline(always)]
pub fn metrics_enabled() -> bool {
    state() & F_METRICS != 0
}

/// Whether profile collection is on (`RECEIVERS_PROFILE` or
/// [`set_profile_enabled`]). Gates the timing attribution the profiled
/// drivers read (shard queue waits, worker busy time) — one `Relaxed`
/// load when off, exactly like [`metrics_enabled`].
#[inline(always)]
pub fn profile_enabled() -> bool {
    state() & F_PROFILE != 0
}

/// Whether the flight recorder ring is on (`RECEIVERS_FLIGHT` or
/// [`set_flight_enabled`]). One `Relaxed` load when off.
#[inline(always)]
pub fn flight_enabled() -> bool {
    state() & F_FLIGHT != 0
}

/// Turn both tracing and metrics on, overriding the environment.
pub fn enable() {
    set_enabled(true, true);
}

/// Set the trace and metrics switches explicitly, overriding the
/// environment; the profile and flight bits are preserved. Spans opened
/// while tracing was on still record when it is switched off before
/// they close (events are neither lost nor duplicated); spans opened
/// while it is off never record.
pub fn set_enabled(trace: bool, metrics: bool) {
    let mut s = F_INIT | (state() & (F_PROFILE | F_FLIGHT));
    if trace {
        s |= F_TRACE;
    }
    if metrics {
        s |= F_METRICS;
    }
    STATE.store(s, Ordering::Relaxed);
}

/// Flip one state bit on or off, preserving the others.
fn set_bit(bit: u8, on: bool) {
    let s = state();
    let s = if on { s | bit } else { s & !bit };
    STATE.store(F_INIT | s, Ordering::Relaxed);
}

/// Turn profile collection on or off, preserving the other switches.
pub fn set_profile_enabled(on: bool) {
    set_bit(F_PROFILE, on);
}

/// Turn the flight recorder on or off, preserving the other switches.
pub fn set_flight_enabled(on: bool) {
    set_bit(F_FLIGHT, on);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The flag statics are process-global, so the toggle tests and the
    // metric/span tests share one mutex to avoid interleaving.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn toggling_is_idempotent_and_granular() {
        let _g = lock();
        set_enabled(false, false);
        assert!(!trace_enabled() && !metrics_enabled());
        set_enabled(true, false);
        assert!(trace_enabled() && !metrics_enabled());
        set_enabled(false, true);
        assert!(!trace_enabled() && metrics_enabled());
        enable();
        assert!(trace_enabled() && metrics_enabled());
        set_enabled(false, false);
    }

    #[test]
    fn set_enabled_preserves_profile_and_flight_bits() {
        let _g = lock();
        set_enabled(false, false);
        set_profile_enabled(true);
        set_flight_enabled(true);
        // Re-toggling trace/metrics (as ObsCli::parse does) must not
        // silently drop the profile or flight switches.
        set_enabled(true, true);
        assert!(profile_enabled() && flight_enabled());
        set_enabled(false, false);
        assert!(profile_enabled() && flight_enabled());
        set_profile_enabled(false);
        assert!(!profile_enabled() && flight_enabled());
        set_flight_enabled(false);
        assert!(!profile_enabled() && !flight_enabled());
        set_enabled(false, false);
    }
}
