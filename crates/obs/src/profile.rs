//! The profile tree: causally-nested per-operator attribution.
//!
//! One [`ProfileNode`] type serves both halves of the profiler story:
//!
//! * **EXPLAIN** — a static plan description (`ProgramPlan::explain` in
//!   `receivers-sql`): stages, DAG nodes, footprints, and the recorded
//!   rewrite/netting proofs, with every timing field zero.
//! * **EXPLAIN ANALYZE** — the same tree measured: per-node wall time,
//!   rows in/out, selector-cache hits, per-shard receiver placement and
//!   queue waits, WAL bytes and fsync latency, merged across worker
//!   threads into one report.
//!
//! Three renderers share the tree: an indented human form
//! ([`render_profile_human`]), the stable `receivers-obs/profile/v1`
//! JSON document ([`render_profile_json`], validated by `obs_check
//! --profile` in CI), and the Chrome `trace_event` form
//! ([`render_profile_chrome`]) so a profiled run opens in Perfetto next
//! to its span trace.
//!
//! # Profile JSON schema (`receivers-obs/profile/v1`)
//!
//! ```json
//! {
//!   "schema": "receivers-obs/profile/v1",
//!   "nodes": [
//!     {
//!       "id": 1, "parent": 0,            // pre-order ids; parent 0 = root
//!       "name": "stage 0", "kind": "SetUpdate",
//!       "start_ns": 0, "wall_ns": 12345,
//!       "rows_in": 64, "rows_out": 8,
//!       "metrics": { "selector_cache_hits": 1 },
//!       "notes": ["improved: par(E) vectorized"]
//!     }, ...
//!   ]
//! }
//! ```
//!
//! Every non-zero `parent` references an `id` earlier in the array (the
//! tree is closed and topologically ordered).

use std::fmt::Write as _;

use crate::export::json_str;

/// One node of a profile or explain tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Display name ("stage 2", "#4 Guard(…)", "shard 1", "wal").
    pub name: String,
    /// Operator kind ("explain", "SetUpdate", "shard", "wal", …).
    pub kind: String,
    /// Start, nanoseconds since the process trace epoch (0 = unmeasured).
    pub start_ns: u64,
    /// Wall time in nanoseconds (0 = unmeasured / static explain).
    pub wall_ns: u64,
    /// Rows/receivers flowing in (selector rows for a stage).
    pub rows_in: u64,
    /// Rows/receivers flowing out (rows actually written).
    pub rows_out: u64,
    /// Named scalar attributions, in insertion order.
    pub metrics: Vec<(String, u64)>,
    /// Free-form annotations (proof notes, rewrite decisions).
    pub notes: Vec<String>,
    /// Child operators, causally nested.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A new node with every measurement zeroed.
    pub fn new(name: impl Into<String>, kind: impl Into<String>) -> Self {
        ProfileNode {
            name: name.into(),
            kind: kind.into(),
            ..ProfileNode::default()
        }
    }

    /// Builder form: append a note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Append a note in place.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Set (or overwrite) a named metric.
    pub fn set_metric(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.metrics.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((name, value)),
        }
    }

    /// The value of metric `name` on this node, if set.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of nodes in this subtree (including `self`).
    pub fn total_nodes(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProfileNode::total_nodes)
            .sum::<usize>()
    }

    /// Depth-first search for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Pre-order walk over `(node, depth)`.
    fn walk<'a>(&'a self, depth: usize, f: &mut impl FnMut(&'a ProfileNode, usize)) {
        f(self, depth);
        for c in &self.children {
            c.walk(depth + 1, f);
        }
    }
}

/// Render the tree in the indented human form (EXPLAIN / EXPLAIN
/// ANALYZE output). Zero measurements render as plan-only lines, so the
/// same function serves both.
pub fn render_profile_human(root: &ProfileNode) -> String {
    let mut out = String::new();
    root.walk(0, &mut |n, depth| {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}{} [{}]", n.name, n.kind);
        if n.wall_ns > 0 {
            let _ = write!(out, "  {:.3} ms", n.wall_ns as f64 / 1e6);
        }
        if n.rows_in > 0 || n.rows_out > 0 {
            let _ = write!(out, "  rows {} -> {}", n.rows_in, n.rows_out);
        }
        out.push('\n');
        for (name, value) in &n.metrics {
            let _ = writeln!(out, "{pad}  · {name} = {value}");
        }
        for note in &n.notes {
            let _ = writeln!(out, "{pad}  - {note}");
        }
    });
    out
}

/// Render the tree as the stable `receivers-obs/profile/v1` JSON
/// document (no trailing newline): a flat pre-order `nodes` array with
/// synthetic `id`/`parent` links, validated by `obs_check --profile`.
pub fn render_profile_json(root: &ProfileNode) -> String {
    let mut out = String::from("{\n  \"schema\": \"receivers-obs/profile/v1\",\n  \"nodes\": [");
    let mut next_id = 0u64;
    let mut parents: Vec<u64> = Vec::new();
    root.walk(0, &mut |n, depth| {
        next_id += 1;
        let id = next_id;
        parents.truncate(depth);
        let parent = parents.last().copied().unwrap_or(0);
        parents.push(id);
        if id > 1 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {id}, \"parent\": {parent}, \"name\": {}, \"kind\": {}, \
             \"start_ns\": {}, \"wall_ns\": {}, \"rows_in\": {}, \"rows_out\": {}, \
             \"metrics\": {{",
            json_str(&n.name),
            json_str(&n.kind),
            n.start_ns,
            n.wall_ns,
            n.rows_in,
            n.rows_out,
        );
        for (i, (name, value)) in n.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {value}", json_str(name));
        }
        out.push_str("}, \"notes\": [");
        for (i, note) in n.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(note));
        }
        out.push_str("]}");
    });
    out.push_str("\n  ]\n}");
    out
}

/// Render the tree in the Chrome `trace_event` format (same shape the
/// span exporter emits, so `obs_check --chrome` validates it and
/// Perfetto opens it). Unmeasured nodes inherit their parent's start so
/// the nesting survives visually.
pub fn render_profile_chrome(root: &ProfileNode) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    let mut next_id = 0u64;
    let mut parents: Vec<u64> = Vec::new();
    let mut starts: Vec<u64> = Vec::new();
    root.walk(0, &mut |n, depth| {
        next_id += 1;
        let id = next_id;
        parents.truncate(depth);
        starts.truncate(depth);
        let parent = parents.last().copied().unwrap_or(0);
        let start_ns = if n.start_ns > 0 {
            n.start_ns
        } else {
            starts.last().copied().unwrap_or(0)
        };
        parents.push(id);
        starts.push(start_ns);
        if id > 1 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": {}, \"cat\": \"receivers-profile\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": 1, \"ts\": {}.{:03}, \"dur\": {}.{:03}, \
             \"args\": {{\"id\": {id}, \"parent\": {parent}}}}}",
            json_str(&n.name),
            start_ns / 1000,
            start_ns % 1000,
            n.wall_ns / 1000,
            n.wall_ns % 1000,
        );
    });
    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn sample() -> ProfileNode {
        let mut root = ProfileNode::new("program", "profile");
        root.start_ns = 1_000;
        root.wall_ns = 9_000;
        let mut stage = ProfileNode::new("stage 0", "SetUpdate").note("improved: par(E)");
        stage.start_ns = 2_000;
        stage.wall_ns = 3_500;
        stage.rows_in = 64;
        stage.rows_out = 8;
        stage.set_metric("selector_cache_hits", 2);
        stage
            .children
            .push(ProfileNode::new("#1 Scan(emp)", "Scan"));
        root.children.push(stage);
        root.children
            .push(ProfileNode::new("stage 1", "SetDelete").note("netted by stage 3"));
        root
    }

    #[test]
    fn builders_and_queries() {
        let root = sample();
        assert_eq!(root.total_nodes(), 4);
        let stage = root.find("stage 0").expect("present");
        assert_eq!(stage.metric("selector_cache_hits"), Some(2));
        assert_eq!(stage.metric("absent"), None);
        assert!(root.find("#1 Scan(emp)").is_some());
        assert!(root.find("nope").is_none());
    }

    #[test]
    fn human_rendering_shows_measurements_and_notes() {
        let s = render_profile_human(&sample());
        assert!(s.contains("program [profile]"));
        assert!(s.contains("stage 0 [SetUpdate]"));
        assert!(s.contains("rows 64 -> 8"));
        assert!(s.contains("· selector_cache_hits = 2"));
        assert!(s.contains("- improved: par(E)"));
        // Unmeasured leaf renders without a time.
        assert!(s.contains("#1 Scan(emp) [Scan]\n"));
    }

    #[test]
    fn json_rendering_parses_with_closed_preorder_tree() {
        let j = render_profile_json(&sample());
        let v = Value::parse(&j).expect("self-emitted JSON parses");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("receivers-obs/profile/v1")
        );
        let nodes = v.get("nodes").and_then(Value::as_array).unwrap();
        assert_eq!(nodes.len(), 4);
        let mut seen = std::collections::BTreeSet::new();
        for n in nodes {
            let id = n.get("id").and_then(Value::as_u64).unwrap();
            let parent = n.get("parent").and_then(Value::as_u64).unwrap();
            assert!(id != 0 && seen.insert(id), "ids unique and non-zero");
            assert!(parent == 0 || seen.contains(&parent), "pre-order closure");
        }
        // The stage's metrics and notes round-trip.
        let stage = nodes
            .iter()
            .find(|n| n.get("name").and_then(Value::as_str) == Some("stage 0"))
            .unwrap();
        assert_eq!(
            stage
                .get("metrics")
                .and_then(|m| m.get("selector_cache_hits"))
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            stage.get("notes").and_then(Value::as_array).unwrap()[0].as_str(),
            Some("improved: par(E)")
        );
    }

    #[test]
    fn chrome_rendering_matches_the_span_trace_shape() {
        let j = render_profile_chrome(&sample());
        let v = Value::parse(&j).expect("trace JSON parses");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("args").and_then(|a| a.get("id")).is_some());
        }
        // Child events point at their parent's synthetic id.
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
