//! Exporters: human summary, stable metrics JSON, Chrome `trace_event`.
//!
//! Both JSON forms are hand-rolled (the workspace is offline, no serde):
//! keys are emitted in a fixed order and strings escaped per RFC 8259,
//! so outputs are byte-stable given the same inputs.
//!
//! # Metrics schema (`receivers-obs/metrics/v1`)
//!
//! ```json
//! {
//!   "schema": "receivers-obs/metrics/v1",
//!   "counters": { "<name>": <u64>, ... },
//!   "histograms": {
//!     "<name>": {
//!       "count": <u64>,
//!       "sum": <u64>,              // wrapping sum of recorded values
//!       "p50": <u64>, "p90": <u64>, "p99": <u64>,   // estimated from buckets
//!       "buckets": [ [<lo>, <hi>, <count>], ... ]   // non-empty log2 buckets
//!     }, ...
//!   }
//! }
//! ```
//!
//! Counter and histogram names are sorted; every name must appear in
//! `crates/obs/metrics_manifest.txt` (checked by `obs_check`).
//!
//! # Chrome trace schema
//!
//! The span log exports as complete (`"ph": "X"`) trace events — one
//! JSON object per [`SpanEvent`] with `ts`/`dur` in microseconds — which
//! `chrome://tracing` and Perfetto open directly. Span ids and parent
//! ids ride along in `args` so the exact tree survives the round trip.

use std::fmt::Write as _;

use crate::{MetricsSnapshot, SpanEvent};

/// Render a metrics snapshot in the stable `receivers-obs/metrics/v1`
/// JSON schema (no trailing newline).
pub fn render_metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"receivers-obs/metrics/v1\",\n  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {value}", json_str(name));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{ \"count\": {}, \"sum\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            json_str(&h.name),
            h.count,
            h.sum,
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99)
        );
        for (j, (lo, hi, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{lo}, {hi}, {n}]");
        }
        out.push_str("] }");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}");
    out
}

/// Render spans in the Chrome `trace_event` format (JSON object form,
/// no trailing newline). Open the result in `chrome://tracing` or
/// Perfetto.
pub fn render_chrome_trace(spans: &[SpanEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    for (i, e) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\": {}, \"cat\": \"receivers\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {}, \"ts\": {}.{:03}, \"dur\": {}.{:03}, \
             \"args\": {{\"id\": {}, \"parent\": {}}}}}",
            json_str(e.name),
            e.thread,
            e.start_ns / 1000,
            e.start_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            e.id,
            e.parent
        );
    }
    if !spans.is_empty() {
        out.push('\n');
    }
    out.push_str("]}");
    out
}

/// Human-readable run summary: every touched counter, histogram (count,
/// mean, non-empty buckets), and a per-name span aggregation.
pub fn render_summary(snap: &MetricsSnapshot, spans: &[SpanEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== receivers-obs summary ==");
    if snap.counters.is_empty() && snap.histograms.is_empty() {
        let _ = writeln!(out, "counters: (none touched)");
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let width = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:width$}  {value}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for h in &snap.histograms {
            let mean = if h.count > 0 {
                h.sum as f64 / h.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {}  count {}  mean {:.1}  p50 {}  p90 {}  p99 {}",
                h.name,
                h.count,
                mean,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99)
            );
            for (lo, hi, n) in &h.buckets {
                let _ = writeln!(out, "    [{lo}, {hi}]  {n}");
            }
        }
    }
    if !spans.is_empty() {
        let _ = writeln!(out, "spans (by name):");
        let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
        for e in spans {
            match agg.iter_mut().find(|(n, _, _)| *n == e.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += e.dur_ns;
                }
                None => agg.push((e.name, 1, e.dur_ns)),
            }
        }
        agg.sort_by_key(|&(_, _, total)| std::cmp::Reverse(total));
        for (name, count, total_ns) in agg {
            let _ = writeln!(
                out,
                "  {name}  {count} span(s), total {:.3} ms",
                total_ns as f64 / 1e6
            );
        }
    }
    out
}

/// RFC 8259 string escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::HistogramSnapshot;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.b".to_owned(), 3), ("a.c".to_owned(), 0)],
            histograms: vec![HistogramSnapshot {
                name: "h.x".to_owned(),
                count: 2,
                sum: 5,
                buckets: vec![(1, 1, 1), (4, 7, 1)],
            }],
        }
    }

    #[test]
    fn metrics_json_is_stable_and_parses() {
        let j = render_metrics_json(&sample_snapshot());
        let v = Value::parse(&j).expect("self-emitted JSON parses");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("receivers-obs/metrics/v1")
        );
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let h = v.get("histograms").and_then(|h| h.get("h.x")).unwrap();
        assert_eq!(h.get("count").and_then(Value::as_u64), Some(2));
        // Percentiles ride along: p50 is the first bucket's edge, p99
        // the last bucket's.
        assert_eq!(h.get("p50").and_then(Value::as_u64), Some(1));
        assert_eq!(h.get("p99").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_x_events() {
        let spans = vec![
            SpanEvent {
                id: 1,
                parent: 0,
                name: "root",
                thread: 1,
                start_ns: 500,
                dur_ns: 12_345,
            },
            SpanEvent {
                id: 2,
                parent: 1,
                name: "child",
                thread: 2,
                start_ns: 1_000,
                dur_ns: 1_001,
            },
        ];
        let j = render_chrome_trace(&spans);
        let v = Value::parse(&j).expect("trace JSON parses");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("args").and_then(|a| a.get("id")).is_some());
        }
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn summary_mentions_every_metric() {
        let s = render_summary(&sample_snapshot(), &[]);
        assert!(s.contains("a.b") && s.contains("a.c") && s.contains("h.x"));
    }
}
