//! Validate emitted observability files against their documented schemas
//! (DESIGN.md §9) — the CI gate behind the exporters.
//!
//! ```sh
//! obs_check --chrome trace.json
//! obs_check --metrics metrics.json [--manifest crates/obs/metrics_manifest.txt]
//! ```
//!
//! * `--chrome <file>` — the file must be a Chrome `trace_event` object:
//!   a `traceEvents` array of complete (`"ph": "X"`) events with string
//!   `name`, numeric `ts`/`dur`/`pid`/`tid`, and an `args` object
//!   carrying `id`/`parent`; every non-zero `parent` must reference an
//!   `id` present in the file (the span tree is closed).
//! * `--metrics <file>` — the file must follow the
//!   `receivers-obs/metrics/v1` schema; with `--manifest`, every metric
//!   name in the file must be listed in the manifest (one name per line,
//!   `#` comments), so renaming a metric is a deliberate, reviewed
//!   change.
//!
//! Exit status: 0 valid, 1 invalid, 2 usage/IO error.

use std::collections::BTreeSet;

use receivers_obs::json::Value;

fn main() {
    let mut chrome: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut manifest: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_for = |name: &str, slot: &mut Option<String>| match args.next() {
            Some(p) => *slot = Some(p),
            None => usage(&format!("{name} requires a path")),
        };
        match arg.as_str() {
            "--chrome" => path_for("--chrome", &mut chrome),
            "--metrics" => path_for("--metrics", &mut metrics),
            "--manifest" => path_for("--manifest", &mut manifest),
            "--help" | "-h" => {
                eprintln!(
                    "usage: obs_check [--chrome <trace.json>] \
                     [--metrics <metrics.json> [--manifest <manifest.txt>]]"
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if chrome.is_none() && metrics.is_none() {
        usage("nothing to check: pass --chrome and/or --metrics");
    }

    let mut errors = Vec::new();
    if let Some(path) = chrome {
        check_chrome(&read(&path), &path, &mut errors);
    }
    if let Some(path) = metrics {
        let manifest_names = manifest.map(|p| parse_manifest(&read(&p), &p));
        check_metrics(&read(&path), &path, manifest_names.as_ref(), &mut errors);
    }
    if errors.is_empty() {
        println!("obs_check: OK");
    } else {
        for e in &errors {
            eprintln!("obs_check: {e}");
        }
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("obs_check: {msg}");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("{path}: {e}")))
}

fn parse_manifest(text: &str, path: &str) -> BTreeSet<String> {
    let names: BTreeSet<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        usage(&format!("{path}: manifest lists no metric names"));
    }
    names
}

fn check_chrome(text: &str, path: &str, errors: &mut Vec<String>) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        errors.push(format!("{path}: missing `traceEvents` array"));
        return;
    };
    let mut ids = BTreeSet::new();
    let mut parents = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let at = format!("{path}: traceEvents[{i}]");
        if e.get("name").and_then(Value::as_str).is_none() {
            errors.push(format!("{at}: missing string `name`"));
        }
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            errors.push(format!("{at}: `ph` must be \"X\" (complete event)"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if e.get(key).and_then(Value::as_f64).is_none() {
                errors.push(format!("{at}: missing numeric `{key}`"));
            }
        }
        match e.get("args") {
            Some(args) => {
                match args.get("id").and_then(Value::as_u64) {
                    Some(id) if id != 0 => {
                        ids.insert(id);
                    }
                    _ => errors.push(format!("{at}: `args.id` must be a non-zero integer")),
                }
                match args.get("parent").and_then(Value::as_u64) {
                    Some(p) => parents.push((i, p)),
                    None => errors.push(format!("{at}: `args.parent` must be an integer")),
                }
            }
            None => errors.push(format!("{at}: missing `args` object")),
        }
    }
    for (i, p) in parents {
        if p != 0 && !ids.contains(&p) {
            errors.push(format!(
                "{path}: traceEvents[{i}]: parent {p} not present in the file \
                 (span tree is not closed)"
            ));
        }
    }
    if errors.is_empty() {
        println!(
            "obs_check: {path}: {} trace event(s), span tree closed",
            events.len()
        );
    }
}

fn check_metrics(
    text: &str,
    path: &str,
    manifest: Option<&BTreeSet<String>>,
    errors: &mut Vec<String>,
) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    if doc.get("schema").and_then(Value::as_str) != Some("receivers-obs/metrics/v1") {
        errors.push(format!(
            "{path}: `schema` must be \"receivers-obs/metrics/v1\""
        ));
    }
    let mut names = Vec::new();
    match doc.get("counters").and_then(Value::as_object) {
        None => errors.push(format!("{path}: missing `counters` object")),
        Some(counters) => {
            for (name, v) in counters {
                if v.as_u64().is_none() {
                    errors.push(format!("{path}: counter `{name}` is not a u64"));
                }
                names.push(name.clone());
            }
        }
    }
    match doc.get("histograms").and_then(Value::as_object) {
        None => errors.push(format!("{path}: missing `histograms` object")),
        Some(histograms) => {
            for (name, h) in histograms {
                for key in ["count", "sum"] {
                    if h.get(key).and_then(Value::as_u64).is_none() {
                        errors.push(format!("{path}: histogram `{name}` missing u64 `{key}`"));
                    }
                }
                match h.get("buckets").and_then(Value::as_array) {
                    None => errors.push(format!(
                        "{path}: histogram `{name}` missing `buckets` array"
                    )),
                    Some(buckets) => {
                        for b in buckets {
                            let ok = b.as_array().is_some_and(|t| {
                                t.len() == 3 && t.iter().all(|x| x.as_u64().is_some())
                            });
                            if !ok {
                                errors.push(format!(
                                    "{path}: histogram `{name}` bucket is not [lo, hi, count]"
                                ));
                            }
                        }
                    }
                }
                names.push(name.clone());
            }
        }
    }
    if let Some(manifest) = manifest {
        let unknown: Vec<&String> = names.iter().filter(|n| !manifest.contains(*n)).collect();
        if !unknown.is_empty() {
            errors.push(format!(
                "{path}: metric name(s) not in the manifest (add to \
                 crates/obs/metrics_manifest.txt if the rename/addition is deliberate): {}",
                unknown
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    if errors.is_empty() {
        println!("obs_check: {path}: {} metric name(s) valid", names.len());
    }
}
