//! Validate emitted observability files against their documented schemas
//! (DESIGN.md §9) — the CI gate behind the exporters.
//!
//! ```sh
//! obs_check --chrome trace.json
//! obs_check --metrics metrics.json [--manifest crates/obs/metrics_manifest.txt]
//! obs_check --profile profile.json
//! obs_check --flight flight.json
//! ```
//!
//! * `--chrome <file>` — the file must be a Chrome `trace_event` object:
//!   a `traceEvents` array of complete (`"ph": "X"`) events with string
//!   `name`, numeric `ts`/`dur`/`pid`/`tid`, and an `args` object
//!   carrying `id`/`parent`; every non-zero `parent` must reference an
//!   `id` present in the file (the span tree is closed).
//! * `--metrics <file>` — the file must follow the
//!   `receivers-obs/metrics/v1` schema; with `--manifest`, every metric
//!   name in the file must be listed in the manifest (one name per line,
//!   `#` comments), so renaming a metric is a deliberate, reviewed
//!   change.
//! * `--profile <file>` — the file must follow the
//!   `receivers-obs/profile/v1` schema: a `nodes` array whose entries
//!   carry a unique non-zero `id`, a `parent` that is 0 or references an
//!   *earlier* node (pre-order closure, at least one root), string
//!   `name`/`kind`, u64 timing/row fields, a `metrics` object of u64
//!   values, and a `notes` string array.
//! * `--flight <file>` — the file must follow the
//!   `receivers-obs/flight/v1` schema: an `entries` array of
//!   `{seq, at_ns, kind, summary}` with strictly increasing `seq`; an
//!   entry's optional embedded `profile` document is validated with the
//!   `--profile` checker.
//!
//! Exit status: 0 valid, 1 invalid, 2 usage/IO error.

use std::collections::BTreeSet;

use receivers_obs::json::Value;

fn main() {
    let mut chrome: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut manifest: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut flight: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_for = |name: &str, slot: &mut Option<String>| match args.next() {
            Some(p) => *slot = Some(p),
            None => usage(&format!("{name} requires a path")),
        };
        match arg.as_str() {
            "--chrome" => path_for("--chrome", &mut chrome),
            "--metrics" => path_for("--metrics", &mut metrics),
            "--manifest" => path_for("--manifest", &mut manifest),
            "--profile" => path_for("--profile", &mut profile),
            "--flight" => path_for("--flight", &mut flight),
            "--help" | "-h" => {
                eprintln!(
                    "usage: obs_check [--chrome <trace.json>] \
                     [--metrics <metrics.json> [--manifest <manifest.txt>]] \
                     [--profile <profile.json>] [--flight <flight.json>]"
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if chrome.is_none() && metrics.is_none() && profile.is_none() && flight.is_none() {
        usage("nothing to check: pass --chrome, --metrics, --profile, and/or --flight");
    }

    let mut errors = Vec::new();
    if let Some(path) = chrome {
        check_chrome(&read(&path), &path, &mut errors);
    }
    if let Some(path) = metrics {
        let manifest_names = manifest.map(|p| parse_manifest(&read(&p), &p));
        check_metrics(&read(&path), &path, manifest_names.as_ref(), &mut errors);
    }
    if let Some(path) = profile {
        check_profile_file(&read(&path), &path, &mut errors);
    }
    if let Some(path) = flight {
        check_flight(&read(&path), &path, &mut errors);
    }
    if errors.is_empty() {
        println!("obs_check: OK");
    } else {
        for e in &errors {
            eprintln!("obs_check: {e}");
        }
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("obs_check: {msg}");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("{path}: {e}")))
}

fn parse_manifest(text: &str, path: &str) -> BTreeSet<String> {
    let names: BTreeSet<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        usage(&format!("{path}: manifest lists no metric names"));
    }
    names
}

fn check_chrome(text: &str, path: &str, errors: &mut Vec<String>) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        errors.push(format!("{path}: missing `traceEvents` array"));
        return;
    };
    let mut ids = BTreeSet::new();
    let mut parents = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let at = format!("{path}: traceEvents[{i}]");
        if e.get("name").and_then(Value::as_str).is_none() {
            errors.push(format!("{at}: missing string `name`"));
        }
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            errors.push(format!("{at}: `ph` must be \"X\" (complete event)"));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if e.get(key).and_then(Value::as_f64).is_none() {
                errors.push(format!("{at}: missing numeric `{key}`"));
            }
        }
        match e.get("args") {
            Some(args) => {
                match args.get("id").and_then(Value::as_u64) {
                    Some(id) if id != 0 => {
                        ids.insert(id);
                    }
                    _ => errors.push(format!("{at}: `args.id` must be a non-zero integer")),
                }
                match args.get("parent").and_then(Value::as_u64) {
                    Some(p) => parents.push((i, p)),
                    None => errors.push(format!("{at}: `args.parent` must be an integer")),
                }
            }
            None => errors.push(format!("{at}: missing `args` object")),
        }
    }
    for (i, p) in parents {
        if p != 0 && !ids.contains(&p) {
            errors.push(format!(
                "{path}: traceEvents[{i}]: parent {p} not present in the file \
                 (span tree is not closed)"
            ));
        }
    }
    if errors.is_empty() {
        println!(
            "obs_check: {path}: {} trace event(s), span tree closed",
            events.len()
        );
    }
}

fn check_metrics(
    text: &str,
    path: &str,
    manifest: Option<&BTreeSet<String>>,
    errors: &mut Vec<String>,
) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    if doc.get("schema").and_then(Value::as_str) != Some("receivers-obs/metrics/v1") {
        errors.push(format!(
            "{path}: `schema` must be \"receivers-obs/metrics/v1\""
        ));
    }
    let mut names = Vec::new();
    match doc.get("counters").and_then(Value::as_object) {
        None => errors.push(format!("{path}: missing `counters` object")),
        Some(counters) => {
            for (name, v) in counters {
                if v.as_u64().is_none() {
                    errors.push(format!("{path}: counter `{name}` is not a u64"));
                }
                names.push(name.clone());
            }
        }
    }
    match doc.get("histograms").and_then(Value::as_object) {
        None => errors.push(format!("{path}: missing `histograms` object")),
        Some(histograms) => {
            for (name, h) in histograms {
                for key in ["count", "sum"] {
                    if h.get(key).and_then(Value::as_u64).is_none() {
                        errors.push(format!("{path}: histogram `{name}` missing u64 `{key}`"));
                    }
                }
                for key in ["p50", "p90", "p99"] {
                    if h.get(key).is_some_and(|v| v.as_u64().is_none()) {
                        errors.push(format!("{path}: histogram `{name}` `{key}` is not a u64"));
                    }
                }
                match h.get("buckets").and_then(Value::as_array) {
                    None => errors.push(format!(
                        "{path}: histogram `{name}` missing `buckets` array"
                    )),
                    Some(buckets) => {
                        for b in buckets {
                            let ok = b.as_array().is_some_and(|t| {
                                t.len() == 3 && t.iter().all(|x| x.as_u64().is_some())
                            });
                            if !ok {
                                errors.push(format!(
                                    "{path}: histogram `{name}` bucket is not [lo, hi, count]"
                                ));
                            }
                        }
                    }
                }
                names.push(name.clone());
            }
        }
    }
    if let Some(manifest) = manifest {
        let unknown: Vec<&String> = names.iter().filter(|n| !manifest.contains(*n)).collect();
        if !unknown.is_empty() {
            errors.push(format!(
                "{path}: metric name(s) not in the manifest (add to \
                 crates/obs/metrics_manifest.txt if the rename/addition is deliberate): {}",
                unknown
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    if errors.is_empty() {
        println!("obs_check: {path}: {} metric name(s) valid", names.len());
    }
}

fn check_profile_file(text: &str, path: &str, errors: &mut Vec<String>) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    let n = check_profile_doc(&doc, path, errors);
    if errors.is_empty() {
        println!("obs_check: {path}: {n} profile node(s), tree closed");
    }
}

/// Validate one `receivers-obs/profile/v1` document (top-level file or
/// embedded in a flight entry); returns the node count.
fn check_profile_doc(doc: &Value, at: &str, errors: &mut Vec<String>) -> usize {
    if doc.get("schema").and_then(Value::as_str) != Some("receivers-obs/profile/v1") {
        errors.push(format!(
            "{at}: `schema` must be \"receivers-obs/profile/v1\""
        ));
    }
    let Some(nodes) = doc.get("nodes").and_then(Value::as_array) else {
        errors.push(format!("{at}: missing `nodes` array"));
        return 0;
    };
    if nodes.is_empty() {
        errors.push(format!("{at}: `nodes` is empty (no root)"));
    }
    let mut ids = BTreeSet::new();
    for (i, n) in nodes.iter().enumerate() {
        let at = format!("{at}: nodes[{i}]");
        for key in ["name", "kind"] {
            if n.get(key).and_then(Value::as_str).is_none() {
                errors.push(format!("{at}: missing string `{key}`"));
            }
        }
        for key in ["start_ns", "wall_ns", "rows_in", "rows_out"] {
            if n.get(key).and_then(Value::as_u64).is_none() {
                errors.push(format!("{at}: missing u64 `{key}`"));
            }
        }
        match n.get("metrics").and_then(Value::as_object) {
            None => errors.push(format!("{at}: missing `metrics` object")),
            Some(metrics) => {
                for (name, v) in metrics {
                    if v.as_u64().is_none() {
                        errors.push(format!("{at}: metric `{name}` is not a u64"));
                    }
                }
            }
        }
        match n.get("notes").and_then(Value::as_array) {
            None => errors.push(format!("{at}: missing `notes` array")),
            Some(notes) => {
                if notes.iter().any(|v| v.as_str().is_none()) {
                    errors.push(format!("{at}: `notes` must hold strings"));
                }
            }
        }
        match n.get("id").and_then(Value::as_u64) {
            Some(id) if id != 0 => {
                if !ids.insert(id) {
                    errors.push(format!("{at}: duplicate id {id}"));
                }
            }
            _ => errors.push(format!("{at}: `id` must be a non-zero integer")),
        }
        // Pre-order closure: a parent must already have been seen.
        match n.get("parent").and_then(Value::as_u64) {
            Some(0) => {}
            Some(p) if ids.contains(&p) => {}
            Some(p) => errors.push(format!(
                "{at}: parent {p} does not reference an earlier node \
                 (profile tree is not closed/pre-ordered)"
            )),
            None => errors.push(format!("{at}: `parent` must be an integer")),
        }
    }
    nodes.len()
}

fn check_flight(text: &str, path: &str, errors: &mut Vec<String>) {
    let doc = match Value::parse(text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{path}: not valid JSON: {e}"));
            return;
        }
    };
    if doc.get("schema").and_then(Value::as_str) != Some("receivers-obs/flight/v1") {
        errors.push(format!(
            "{path}: `schema` must be \"receivers-obs/flight/v1\""
        ));
    }
    let Some(entries) = doc.get("entries").and_then(Value::as_array) else {
        errors.push(format!("{path}: missing `entries` array"));
        return;
    };
    if entries.is_empty() {
        errors.push(format!("{path}: `entries` is empty (nothing recorded)"));
    }
    let mut last_seq = 0u64;
    for (i, e) in entries.iter().enumerate() {
        let at = format!("{path}: entries[{i}]");
        for key in ["kind", "summary"] {
            if e.get(key).and_then(Value::as_str).is_none() {
                errors.push(format!("{at}: missing string `{key}`"));
            }
        }
        if e.get("at_ns").and_then(Value::as_u64).is_none() {
            errors.push(format!("{at}: missing u64 `at_ns`"));
        }
        match e.get("seq").and_then(Value::as_u64) {
            Some(seq) if seq > last_seq => last_seq = seq,
            Some(seq) => errors.push(format!(
                "{at}: `seq` {seq} is not strictly increasing (prev {last_seq})"
            )),
            None => errors.push(format!("{at}: missing u64 `seq`")),
        }
        if let Some(profile) = e.get("profile") {
            check_profile_doc(profile, &format!("{at}: profile"), errors);
        }
    }
    if errors.is_empty() {
        println!(
            "obs_check: {path}: {} flight entr(ies) valid",
            entries.len()
        );
    }
}
