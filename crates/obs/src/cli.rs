//! Shared command-line surface for the observability layer.
//!
//! Every example/tool binary in the workspace accepts the same three
//! flags; this module owns their parsing and the end-of-run export so
//! the binaries stay a two-call affair:
//!
//! * `--trace <out.json>` — turn span tracing on and write a Chrome
//!   `trace_event` file on [`ObsCli::finish`];
//! * `--metrics` — turn counters/histograms on and print the human
//!   summary to stderr on finish;
//! * `--metrics-json <out.json>` — turn counters/histograms on and
//!   write the `receivers-obs/metrics/v1` document to a file instead.
//!
//! ```
//! let (cli, rest) = receivers_obs::cli::ObsCli::parse(
//!     ["--metrics", "input.sql"].iter().map(|s| s.to_string()),
//! )
//! .unwrap();
//! assert_eq!(rest, ["input.sql"]);
//! assert!(cli.metrics_requested());
//! # receivers_obs::set_enabled(false, false);
//! ```

use crate::export::{render_chrome_trace, render_metrics_json, render_summary};
use crate::{metrics_snapshot, set_enabled, take_spans, trace_enabled};

/// Parsed observability flags. Construct with [`ObsCli::parse`]; call
/// [`ObsCli::finish`] once the instrumented work is done.
#[derive(Debug, Default, Clone)]
pub struct ObsCli {
    /// Where to write the Chrome trace (`--trace`).
    pub trace_path: Option<String>,
    /// Whether to print the human metrics summary (`--metrics`).
    pub metrics_stderr: bool,
    /// Where to write the metrics JSON document (`--metrics-json`).
    pub metrics_json_path: Option<String>,
}

impl ObsCli {
    /// Split the observability flags out of `args`, returning the parsed
    /// flags and the remaining (non-obs) arguments in order. Enables the
    /// requested subsystems as a side effect — instrumentation recorded
    /// from this point on is captured. Errors on a flag missing its
    /// value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(ObsCli, Vec<String>), String> {
        let mut cli = ObsCli::default();
        let mut rest = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace" => match args.next() {
                    Some(p) => cli.trace_path = Some(p),
                    None => return Err("--trace requires an output path".into()),
                },
                "--metrics" => cli.metrics_stderr = true,
                "--metrics-json" => match args.next() {
                    Some(p) => cli.metrics_json_path = Some(p),
                    None => return Err("--metrics-json requires an output path".into()),
                },
                _ => rest.push(arg),
            }
        }
        // Flags add to whatever the environment already switched on.
        set_enabled(
            trace_enabled() || cli.trace_path.is_some(),
            crate::metrics_enabled() || cli.metrics_requested(),
        );
        Ok((cli, rest))
    }

    /// Whether any metrics output was requested.
    pub fn metrics_requested(&self) -> bool {
        self.metrics_stderr || self.metrics_json_path.is_some()
    }

    /// Export everything the run recorded: write the Chrome trace and/or
    /// metrics JSON files, print the stderr summary. Returns the first
    /// I/O error, after attempting every output.
    pub fn finish(&self) -> std::io::Result<()> {
        let spans = if self.trace_path.is_some() {
            take_spans()
        } else {
            Vec::new()
        };
        let snap = metrics_snapshot();
        let mut result = Ok(());
        if let Some(path) = &self.trace_path {
            let r = std::fs::write(path, render_chrome_trace(&spans));
            if r.is_ok() {
                eprintln!("obs: wrote Chrome trace ({} spans) to {path}", spans.len());
            }
            result = result.and(r);
        }
        if let Some(path) = &self.metrics_json_path {
            let r = std::fs::write(path, render_metrics_json(&snap));
            if r.is_ok() {
                eprintln!("obs: wrote metrics JSON to {path}");
            }
            result = result.and(r);
        }
        if self.metrics_stderr {
            eprint!("{}", render_summary(&snap, &[]));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_splits_obs_flags_from_the_rest() {
        let _g = crate::tests::lock();
        let (cli, rest) = ObsCli::parse(strings(&[
            "a.sql",
            "--trace",
            "t.json",
            "--metrics",
            "b.sql",
            "--metrics-json",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(cli.trace_path.as_deref(), Some("t.json"));
        assert_eq!(cli.metrics_json_path.as_deref(), Some("m.json"));
        assert!(cli.metrics_stderr && cli.metrics_requested());
        assert_eq!(rest, ["a.sql", "b.sql"]);
        assert!(crate::trace_enabled() && crate::metrics_enabled());
        set_enabled(false, false);
    }

    #[test]
    fn missing_values_error() {
        let _g = crate::tests::lock();
        assert!(ObsCli::parse(strings(&["--trace"])).is_err());
        assert!(ObsCli::parse(strings(&["--metrics-json"])).is_err());
        set_enabled(false, false);
    }
}
