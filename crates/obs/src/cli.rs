//! Shared command-line surface for the observability layer.
//!
//! Every example/tool binary in the workspace accepts the same three
//! flags; this module owns their parsing and the end-of-run export so
//! the binaries stay a two-call affair:
//!
//! * `--trace <out.json>` — turn span tracing on and write a Chrome
//!   `trace_event` file on [`ObsCli::finish`];
//! * `--metrics` — turn counters/histograms on and print the human
//!   summary to stderr on finish;
//! * `--metrics-json <out.json>` — turn counters/histograms on and
//!   write the `receivers-obs/metrics/v1` document to a file instead.
//!
//! Binaries that run compiled programs also take the profiler surface:
//!
//! * `--explain-plan` — print the static EXPLAIN tree to stdout;
//! * `--explain-json <out.json>` — write it as profile JSON instead;
//! * `--profile` — collect an EXPLAIN ANALYZE profile and print the
//!   human tree to stderr;
//! * `--profile-json <out.json>` / `--profile-chrome <out.json>` —
//!   write the measured profile as `receivers-obs/profile/v1` JSON or a
//!   Chrome trace.
//!
//! The profile flags flip [`set_profile_enabled`](crate::set_profile_enabled)
//! at parse time; the binary hands the trees it built to
//! [`ObsCli::export_explain`] / [`ObsCli::export_profile`].
//!
//! ```
//! let (cli, rest) = receivers_obs::cli::ObsCli::parse(
//!     ["--metrics", "input.sql"].iter().map(|s| s.to_string()),
//! )
//! .unwrap();
//! assert_eq!(rest, ["input.sql"]);
//! assert!(cli.metrics_requested());
//! # receivers_obs::set_enabled(false, false);
//! ```

use crate::export::{render_chrome_trace, render_metrics_json, render_summary};
use crate::profile::{render_profile_chrome, render_profile_human, render_profile_json};
use crate::{metrics_snapshot, set_enabled, take_spans, trace_enabled, ProfileNode};

/// Parsed observability flags. Construct with [`ObsCli::parse`]; call
/// [`ObsCli::finish`] once the instrumented work is done.
#[derive(Debug, Default, Clone)]
pub struct ObsCli {
    /// Where to write the Chrome trace (`--trace`).
    pub trace_path: Option<String>,
    /// Whether to print the human metrics summary (`--metrics`).
    pub metrics_stderr: bool,
    /// Where to write the metrics JSON document (`--metrics-json`).
    pub metrics_json_path: Option<String>,
    /// Whether to print the EXPLAIN tree to stdout (`--explain-plan`).
    pub explain_stdout: bool,
    /// Where to write the EXPLAIN tree as profile JSON (`--explain-json`).
    pub explain_json_path: Option<String>,
    /// Whether to print the measured profile to stderr (`--profile`).
    pub profile_stderr: bool,
    /// Where to write the profile JSON document (`--profile-json`).
    pub profile_json_path: Option<String>,
    /// Where to write the profile as a Chrome trace (`--profile-chrome`).
    pub profile_chrome_path: Option<String>,
}

impl ObsCli {
    /// Split the observability flags out of `args`, returning the parsed
    /// flags and the remaining (non-obs) arguments in order. Enables the
    /// requested subsystems as a side effect — instrumentation recorded
    /// from this point on is captured. Errors on a flag missing its
    /// value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(ObsCli, Vec<String>), String> {
        let mut cli = ObsCli::default();
        let mut rest = Vec::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace" => match args.next() {
                    Some(p) => cli.trace_path = Some(p),
                    None => return Err("--trace requires an output path".into()),
                },
                "--metrics" => cli.metrics_stderr = true,
                "--metrics-json" => match args.next() {
                    Some(p) => cli.metrics_json_path = Some(p),
                    None => return Err("--metrics-json requires an output path".into()),
                },
                "--explain-plan" => cli.explain_stdout = true,
                "--explain-json" => match args.next() {
                    Some(p) => cli.explain_json_path = Some(p),
                    None => return Err("--explain-json requires an output path".into()),
                },
                "--profile" => cli.profile_stderr = true,
                "--profile-json" => match args.next() {
                    Some(p) => cli.profile_json_path = Some(p),
                    None => return Err("--profile-json requires an output path".into()),
                },
                "--profile-chrome" => match args.next() {
                    Some(p) => cli.profile_chrome_path = Some(p),
                    None => return Err("--profile-chrome requires an output path".into()),
                },
                _ => rest.push(arg),
            }
        }
        // Flags add to whatever the environment already switched on.
        set_enabled(
            trace_enabled() || cli.trace_path.is_some(),
            crate::metrics_enabled() || cli.metrics_requested(),
        );
        if cli.profile_requested() {
            crate::set_profile_enabled(true);
        }
        Ok((cli, rest))
    }

    /// Whether any metrics output was requested.
    pub fn metrics_requested(&self) -> bool {
        self.metrics_stderr || self.metrics_json_path.is_some()
    }

    /// Whether a measured (EXPLAIN ANALYZE) profile was requested.
    pub fn profile_requested(&self) -> bool {
        self.profile_stderr
            || self.profile_json_path.is_some()
            || self.profile_chrome_path.is_some()
    }

    /// Whether a static EXPLAIN tree was requested.
    pub fn explain_requested(&self) -> bool {
        self.explain_stdout || self.explain_json_path.is_some()
    }

    /// Export the static EXPLAIN tree per the parsed flags: print the
    /// human form to stdout (`--explain-plan`) and/or write profile
    /// JSON (`--explain-json`).
    pub fn export_explain(&self, explain: &ProfileNode) -> std::io::Result<()> {
        if self.explain_stdout {
            print!("{}", render_profile_human(explain));
        }
        let mut result = Ok(());
        if let Some(path) = &self.explain_json_path {
            let r = std::fs::write(path, render_profile_json(explain));
            if r.is_ok() {
                eprintln!("obs: wrote explain JSON to {path}");
            }
            result = result.and(r);
        }
        result
    }

    /// Export one measured profile per the parsed flags: the human tree
    /// to stderr (`--profile`), profile JSON (`--profile-json`), and/or
    /// a Chrome trace (`--profile-chrome`). Call once per profiled run;
    /// later calls overwrite the files of earlier ones.
    pub fn export_profile(&self, profile: &ProfileNode) -> std::io::Result<()> {
        if self.profile_stderr {
            eprint!("{}", render_profile_human(profile));
        }
        let mut result = Ok(());
        if let Some(path) = &self.profile_json_path {
            let r = std::fs::write(path, render_profile_json(profile));
            if r.is_ok() {
                eprintln!("obs: wrote profile JSON to {path}");
            }
            result = result.and(r);
        }
        if let Some(path) = &self.profile_chrome_path {
            let r = std::fs::write(path, render_profile_chrome(profile));
            if r.is_ok() {
                eprintln!("obs: wrote profile Chrome trace to {path}");
            }
            result = result.and(r);
        }
        result
    }

    /// Export everything the run recorded: write the Chrome trace and/or
    /// metrics JSON files, print the stderr summary. Returns the first
    /// I/O error, after attempting every output.
    pub fn finish(&self) -> std::io::Result<()> {
        let spans = if self.trace_path.is_some() {
            take_spans()
        } else {
            Vec::new()
        };
        let snap = metrics_snapshot();
        let mut result = Ok(());
        if let Some(path) = &self.trace_path {
            let r = std::fs::write(path, render_chrome_trace(&spans));
            if r.is_ok() {
                eprintln!("obs: wrote Chrome trace ({} spans) to {path}", spans.len());
            }
            result = result.and(r);
        }
        if let Some(path) = &self.metrics_json_path {
            let r = std::fs::write(path, render_metrics_json(&snap));
            if r.is_ok() {
                eprintln!("obs: wrote metrics JSON to {path}");
            }
            result = result.and(r);
        }
        if self.metrics_stderr {
            eprint!("{}", render_summary(&snap, &[]));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parse_splits_obs_flags_from_the_rest() {
        let _g = crate::tests::lock();
        let (cli, rest) = ObsCli::parse(strings(&[
            "a.sql",
            "--trace",
            "t.json",
            "--metrics",
            "b.sql",
            "--metrics-json",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(cli.trace_path.as_deref(), Some("t.json"));
        assert_eq!(cli.metrics_json_path.as_deref(), Some("m.json"));
        assert!(cli.metrics_stderr && cli.metrics_requested());
        assert_eq!(rest, ["a.sql", "b.sql"]);
        assert!(crate::trace_enabled() && crate::metrics_enabled());
        set_enabled(false, false);
    }

    #[test]
    fn profile_flags_parse_and_enable_collection() {
        let _g = crate::tests::lock();
        let (cli, rest) = ObsCli::parse(strings(&[
            "--explain-plan",
            "--explain-json",
            "e.json",
            "--profile",
            "prog.sql",
            "--profile-json",
            "p.json",
            "--profile-chrome",
            "p-trace.json",
        ]))
        .unwrap();
        assert!(cli.explain_stdout && cli.explain_requested());
        assert_eq!(cli.explain_json_path.as_deref(), Some("e.json"));
        assert!(cli.profile_stderr && cli.profile_requested());
        assert_eq!(cli.profile_json_path.as_deref(), Some("p.json"));
        assert_eq!(cli.profile_chrome_path.as_deref(), Some("p-trace.json"));
        assert_eq!(rest, ["prog.sql"]);
        assert!(crate::profile_enabled());
        crate::set_profile_enabled(false);
        set_enabled(false, false);
    }

    #[test]
    fn explain_alone_does_not_enable_profiling() {
        let _g = crate::tests::lock();
        crate::set_profile_enabled(false);
        let (cli, _) = ObsCli::parse(strings(&["--explain-plan"])).unwrap();
        assert!(cli.explain_requested() && !cli.profile_requested());
        assert!(!crate::profile_enabled());
        set_enabled(false, false);
    }

    #[test]
    fn missing_values_error() {
        let _g = crate::tests::lock();
        assert!(ObsCli::parse(strings(&["--trace"])).is_err());
        assert!(ObsCli::parse(strings(&["--metrics-json"])).is_err());
        assert!(ObsCli::parse(strings(&["--explain-json"])).is_err());
        assert!(ObsCli::parse(strings(&["--profile-json"])).is_err());
        assert!(ObsCli::parse(strings(&["--profile-chrome"])).is_err());
        set_enabled(false, false);
    }
}
