//! A minimal JSON reader (RFC 8259 subset) for validating the files the
//! exporters emit — used by the `obs_check` binary, the schema tests, and
//! downstream fixture tests that must assert "this output is valid
//! JSON" without external crates.
//!
//! Numbers are kept both as `f64` and, when they are non-negative
//! integers, as exact `u64` (counter values can exceed 2⁵³).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; exact `u64` preserved separately when representable.
    Num {
        /// The value as a double (lossy beyond 2⁵³).
        f: f64,
        /// Exact value when the literal was a non-negative integer ≤ u64::MAX.
        u: Option<u64>,
    },
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned integer payload, if one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num { u, .. } => *u,
            _ => None,
        }
    }

    /// The numeric payload as a double, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num { f, .. } => Some(*f),
            _ => None,
        }
    }

    /// The element list, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The member map, if an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(v));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let f: f64 = text
            .parse()
            .map_err(|e| format!("bad number `{text}`: {e}"))?;
        Ok(Value::Num {
            f,
            u: text.parse::<u64>().ok(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Value::parse(r#"{"a": [1, 2.5, {"b": "x\n"}], "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .and_then(Value::as_str),
            Some("x\n")
        );
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn u64_max_is_exact() {
        let v = Value::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("nul").is_err());
    }
}
