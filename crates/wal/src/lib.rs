//! # receivers-wal — the durability layer
//!
//! The paper's update semantics are an ordered, replayable edit
//! sequence, and the repo already materializes exactly that as the
//! [`InstanceTxn`](receivers_objectbase::InstanceTxn) delta log. This
//! crate persists the stream, turning the reproduction into a
//! restartable store:
//!
//! - [`record`] — the binary WAL record format: length-prefixed,
//!   CRC32-framed [`DeltaOp`](receivers_objectbase::DeltaOp) batches
//!   with monotonic transaction sequence numbers, plus a total decoder
//!   that maps any byte stream to a valid prefix and a structured
//!   torn-tail verdict.
//! - [`snapshot`] — compacted snapshots of the flat relation arenas
//!   (contiguous `Vec<Oid>` blocks — near-free to write) and the
//!   manifest tying a checkpoint epoch to its WAL segment.
//! - [`storage`] — the [`WalStorage`] abstraction: real directories
//!   ([`DirStorage`]) and a deterministic fault-injecting in-memory
//!   implementation ([`FaultStorage`]) that kills writes at an exact
//!   byte budget, with keep-all / drop-unsynced / bit-flip reopen
//!   modes — the engine of the crash-recovery differential suite
//!   (`tests/wal_recovery.rs` at the workspace root).
//! - [`store`] — [`DurableStore`]: group-committed appends behind a
//!   [`WalConfig`] knob, epoch checkpoints, and recovery
//!   (manifest → snapshot → tail replay through
//!   [`redo_ops`](receivers_objectbase::redo_ops) into the instance,
//!   then one [`DatabaseView`](receivers_relalg::DatabaseView) rebuild,
//!   truncating a torn tail). [`DurableSink`] adapts the
//!   [`DeltaObserver`](receivers_objectbase::DeltaObserver) protocol so
//!   each committed transaction lands as one WAL record and
//!   sequence-level rollbacks land as compensation records.
//!
//! The recovery invariant, pinned by the crash suite: for every prefix
//! of the written byte stream, reopening restores an instance and view
//! **bit-identical** (hash + index equality) to some committed state of
//! the original run — the last durable one.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod record;
pub mod snapshot;
pub mod storage;
pub mod store;

pub use crc::crc32;
pub use error::{WalError, WalResult};
pub use record::{
    decode_log, decode_record, encode_record, invert_op, Decoded, DecodedLog, Record,
};
pub use snapshot::{decode_snapshot, encode_snapshot, schema_digest, Manifest, SnapshotHeader};
pub use storage::{DirStorage, FaultStorage, WalStorage};
pub use store::{DurableSink, DurableStore, RecoveryReport, WalConfig, WalStats};

#[cfg(test)]
mod tests {
    /// Every `wal.*` metric this crate can emit must be declared in the
    /// observability manifest, so `obs_check --metrics` stays an
    /// exhaustive gate.
    #[test]
    fn all_wal_metrics_are_in_the_manifest() {
        let manifest = include_str!("../../obs/metrics_manifest.txt");
        let declared: Vec<&str> = manifest
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        for name in [
            "wal.records_appended",
            "wal.bytes_appended",
            "wal.syncs",
            "wal.checkpoints",
            "wal.snapshot_bytes",
            "wal.compensation_records",
            "wal.recoveries",
            "wal.records_replayed",
            "wal.ops_replayed",
            "wal.torn_tails",
            "wal.truncated_bytes",
            "wal.record_bytes",
        ] {
            assert!(
                declared.contains(&name),
                "metric {name} missing from crates/obs/metrics_manifest.txt"
            );
        }
    }
}
