//! The storage abstraction under the durable store, with two
//! implementations: real directories ([`DirStorage`]) and a deterministic
//! fault-injecting in-memory filesystem ([`FaultStorage`]) that kills
//! writes at an exact byte budget — the engine of the crash-recovery
//! differential suite.
//!
//! The trait is deliberately tiny — named flat files, append, atomic
//! whole-file replace, sync, truncate — because that is all a WAL plus
//! snapshot/manifest scheme needs, and a small surface is what makes the
//! fault model exhaustive: every mutation has a well-defined byte cost,
//! so a seeded sweep over budgets visits every possible torn prefix.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use crate::error::{WalError, WalResult};

/// Flat-namespace storage for WAL segments, snapshots, and the manifest.
///
/// Contract (what [`crate::DurableStore`] relies on and the crash suite
/// enforces):
/// - `append` may tear: on failure an arbitrary *prefix* of the new bytes
///   may have been written, but earlier content is intact.
/// - `write_atomic` never tears: after a crash the file holds either the
///   old content or the new, never a mix.
/// - `sync` makes all prior writes to the named file crash-durable; a
///   fault-injecting reopen may discard bytes written after the last
///   sync, but never synced ones.
pub trait WalStorage {
    /// Read a whole file, or `None` if it does not exist.
    fn read(&self, name: &str) -> WalResult<Option<Vec<u8>>>;
    /// Append bytes to a file, creating it if missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> WalResult<()>;
    /// Replace a file's content all-or-nothing.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> WalResult<()>;
    /// Make prior writes to the file crash-durable.
    fn sync(&mut self, name: &str) -> WalResult<()>;
    /// Shrink a file to `len` bytes (no-op if already shorter or absent).
    fn truncate(&mut self, name: &str, len: u64) -> WalResult<()>;
    /// Delete a file if present.
    fn remove(&mut self, name: &str) -> WalResult<()>;
    /// All file names, sorted.
    fn list(&self) -> WalResult<Vec<String>>;
}

// ---------------------------------------------------------------------------
// Real directories
// ---------------------------------------------------------------------------

/// [`WalStorage`] over a real directory via `std::fs`.
///
/// `write_atomic` is temp-file + `sync_all` + rename (plus a best-effort
/// directory sync), the standard recipe for an atomic replace on POSIX
/// filesystems.
#[derive(Debug)]
pub struct DirStorage {
    root: PathBuf,
}

impl DirStorage {
    /// Open (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> WalResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(io_err)?;
        Ok(Self { root })
    }

    /// The directory this storage lives in.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) {
        // Durability of the rename itself; failure here is not actionable.
        if let Ok(d) = std::fs::File::open(&self.root) {
            let _ = d.sync_all();
        }
    }
}

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

impl WalStorage for DirStorage {
    fn read(&self, name: &str) -> WalResult<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> WalResult<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> WalResult<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, self.path(name)).map_err(io_err)?;
        self.sync_dir();
        Ok(())
    }

    fn sync(&mut self, name: &str) -> WalResult<()> {
        match std::fs::File::open(self.path(name)) {
            Ok(f) => f.sync_all().map_err(io_err),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn truncate(&mut self, name: &str, len: u64) -> WalResult<()> {
        match std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
        {
            Ok(f) => {
                let cur = f.metadata().map_err(io_err)?.len();
                if cur > len {
                    f.set_len(len).map_err(io_err)?;
                    f.sync_all().map_err(io_err)?;
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn remove(&mut self, name: &str) -> WalResult<()> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn list(&self) -> WalResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            if entry.file_type().map_err(io_err)?.is_file() {
                if let Some(n) = entry.file_name().to_str() {
                    names.push(n.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct FaultFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a `reopen_dropping_unsynced`.
    synced_len: usize,
}

/// In-memory [`WalStorage`] that kills writes at an exact byte budget.
///
/// Every mutating byte increments a monotonic *cost* counter. When a
/// budget is armed, the write that would exceed it is torn at exactly the
/// budget boundary — an `append` keeps the affordable prefix, a
/// `write_atomic` keeps the old content — the storage flips to the
/// *crashed* state, and every later mutation fails with
/// [`WalError::Crashed`]. Reads keep working: the harness inspects the
/// wreckage exactly as recovery will see it.
///
/// Because the workload is deterministic, the same seed produces the same
/// byte stream, so sweeping the budget over `0..=total_cost()` visits
/// every possible crash prefix. [`Self::reopen`] models power-back-on with
/// all written bytes intact; [`Self::reopen_dropping_unsynced`] models a
/// lost page cache (each file rolls back to its last synced length); and
/// [`Self::flip_bit`] models media corruption for the bit-flip arm of the
/// suite.
#[derive(Debug, Clone, Default)]
pub struct FaultStorage {
    files: BTreeMap<String, FaultFile>,
    budget: Option<u64>,
    cost: u64,
    crashed: bool,
}

impl FaultStorage {
    /// An empty storage with no crash point armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a crash: the mutation that would push total cost past
    /// `budget` bytes is torn there.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    /// Total bytes of mutation cost incurred so far (the crash-point
    /// coordinate system of the sweep).
    pub fn total_cost(&self) -> u64 {
        self.cost
    }

    /// Has the armed crash point fired?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Current length of a file (0 if absent).
    pub fn len(&self, name: &str) -> usize {
        self.files.get(name).map_or(0, |f| f.data.len())
    }

    /// True when no file exists.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Synced length of a file (0 if absent).
    pub fn synced_len(&self, name: &str) -> usize {
        self.files.get(name).map_or(0, |f| f.synced_len)
    }

    /// Power back on with all written bytes intact (the disk absorbed
    /// everything before the crash). Clears the crash state and the
    /// budget; all surviving bytes count as synced.
    pub fn reopen(mut self) -> Self {
        self.budget = None;
        self.crashed = false;
        for f in self.files.values_mut() {
            f.synced_len = f.data.len();
        }
        self
    }

    /// Power back on after losing the page cache: every file rolls back
    /// to its last synced length. Clears the crash state and the budget.
    pub fn reopen_dropping_unsynced(mut self) -> Self {
        self.budget = None;
        self.crashed = false;
        for f in self.files.values_mut() {
            f.data.truncate(f.synced_len);
        }
        self
    }

    /// Flip one bit of a stored file (test helper for the corruption
    /// arm). No-op when the coordinates fall outside the file.
    pub fn flip_bit(&mut self, name: &str, byte: usize, bit: u8) {
        if let Some(f) = self.files.get_mut(name) {
            if let Some(b) = f.data.get_mut(byte) {
                *b ^= 1 << (bit & 7);
            }
        }
    }

    /// Charge `want` bytes of mutation cost; returns how many are
    /// affordable. Flips to crashed when short.
    fn charge(&mut self, want: usize) -> WalResult<usize> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        let affordable = match self.budget {
            Some(b) => {
                let left = b.saturating_sub(self.cost);
                (left as usize).min(want)
            }
            None => want,
        };
        self.cost += affordable as u64;
        if affordable < want {
            self.crashed = true;
        }
        Ok(affordable)
    }
}

impl WalStorage for FaultStorage {
    fn read(&self, name: &str) -> WalResult<Option<Vec<u8>>> {
        Ok(self.files.get(name).map(|f| f.data.clone()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> WalResult<()> {
        let n = self.charge(bytes.len())?;
        let file = self.files.entry(name.to_owned()).or_default();
        file.data.extend_from_slice(&bytes[..n]);
        if n < bytes.len() {
            Err(WalError::Crashed)
        } else {
            Ok(())
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> WalResult<()> {
        // All-or-nothing: a torn budget leaves the old content untouched.
        let n = self.charge(bytes.len())?;
        if n < bytes.len() {
            return Err(WalError::Crashed);
        }
        let file = self.files.entry(name.to_owned()).or_default();
        file.data = bytes.to_vec();
        // An atomic replace is only visible once durable (rename + dir
        // sync in the real implementation), so it lands synced.
        file.synced_len = file.data.len();
        Ok(())
    }

    fn sync(&mut self, name: &str) -> WalResult<()> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if let Some(f) = self.files.get_mut(name) {
            f.synced_len = f.data.len();
        }
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> WalResult<()> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        if let Some(f) = self.files.get_mut(name) {
            let len = len as usize;
            if f.data.len() > len {
                f.data.truncate(len);
                f.synced_len = f.synced_len.min(len);
            }
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> WalResult<()> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        self.files.remove(name);
        Ok(())
    }

    fn list(&self) -> WalResult<Vec<String>> {
        Ok(self.files.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_tears_at_exactly_the_budget() {
        for budget in 0..=10u64 {
            let mut s = FaultStorage::with_budget(budget);
            let r = s.append("wal", b"0123456789");
            if budget >= 10 {
                r.unwrap();
                assert!(!s.crashed());
            } else {
                assert_eq!(r.unwrap_err(), WalError::Crashed);
                assert!(s.crashed());
            }
            assert_eq!(s.len("wal"), budget.min(10) as usize);
            // Later mutations all fail; reads still work.
            assert_eq!(s.append("wal", b"x").is_err(), budget < 11 || s.crashed());
            let _ = s.read("wal").unwrap();
        }
    }

    #[test]
    fn write_atomic_is_all_or_nothing() {
        let mut s = FaultStorage::new();
        s.write_atomic("m", b"old-content").unwrap();
        let spent = s.total_cost();
        let mut torn = s.clone();
        torn.budget = Some(spent + 3); // not enough for the 11-byte replace
        assert_eq!(
            torn.write_atomic("m", b"NEW-CONTENT").unwrap_err(),
            WalError::Crashed
        );
        assert_eq!(torn.read("m").unwrap().unwrap(), b"old-content");
    }

    #[test]
    fn reopen_dropping_unsynced_rolls_back_to_last_sync() {
        let mut s = FaultStorage::new();
        s.append("wal", b"durable").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"+lost").unwrap();
        let s = s.reopen_dropping_unsynced();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"durable");
        let mut s2 = FaultStorage::new();
        s2.append("wal", b"durable").unwrap();
        s2.sync("wal").unwrap();
        s2.append("wal", b"+kept").unwrap();
        let s2 = s2.reopen();
        assert_eq!(s2.read("wal").unwrap().unwrap(), b"durable+kept");
    }

    #[test]
    fn deterministic_cost_stream() {
        let run = |budget: Option<u64>| {
            let mut s = budget.map_or_else(FaultStorage::new, FaultStorage::with_budget);
            let _ = s.append("a", b"hello");
            let _ = s.write_atomic("b", b"world!");
            let _ = s.append("a", b"again");
            (s.total_cost(), s.len("a"), s.len("b"))
        };
        let (full, ..) = run(None);
        assert_eq!(full, 16);
        for b in 0..=full {
            let (cost, la, lb) = run(Some(b));
            assert!(cost <= b || b >= full);
            // Replaying the same budget is bit-identical.
            assert_eq!(run(Some(b)), (cost, la, lb));
        }
    }

    #[test]
    fn dir_storage_round_trips() {
        let root = std::env::temp_dir().join(format!("receivers-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut s = DirStorage::open(&root).unwrap();
        assert_eq!(s.read("wal").unwrap(), None);
        s.append("wal", b"abc").unwrap();
        s.append("wal", b"def").unwrap();
        s.sync("wal").unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"abcdef");
        s.truncate("wal", 4).unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"abcd");
        s.write_atomic("MANIFEST", b"v1").unwrap();
        s.write_atomic("MANIFEST", b"v2").unwrap();
        assert_eq!(s.read("MANIFEST").unwrap().unwrap(), b"v2");
        let names = s.list().unwrap();
        assert!(names.contains(&"wal".to_owned()) && names.contains(&"MANIFEST".to_owned()));
        s.remove("wal").unwrap();
        assert_eq!(s.read("wal").unwrap(), None);
        let _ = std::fs::remove_dir_all(&root);
    }
}
