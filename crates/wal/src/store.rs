//! The durable store: group-committed WAL appends, epoch checkpoints,
//! and manifest-driven crash recovery over any [`WalStorage`].
//!
//! File layout inside a storage namespace:
//!
//! ```text
//! MANIFEST               root pointer: live epoch, its last folded seq
//! snap-{epoch:016x}.bin  compacted snapshot of that epoch
//! wal-{epoch:016x}.log   records for txns after the snapshot
//! ```
//!
//! A checkpoint writes the next epoch's snapshot, atomically swings the
//! manifest, then deletes the previous epoch's files — so a crash at any
//! point leaves exactly one decodable epoch behind (the swing is the
//! commit point; stale files from a half-finished checkpoint are ignored
//! and cleaned up by the next successful one). Recovery is
//! manifest → snapshot → replay the WAL tail through
//! [`redo_ops`] into the instance alone, then rebuild the
//! [`DatabaseView`] once, truncating at the first torn or corrupt
//! record.

use std::sync::Arc;

use receivers_objectbase::{redo_ops, DeltaObserver, DeltaOp, Instance, NullObserver, Schema};
use receivers_obs as obs;
use receivers_relalg::{Database, DatabaseView};

use crate::error::{WalError, WalResult};
use crate::record::{decode_log, encode_record, invert_op};
use crate::snapshot::{decode_snapshot, encode_snapshot, schema_digest, Manifest};
use crate::storage::WalStorage;

obs::counter!(C_RECORDS_APPENDED, "wal.records_appended");
obs::counter!(C_BYTES_APPENDED, "wal.bytes_appended");
obs::counter!(C_SYNCS, "wal.syncs");
obs::counter!(C_CHECKPOINTS, "wal.checkpoints");
obs::counter!(C_SNAPSHOT_BYTES, "wal.snapshot_bytes");
obs::counter!(C_COMPENSATION_RECORDS, "wal.compensation_records");
obs::counter!(C_RECOVERIES, "wal.recoveries");
obs::counter!(C_RECORDS_REPLAYED, "wal.records_replayed");
obs::counter!(C_OPS_REPLAYED, "wal.ops_replayed");
obs::counter!(C_TORN_TAILS, "wal.torn_tails");
obs::counter!(C_TRUNCATED_BYTES, "wal.truncated_bytes");
obs::histogram!(H_RECORD_BYTES, "wal.record_bytes");
obs::histogram!(H_SYNC_NS, "wal.sync_ns");

const MANIFEST_FILE: &str = "MANIFEST";

/// Tuning knobs of a [`DurableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Sync the WAL every `group_commit` committed records (1 = every
    /// commit is immediately durable; larger values batch the fsync cost
    /// across commits at the price of losing the unsynced tail on a
    /// crash — recovery then restores the last synced prefix).
    pub group_commit: usize,
    /// Take a compacting checkpoint every `snapshot_every` committed
    /// records; 0 disables automatic checkpoints (callers may still
    /// checkpoint manually).
    pub snapshot_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            group_commit: 1,
            snapshot_every: 0,
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch the manifest pointed at.
    pub epoch: u64,
    /// Last transaction sequence number restored (snapshot + replay).
    pub last_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Total delta ops replayed.
    pub ops_replayed: u64,
    /// Bytes truncated off a torn or corrupt WAL tail.
    pub truncated_bytes: u64,
    /// Why the tail was truncated, when it was.
    pub torn: Option<String>,
}

/// Cumulative I/O accounting of one [`DurableStore`], read back with
/// [`DurableStore::stats`]. Unlike the global `wal.*` counters these are
/// per-store, so a profiler can diff them around a single stage without
/// other stores (or concurrent tests) bleeding in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// WAL records appended.
    pub records: u64,
    /// Encoded record bytes appended.
    pub bytes: u64,
    /// Storage syncs issued (fsync barriers).
    pub syncs: u64,
    /// Total nanoseconds spent inside those syncs.
    pub sync_ns: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// A write-ahead-logged, checkpointable store for one instance's edit
/// history.
#[derive(Debug)]
pub struct DurableStore<S: WalStorage> {
    storage: S,
    schema: Arc<Schema>,
    cfg: WalConfig,
    epoch: u64,
    next_seq: u64,
    unsynced_records: usize,
    records_since_checkpoint: u64,
    frame_buf: Vec<u8>,
    stats: WalStats,
}

impl<S: WalStorage> DurableStore<S> {
    /// Initialize a fresh store at epoch 1 whose snapshot is `instance`
    /// as it stands. Refuses to clobber an existing store.
    pub fn create(
        storage: S,
        schema: Arc<Schema>,
        cfg: WalConfig,
        instance: &Instance,
    ) -> WalResult<Self> {
        let mut storage = storage;
        if storage.read(MANIFEST_FILE)?.is_some() {
            return Err(WalError::AlreadyExists);
        }
        let manifest = Manifest {
            epoch: 1,
            last_seq: 0,
            schema_digest: schema_digest(&schema),
        };
        let snap = encode_snapshot(&Database::from_instance(instance), 1, 0);
        C_SNAPSHOT_BYTES.add(snap.len() as u64);
        storage.write_atomic(&manifest.snapshot_file(), &snap)?;
        storage.write_atomic(MANIFEST_FILE, &manifest.encode())?;
        Ok(Self {
            storage,
            schema,
            cfg,
            epoch: 1,
            next_seq: 1,
            unsynced_records: 0,
            records_since_checkpoint: 0,
            frame_buf: Vec::new(),
            stats: WalStats::default(),
        })
    }

    /// Recover a store: manifest → snapshot → WAL-tail replay into a
    /// fresh [`Instance`], then one [`DatabaseView`] rebuild at the end
    /// (bit-identical to maintaining the view through every record, at a
    /// fraction of the cost), truncating a torn or corrupt tail. Total
    /// over arbitrary storage contents — corruption surfaces as a
    /// structured error or a truncated tail, never a panic.
    #[allow(clippy::type_complexity)]
    pub fn open(
        storage: S,
        schema: Arc<Schema>,
        cfg: WalConfig,
    ) -> WalResult<(Self, Instance, DatabaseView, RecoveryReport)> {
        let mut storage = storage;
        let manifest_bytes = storage.read(MANIFEST_FILE)?.ok_or(WalError::NotFound)?;
        let manifest = Manifest::decode(&manifest_bytes)?;
        let supplied = schema_digest(&schema);
        if manifest.schema_digest != supplied {
            return Err(WalError::SchemaMismatch {
                stored: manifest.schema_digest,
                supplied,
            });
        }
        let snap_bytes = storage.read(&manifest.snapshot_file())?.ok_or_else(|| {
            WalError::BadSnapshot(format!(
                "missing snapshot file {}",
                manifest.snapshot_file()
            ))
        })?;
        let (mut instance, header) = decode_snapshot(&snap_bytes, &schema)?;
        if header.epoch != manifest.epoch || header.last_seq != manifest.last_seq {
            return Err(WalError::BadSnapshot(format!(
                "snapshot header (epoch {}, seq {}) disagrees with manifest (epoch {}, seq {})",
                header.epoch, header.last_seq, manifest.epoch, manifest.last_seq
            )));
        }
        let wal_name = manifest.wal_file();
        let wal_bytes = storage.read(&wal_name)?.unwrap_or_default();
        let decoded = decode_log(&wal_bytes, manifest.last_seq + 1);
        // Replay the tail into the instance alone — per-record view
        // maintenance would pay the incremental-index cost once per
        // record; a single rebuild after the loop is the same O(N + E)
        // as the snapshot decode and produces a bit-identical view.
        let mut ops_replayed = 0u64;
        for record in &decoded.records {
            redo_ops(&mut instance, &mut NullObserver, &record.ops);
            ops_replayed += record.ops.len() as u64;
        }
        let view = DatabaseView::new(&instance);
        let truncated = wal_bytes.len() as u64 - decoded.valid_len;
        if truncated > 0 {
            storage.truncate(&wal_name, decoded.valid_len)?;
            storage.sync(&wal_name)?;
            C_TORN_TAILS.incr();
            C_TRUNCATED_BYTES.add(truncated);
        }
        let records_replayed = decoded.records.len() as u64;
        let last_seq = manifest.last_seq + records_replayed;
        C_RECOVERIES.incr();
        C_RECORDS_REPLAYED.add(records_replayed);
        C_OPS_REPLAYED.add(ops_replayed);
        let report = RecoveryReport {
            epoch: manifest.epoch,
            last_seq,
            records_replayed,
            ops_replayed,
            truncated_bytes: truncated,
            torn: decoded.torn,
        };
        let store = Self {
            storage,
            schema,
            cfg,
            epoch: manifest.epoch,
            next_seq: last_seq + 1,
            unsynced_records: 0,
            records_since_checkpoint: records_replayed,
            frame_buf: Vec::new(),
            stats: WalStats::default(),
        };
        // Recovery is exactly the moment a flight recorder exists for:
        // leave what was found in the ring, and dump it if a dump path
        // is configured.
        if obs::flight_enabled() {
            obs::flight::flight_record(
                "wal.recovery",
                format!(
                    "epoch {} recovered to seq {}: {} record(s) / {} op(s) replayed, {} byte(s) truncated{}",
                    report.epoch,
                    report.last_seq,
                    report.records_replayed,
                    report.ops_replayed,
                    report.truncated_bytes,
                    report
                        .torn
                        .as_deref()
                        .map(|t| format!(" (torn: {t})"))
                        .unwrap_or_default(),
                ),
                None,
            );
            if let Some(path) = obs::flight::dump_env_path() {
                let _ = obs::flight::dump_flight_to(&path);
            }
        }
        Ok((store, instance, view, report))
    }

    /// Append one committed transaction's delta batch as a WAL record.
    /// Returns the record's sequence number (empty batches are a no-op
    /// returning the last sequence number). Durability follows the
    /// [`WalConfig::group_commit`] policy; call [`Self::sync`] to force it.
    pub fn commit(&mut self, ops: &[DeltaOp]) -> WalResult<u64> {
        if ops.is_empty() {
            return Ok(self.last_seq());
        }
        let seq = self.next_seq;
        self.frame_buf.clear();
        let n = encode_record(seq, ops, &mut self.frame_buf);
        let frame = std::mem::take(&mut self.frame_buf);
        let res = self.storage.append(&self.wal_file(), &frame);
        self.frame_buf = frame;
        res?;
        self.next_seq += 1;
        self.unsynced_records += 1;
        self.records_since_checkpoint += 1;
        C_RECORDS_APPENDED.incr();
        C_BYTES_APPENDED.add(n as u64);
        H_RECORD_BYTES.record(n as u64);
        self.stats.records += 1;
        self.stats.bytes += n as u64;
        if self.unsynced_records >= self.cfg.group_commit.max(1) {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Force the WAL durable up to the last committed record.
    pub fn sync(&mut self) -> WalResult<()> {
        if self.unsynced_records > 0 {
            // One clock read per fsync barrier — noise next to the
            // barrier itself, and it prices the dominant durability cost.
            let t0 = std::time::Instant::now();
            self.storage.sync(&self.wal_file())?;
            let ns = t0.elapsed().as_nanos() as u64;
            self.unsynced_records = 0;
            C_SYNCS.incr();
            H_SYNC_NS.record(ns);
            self.stats.syncs += 1;
            self.stats.sync_ns += ns;
        }
        Ok(())
    }

    /// Has the automatic-checkpoint threshold been crossed?
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.records_since_checkpoint >= self.cfg.snapshot_every
    }

    /// Checkpoint from an already-maintained database (no rebuild): write
    /// the next epoch's snapshot, swing the manifest, drop the previous
    /// epoch's files. `db` must reflect every committed record — which a
    /// [`DatabaseView`] maintained through the same commits does.
    pub fn checkpoint_db(&mut self, db: &Database) -> WalResult<()> {
        self.sync()?;
        let old = Manifest {
            epoch: self.epoch,
            last_seq: 0, // only the file names matter below
            schema_digest: 0,
        };
        let manifest = Manifest {
            epoch: self.epoch + 1,
            last_seq: self.last_seq(),
            schema_digest: schema_digest(&self.schema),
        };
        let snap = encode_snapshot(db, manifest.epoch, manifest.last_seq);
        C_SNAPSHOT_BYTES.add(snap.len() as u64);
        self.storage
            .write_atomic(&manifest.snapshot_file(), &snap)?;
        // The commit point: after this atomic swing, recovery uses the
        // new epoch; before it, the old one. Either way every needed file
        // exists.
        self.storage
            .write_atomic(MANIFEST_FILE, &manifest.encode())?;
        self.epoch = manifest.epoch;
        self.records_since_checkpoint = 0;
        self.unsynced_records = 0;
        C_CHECKPOINTS.incr();
        self.stats.checkpoints += 1;
        // Best-effort cleanup of the superseded epoch; stale files are
        // ignored by recovery if this is where a crash lands.
        self.storage.remove(&old.snapshot_file())?;
        self.storage.remove(&old.wal_file())?;
        Ok(())
    }

    /// Checkpoint from the instance (costs one `O(N + E)` conversion).
    pub fn checkpoint(&mut self, instance: &Instance) -> WalResult<()> {
        self.checkpoint_db(&Database::from_instance(instance))
    }

    /// Last committed transaction sequence number (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Live checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative per-store I/O accounting since `create`/`open`.
    /// Profilers diff this around a stage to attribute WAL cost.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The live epoch's WAL file name.
    pub fn wal_file(&self) -> String {
        Manifest {
            epoch: self.epoch,
            last_seq: 0,
            schema_digest: 0,
        }
        .wal_file()
    }

    /// The underlying storage (for inspection).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Take the storage back (the crash harness reopens it as wreckage).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

/// Observer adapter wiring a transaction's delta stream into a
/// [`DurableStore`] *and* an inner observer (typically the maintained
/// [`DatabaseView`]) at once.
///
/// Logging happens at commit boundaries, never per op:
/// - a committed batch ([`DeltaObserver::batch_committed`]) becomes one
///   WAL record;
/// - ops undone while still uncommitted (a transaction rollback) cancel
///   against the open batch and are never logged;
/// - ops undone *after* their commit (a sequence-level rollback through
///   [`receivers_objectbase::undo_ops`]) are recorded inverted, and
///   [`DeltaObserver::batch_end`] flushes them as one compensation
///   record — so forward replay of the whole log always reproduces the
///   final state, rollbacks included.
///
/// Storage failures are captured, not panicked: the first error parks in
/// the sink ([`Self::take_error`]) and later commits are skipped, because
/// an observer callback has no error channel of its own.
pub struct DurableSink<'a, S: WalStorage> {
    store: &'a mut DurableStore<S>,
    inner: &'a mut dyn DeltaObserver,
    open_batch: Vec<DeltaOp>,
    compensation: Vec<DeltaOp>,
    error: Option<WalError>,
}

impl<'a, S: WalStorage> DurableSink<'a, S> {
    /// Wire `store` and `inner` together for one or more transactions.
    pub fn new(store: &'a mut DurableStore<S>, inner: &'a mut dyn DeltaObserver) -> Self {
        Self {
            store,
            inner,
            open_batch: Vec::new(),
            compensation: Vec::new(),
            error: None,
        }
    }

    /// The first storage error hit while logging, if any. A driver must
    /// check this after the transactions it wired through the sink: on
    /// `Some`, durability is behind the in-memory state and the run must
    /// stop (recovery will restore the last durable prefix).
    pub fn take_error(&mut self) -> Option<WalError> {
        self.error.take()
    }

    fn log(&mut self, ops: &[DeltaOp], compensation: bool) {
        if self.error.is_some() || ops.is_empty() {
            return;
        }
        if let Err(e) = self.store.commit(ops) {
            self.error = Some(e);
        } else if compensation {
            C_COMPENSATION_RECORDS.incr();
        }
    }
}

impl<S: WalStorage> DeltaObserver for DurableSink<'_, S> {
    fn applied(&mut self, op: &DeltaOp) {
        self.inner.applied(op);
        self.open_batch.push(*op);
    }

    fn undone(&mut self, op: &DeltaOp) {
        self.inner.undone(op);
        if self.open_batch.last() == Some(op) {
            // Rollback of a not-yet-committed op: cancels in place.
            self.open_batch.pop();
        } else {
            // Reversal of an already-logged op: must itself be logged.
            self.compensation.push(invert_op(op));
        }
    }

    fn batch_committed(&mut self, ops: &[DeltaOp]) {
        self.inner.batch_committed(ops);
        self.open_batch.clear();
        self.log(ops, false);
    }

    fn batch_end(&mut self) {
        if !self.compensation.is_empty() {
            let comp = std::mem::take(&mut self.compensation);
            self.log(&comp, true);
        }
        self.open_batch.clear();
        self.inner.batch_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FaultStorage;
    use receivers_objectbase::examples::{beer_schema, figure2};
    use receivers_objectbase::{undo_ops, Edge, InstanceTxn};

    /// Run two committed transactions against `(instance, view, store)`
    /// through a [`DurableSink`]; returns the edge that got added.
    fn two_txns(
        s: &receivers_objectbase::examples::BeerSchema,
        o: &receivers_objectbase::examples::Fig2Objects,
        instance: &mut Instance,
        view: &mut DatabaseView,
        store: &mut DurableStore<FaultStorage>,
    ) -> Edge {
        let added = Edge::new(o.d1, s.frequents, o.bar3);
        let mut sink = DurableSink::new(store, view);
        let mut txn = InstanceTxn::begin_observed(instance, &mut sink);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        txn.commit();
        assert_eq!(sink.take_error(), None);
        let mut sink = DurableSink::new(store, view);
        let mut txn = InstanceTxn::begin_observed(instance, &mut sink);
        txn.add_edge(added).unwrap();
        txn.commit();
        assert_eq!(sink.take_error(), None);
        added
    }

    #[test]
    fn create_commit_reopen_round_trips_bit_identically() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        two_txns(&s, &o, &mut i, &mut view, &mut store);
        assert_eq!(store.last_seq(), 2);

        let storage = store.into_storage().reopen();
        let (store2, ri, rview, report) =
            DurableStore::open(storage, Arc::clone(&s.schema), WalConfig::default()).unwrap();
        assert_eq!(ri, i);
        assert_eq!(rview.database(), view.database());
        assert!(rview.matches_rebuild(&ri));
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.last_seq, 2);
        assert_eq!(report.torn, None);
        assert_eq!(store2.last_seq(), 2);
    }

    #[test]
    fn empty_commits_are_not_logged() {
        let s = beer_schema();
        let (i, _) = figure2(&s);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        assert_eq!(store.commit(&[]).unwrap(), 0);
        assert_eq!(store.last_seq(), 0);
        assert_eq!(store.storage().len(&store.wal_file()), 0);
    }

    #[test]
    fn torn_append_is_truncated_on_recovery() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        // Golden pass to learn byte marks.
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        let after_create = {
            let probe = DurableStore::create(
                FaultStorage::new(),
                Arc::clone(&s.schema),
                WalConfig::default(),
                &figure2(&s).0,
            )
            .unwrap();
            probe.storage().total_cost()
        };
        two_txns(&s, &o, &mut i, &mut view, &mut store);
        let full = store.storage().total_cost();
        let after_first = {
            // Cost after the first record only.
            let (mut gi, _) = figure2(&s);
            let mut gs = DurableStore::create(
                FaultStorage::new(),
                Arc::clone(&s.schema),
                WalConfig::default(),
                &gi,
            )
            .unwrap();
            let mut gv = DatabaseView::new(&gi);
            let mut sink = DurableSink::new(&mut gs, &mut gv);
            let mut txn = InstanceTxn::begin_observed(&mut gi, &mut sink);
            txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
            txn.commit();
            gs.storage().total_cost()
        };
        // Crash mid-second-record: every budget strictly between the two
        // record boundaries recovers exactly the first record's state.
        for budget in after_first + 1..full {
            let (mut ci, _) = figure2(&s);
            let mut cs = DurableStore::create(
                FaultStorage::with_budget(budget),
                Arc::clone(&s.schema),
                WalConfig::default(),
                &ci,
            )
            .unwrap();
            assert_eq!(cs.storage().total_cost(), after_create);
            let mut cv = DatabaseView::new(&ci);
            let mut sink = DurableSink::new(&mut cs, &mut cv);
            let mut txn = InstanceTxn::begin_observed(&mut ci, &mut sink);
            txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
            txn.commit();
            assert_eq!(sink.take_error(), None, "first record fits budget {budget}");
            let mut sink = DurableSink::new(&mut cs, &mut cv);
            let mut txn = InstanceTxn::begin_observed(&mut ci, &mut sink);
            txn.add_edge(Edge::new(o.d1, s.frequents, o.bar3)).unwrap();
            txn.commit();
            assert_eq!(sink.take_error(), Some(WalError::Crashed));

            let storage = cs.into_storage().reopen();
            let (_, ri, rview, report) =
                DurableStore::open(storage, Arc::clone(&s.schema), WalConfig::default()).unwrap();
            assert_eq!(report.last_seq, 1, "budget {budget}");
            assert!(report.truncated_bytes > 0);
            assert!(report.torn.is_some());
            let mut want = figure2(&s).0;
            want.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
            assert_eq!(ri, want);
            assert!(rview.matches_rebuild(&ri));
        }
    }

    #[test]
    fn group_commit_loses_only_the_unsynced_tail() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let cfg = WalConfig {
            group_commit: 8, // neither commit reaches the sync threshold
            snapshot_every: 0,
        };
        let mut store =
            DurableStore::create(FaultStorage::new(), Arc::clone(&s.schema), cfg, &i).unwrap();
        let mut view = DatabaseView::new(&i);
        two_txns(&s, &o, &mut i, &mut view, &mut store);
        let wal = store.wal_file();
        assert_eq!(store.storage().synced_len(&wal), 0);
        // Page cache lost: both records vanish; recovery = the snapshot.
        let storage = store.into_storage().reopen_dropping_unsynced();
        let (_, ri, _, report) = DurableStore::open(storage, Arc::clone(&s.schema), cfg).unwrap();
        assert_eq!(report.last_seq, 0);
        assert_eq!(ri, figure2(&s).0);
    }

    #[test]
    fn checkpoint_compacts_and_recovery_resumes_after_it() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        two_txns(&s, &o, &mut i, &mut view, &mut store);
        store.checkpoint_db(view.database()).unwrap();
        assert_eq!(store.epoch(), 2);
        // One more committed record after the checkpoint.
        let mut sink = DurableSink::new(&mut store, &mut view);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut sink);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar2));
        txn.commit();
        assert_eq!(sink.take_error(), None);

        let files = store.storage().list().unwrap();
        assert!(
            !files.iter().any(|f| f.contains("0000000000000001")),
            "epoch-1 files were compacted away: {files:?}"
        );
        let storage = store.into_storage().reopen();
        let (_, ri, rview, report) =
            DurableStore::open(storage, Arc::clone(&s.schema), WalConfig::default()).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(report.last_seq, 3);
        assert_eq!(
            report.records_replayed, 1,
            "pre-checkpoint records are folded"
        );
        assert_eq!(ri, i);
        assert!(rview.matches_rebuild(&ri));
    }

    #[test]
    fn sequence_rollback_writes_a_compensation_record() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let initial = i.clone();
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        let mut seq_log = Vec::new();
        let mut sink = DurableSink::new(&mut store, &mut view);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut sink);
        txn.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
        txn.commit_into(&mut seq_log);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut sink);
        txn.add_edge(Edge::new(o.d1, s.frequents, o.bar3)).unwrap();
        txn.commit_into(&mut seq_log);
        // Sequence-level failure: roll the whole thing back through the
        // same sink, producing one compensation record.
        undo_ops(&mut i, &mut sink, &seq_log);
        assert_eq!(sink.take_error(), None);
        assert_eq!(i, initial);
        assert!(view.matches_rebuild(&i));
        assert_eq!(store.last_seq(), 3, "2 commits + 1 compensation record");

        let storage = store.into_storage().reopen();
        let (_, ri, rview, report) =
            DurableStore::open(storage, Arc::clone(&s.schema), WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(
            ri, initial,
            "replaying the full log reproduces the rollback"
        );
        assert!(rview.matches_rebuild(&ri));
    }

    #[test]
    fn txn_rollback_logs_nothing() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        let mut sink = DurableSink::new(&mut store, &mut view);
        let mut txn = InstanceTxn::begin_observed(&mut i, &mut sink);
        txn.remove_object_cascade(o.bar1);
        txn.rollback();
        assert_eq!(sink.take_error(), None);
        drop(sink);
        assert_eq!(store.last_seq(), 0);
        assert_eq!(store.storage().len(&store.wal_file()), 0);
    }

    #[test]
    fn create_refuses_to_clobber_and_open_requires_a_store() {
        let s = beer_schema();
        let (i, _) = figure2(&s);
        assert_eq!(
            DurableStore::open(
                FaultStorage::new(),
                Arc::clone(&s.schema),
                WalConfig::default()
            )
            .err(),
            Some(WalError::NotFound)
        );
        let store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        assert_eq!(
            DurableStore::create(
                store.into_storage(),
                Arc::clone(&s.schema),
                WalConfig::default(),
                &i,
            )
            .err()
            .map(|e| matches!(e, WalError::AlreadyExists)),
            Some(true)
        );
    }

    #[test]
    fn bit_flip_in_the_wal_truncates_at_the_corrupt_record() {
        let s = beer_schema();
        let (mut i, o) = figure2(&s);
        let mut store = DurableStore::create(
            FaultStorage::new(),
            Arc::clone(&s.schema),
            WalConfig::default(),
            &i,
        )
        .unwrap();
        let mut view = DatabaseView::new(&i);
        two_txns(&s, &o, &mut i, &mut view, &mut store);
        let wal = store.wal_file();
        let wal_len = store.storage().len(&wal);
        for byte in 0..wal_len {
            let mut storage = store.storage().clone().reopen();
            storage.flip_bit(&wal, byte, byte as u8 % 8);
            let (_, ri, rview, report) =
                DurableStore::open(storage, Arc::clone(&s.schema), WalConfig::default()).unwrap();
            assert!(report.last_seq <= 2, "byte {byte}");
            assert!(report.torn.is_some(), "byte {byte}: flip must be caught");
            // Whatever prefix survived must be a committed state.
            let mut want = figure2(&s).0;
            if report.last_seq >= 1 {
                want.remove_edge(&Edge::new(o.d1, s.frequents, o.bar1));
            }
            if report.last_seq >= 2 {
                want.add_edge(Edge::new(o.d1, s.frequents, o.bar3)).unwrap();
            }
            assert_eq!(ri, want, "byte {byte}");
            assert!(rview.matches_rebuild(&ri));
        }
    }
}
