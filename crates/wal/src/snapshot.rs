//! Compacted snapshots and the manifest: the checkpoint half of the
//! durability layer.
//!
//! A snapshot serializes the flat relation arenas of a [`Database`] —
//! they are contiguous `Vec<Oid>` blocks, so encoding is a straight walk:
//!
//! ```text
//! snapshot := "RSNAPV1\n" [crc32(body): u32 LE] body
//! body     := [epoch: u64] [last_seq: u64] [schema_digest: u32]
//!             [class_count: u32] class_block*      (classes in id order)
//!             [prop_count: u32]  prop_block*       (properties in id order)
//! class_block := [node_count: u32] [index: u32]*        (class implied)
//! prop_block  := [edge_count: u32] ([src.index: u32] [dst.index: u32])*
//! ```
//!
//! Endpoint classes are never stored: a class block's class is its
//! position, and an edge's endpoint classes are dictated by the schema's
//! property signature — so a decoded snapshot cannot even express an
//! ill-typed edge, and every id that indexes schema tables comes from a
//! bounded loop, not from input bytes. Counts are validated against the
//! bytes actually present before any allocation (fuzz tests below pin
//! this; they run under Miri in CI).
//!
//! The manifest is the tiny root pointer tying an epoch to its files:
//!
//! ```text
//! manifest := "RMANIV1\n" [crc32(body): u32 LE] body
//! body     := [epoch: u64] [last_seq: u64] [schema_digest: u32]
//! ```

use std::sync::Arc;

use receivers_objectbase::{Edge, Instance, Oid, Schema};
use receivers_relalg::{Database, RelName};

use crate::crc::crc32;
use crate::error::{WalError, WalResult};

const SNAP_MAGIC: &[u8; 8] = b"RSNAPV1\n";
const MANIFEST_MAGIC: &[u8; 8] = b"RMANIV1\n";

/// Digest of a schema's shape — class names plus property signatures —
/// recorded in every snapshot and manifest so a store can refuse to open
/// under a different schema instead of replaying garbage.
pub fn schema_digest(schema: &Schema) -> u32 {
    let mut canon = String::new();
    for c in schema.classes() {
        canon.push_str(schema.class_name(c));
        canon.push('\n');
    }
    canon.push('\x1f');
    for p in schema.properties() {
        let prop = schema.property(p);
        canon.push_str(&format!("{} {} {}\n", prop.name, prop.src.0, prop.dst.0));
    }
    crc32(canon.as_bytes())
}

/// Snapshot metadata decoded alongside the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Checkpoint epoch the snapshot belongs to.
    pub epoch: u64,
    /// Last transaction sequence number folded into the snapshot.
    pub last_seq: u64,
}

/// Encode a snapshot of `db` at `(epoch, last_seq)`.
pub fn encode_snapshot(db: &Database, epoch: u64, last_seq: u64) -> Vec<u8> {
    let schema = db.schema();
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&[0u8; 4]); // crc patched below
    let body_at = out.len();
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&last_seq.to_le_bytes());
    out.extend_from_slice(&schema_digest(schema).to_le_bytes());
    out.extend_from_slice(&(schema.class_count() as u32).to_le_bytes());
    for c in schema.classes() {
        let rows = db
            .relation(RelName::Class(c))
            .expect("database carries a relation per schema class")
            .tuple_set()
            .as_rows();
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for o in rows {
            out.extend_from_slice(&o.index.to_le_bytes());
        }
    }
    out.extend_from_slice(&(schema.property_count() as u32).to_le_bytes());
    for p in schema.properties() {
        let rows = db
            .relation(RelName::Prop(p))
            .expect("database carries a relation per schema property")
            .tuple_set()
            .as_rows();
        debug_assert_eq!(rows.len() % 2, 0);
        out.extend_from_slice(&((rows.len() / 2) as u32).to_le_bytes());
        for pair in rows.chunks_exact(2) {
            out.extend_from_slice(&pair[0].index.to_le_bytes());
            out.extend_from_slice(&pair[1].index.to_le_bytes());
        }
    }
    let crc = crc32(&out[body_at..]);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

/// A bounds-checked little-endian cursor; every read is total.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn bad(why: impl Into<String>) -> WalError {
    WalError::BadSnapshot(why.into())
}

/// Decode a snapshot under `schema`, rebuilding the [`Instance`]. Total:
/// every byte stream yields `Ok` or a structured [`WalError`] — never a
/// panic, never an allocation sized from unvalidated input.
pub fn decode_snapshot(
    bytes: &[u8],
    schema: &Arc<Schema>,
) -> WalResult<(Instance, SnapshotHeader)> {
    let mut cur = Cursor::new(bytes);
    if cur.take(8) != Some(SNAP_MAGIC) {
        return Err(bad("bad magic"));
    }
    let stored_crc = cur.u32().ok_or_else(|| bad("truncated before checksum"))?;
    if crc32(&bytes[12..]) != stored_crc {
        return Err(bad("body checksum mismatch"));
    }
    let epoch = cur.u64().ok_or_else(|| bad("truncated epoch"))?;
    let last_seq = cur.u64().ok_or_else(|| bad("truncated last_seq"))?;
    let stored_digest = cur.u32().ok_or_else(|| bad("truncated digest"))?;
    let supplied = schema_digest(schema);
    if stored_digest != supplied {
        return Err(WalError::SchemaMismatch {
            stored: stored_digest,
            supplied,
        });
    }
    let class_count = cur.u32().ok_or_else(|| bad("truncated class count"))? as usize;
    if class_count != schema.class_count() {
        return Err(bad(format!(
            "snapshot has {class_count} class blocks, schema has {}",
            schema.class_count()
        )));
    }
    let mut instance = Instance::empty(Arc::clone(schema));
    for c in schema.classes() {
        let n = cur.u32().ok_or_else(|| bad("truncated node count"))? as usize;
        if n > cur.remaining() / 4 {
            return Err(bad(format!(
                "class block claims {n} nodes, only {} bytes remain",
                cur.remaining()
            )));
        }
        for _ in 0..n {
            let index = cur.u32().ok_or_else(|| bad("truncated node index"))?;
            if !instance.add_object(Oid::new(c, index)) {
                return Err(bad(format!(
                    "duplicate node {index} in class block {}",
                    c.0
                )));
            }
        }
    }
    let prop_count = cur.u32().ok_or_else(|| bad("truncated property count"))? as usize;
    if prop_count != schema.property_count() {
        return Err(bad(format!(
            "snapshot has {prop_count} property blocks, schema has {}",
            schema.property_count()
        )));
    }
    for p in schema.properties() {
        let sig = schema.property(p);
        let n = cur.u32().ok_or_else(|| bad("truncated edge count"))? as usize;
        if n > cur.remaining() / 8 {
            return Err(bad(format!(
                "property block claims {n} edges, only {} bytes remain",
                cur.remaining()
            )));
        }
        for _ in 0..n {
            let src = cur.u32().ok_or_else(|| bad("truncated edge src"))?;
            let dst = cur.u32().ok_or_else(|| bad("truncated edge dst"))?;
            let edge = Edge::new(Oid::new(sig.src, src), p, Oid::new(sig.dst, dst));
            match instance.add_edge(edge) {
                Ok(true) => {}
                Ok(false) => return Err(bad(format!("duplicate edge in property block {}", p.0))),
                Err(e) => return Err(bad(format!("ill-formed edge: {e}"))),
            }
        }
    }
    if cur.remaining() != 0 {
        return Err(bad(format!("{} trailing bytes", cur.remaining())));
    }
    Ok((instance, SnapshotHeader { epoch, last_seq }))
}

/// The root pointer: which epoch is live and where its WAL resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Live checkpoint epoch.
    pub epoch: u64,
    /// Last sequence number folded into the epoch's snapshot; the WAL
    /// tail resumes at `last_seq + 1`.
    pub last_seq: u64,
    /// Digest of the schema the store was written under.
    pub schema_digest: u32,
}

impl Manifest {
    /// File name of this epoch's snapshot.
    pub fn snapshot_file(&self) -> String {
        format!("snap-{:016x}.bin", self.epoch)
    }

    /// File name of this epoch's WAL segment.
    pub fn wal_file(&self) -> String {
        format!("wal-{:016x}.log", self.epoch)
    }

    /// Encode the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&[0u8; 4]);
        let body_at = out.len();
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.extend_from_slice(&self.schema_digest.to_le_bytes());
        let crc = crc32(&out[body_at..]);
        out[8..12].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a manifest. Total — any byte stream maps to `Ok` or a
    /// structured error.
    pub fn decode(bytes: &[u8]) -> WalResult<Self> {
        let err = |why: &str| WalError::BadManifest(why.to_owned());
        let mut cur = Cursor::new(bytes);
        if cur.take(8) != Some(MANIFEST_MAGIC) {
            return Err(err("bad magic"));
        }
        let stored_crc = cur.u32().ok_or_else(|| err("truncated before checksum"))?;
        if crc32(&bytes[12..]) != stored_crc {
            return Err(err("body checksum mismatch"));
        }
        let epoch = cur.u64().ok_or_else(|| err("truncated epoch"))?;
        let last_seq = cur.u64().ok_or_else(|| err("truncated last_seq"))?;
        let schema_digest = cur.u32().ok_or_else(|| err("truncated digest"))?;
        if cur.remaining() != 0 {
            return Err(err("trailing bytes"));
        }
        Ok(Self {
            epoch,
            last_seq,
            schema_digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use receivers_objectbase::{ClassId, PropId};

    fn beer_schema() -> Arc<Schema> {
        let mut b = Schema::builder();
        let drinker = b.class("Drinker").unwrap();
        let bar = b.class("Bar").unwrap();
        let beer = b.class("Beer").unwrap();
        b.property(drinker, "frequents", bar).unwrap();
        b.property(drinker, "likes", beer).unwrap();
        b.property(bar, "serves", beer).unwrap();
        b.build()
    }

    fn sample_instance() -> Instance {
        let schema = beer_schema();
        let drinker = ClassId(0);
        let bar = ClassId(1);
        let beer = ClassId(2);
        let frequents = PropId(0);
        let likes = PropId(1);
        let serves = PropId(2);
        let mut i = Instance::empty(schema);
        for k in 0..7 {
            i.add_object(Oid::new(drinker, k));
        }
        for k in 0..5 {
            i.add_object(Oid::new(bar, k * 3));
        }
        for k in 0..4 {
            i.add_object(Oid::new(beer, k));
        }
        for k in 0..7u32 {
            i.link(Oid::new(drinker, k), frequents, Oid::new(bar, (k % 5) * 3))
                .unwrap();
            i.link(Oid::new(drinker, k), likes, Oid::new(beer, k % 4))
                .unwrap();
        }
        for k in 0..5u32 {
            i.link(Oid::new(bar, k * 3), serves, Oid::new(beer, k % 4))
                .unwrap();
        }
        i
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let instance = sample_instance();
        let db = Database::from_instance(&instance);
        let bytes = encode_snapshot(&db, 3, 17);
        let (restored, header) = decode_snapshot(&bytes, instance.schema()).unwrap();
        assert_eq!(
            header,
            SnapshotHeader {
                epoch: 3,
                last_seq: 17
            }
        );
        assert_eq!(restored, instance);
        assert_eq!(Database::from_instance(&restored), db);
        restored.check_index_consistent();
        // Deterministic encoding: same database, same bytes.
        assert_eq!(
            encode_snapshot(&Database::from_instance(&restored), 3, 17),
            bytes
        );
    }

    #[test]
    fn empty_instance_round_trips() {
        let schema = beer_schema();
        let instance = Instance::empty(Arc::clone(&schema));
        let bytes = encode_snapshot(&Database::from_instance(&instance), 1, 0);
        let (restored, _) = decode_snapshot(&bytes, &schema).unwrap();
        assert_eq!(restored, instance);
    }

    #[test]
    fn schema_mismatch_is_refused() {
        let instance = sample_instance();
        let bytes = encode_snapshot(&Database::from_instance(&instance), 1, 0);
        let mut b = Schema::builder();
        b.class("Other").unwrap();
        let other = b.build();
        match decode_snapshot(&bytes, &other) {
            Err(WalError::SchemaMismatch { .. }) => {}
            other => panic!("expected schema mismatch, got {other:?}"),
        }
        assert_ne!(schema_digest(instance.schema()), schema_digest(&other));
    }

    /// Every truncation of a valid snapshot is a structured error.
    #[test]
    fn truncations_never_panic() {
        let instance = sample_instance();
        let schema = Arc::clone(instance.schema());
        let bytes = encode_snapshot(&Database::from_instance(&instance), 1, 9);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut], &schema).is_err(),
                "cut {cut}"
            );
        }
    }

    /// Every single-bit flip is either caught by the checksum or decodes
    /// to a structured error — never a panic, never a silent success.
    #[test]
    fn bit_flips_are_always_caught() {
        let instance = sample_instance();
        let schema = Arc::clone(instance.schema());
        let bytes = encode_snapshot(&Database::from_instance(&instance), 1, 9);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    decode_snapshot(&mutated, &schema).is_err(),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    /// Random byte soup decodes totally, and a hostile node count cannot
    /// drive an allocation past the buffer it arrived in.
    #[test]
    fn random_streams_and_hostile_counts_are_structured_errors() {
        let schema = beer_schema();
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in 0..160usize {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = decode_snapshot(&bytes, &schema); // must not panic
            let _ = Manifest::decode(&bytes); // must not panic
        }
        // A forged header claiming u32::MAX nodes with a valid checksum.
        let mut forged = Vec::new();
        forged.extend_from_slice(SNAP_MAGIC);
        forged.extend_from_slice(&[0u8; 4]);
        forged.extend_from_slice(&1u64.to_le_bytes());
        forged.extend_from_slice(&0u64.to_le_bytes());
        forged.extend_from_slice(&schema_digest(&schema).to_le_bytes());
        forged.extend_from_slice(&(schema.class_count() as u32).to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        let crc = crc32(&forged[12..]);
        forged[8..12].copy_from_slice(&crc.to_le_bytes());
        match decode_snapshot(&forged, &schema) {
            Err(WalError::BadSnapshot(why)) => assert!(why.contains("claims"), "{why}"),
            other => panic!("expected bad-snapshot error, got {other:?}"),
        }
    }

    #[test]
    fn manifest_round_trips_and_names_its_files() {
        let m = Manifest {
            epoch: 0x2A,
            last_seq: 99,
            schema_digest: 0xDEAD_BEEF,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.snapshot_file(), "snap-000000000000002a.bin");
        assert_eq!(m.wal_file(), "wal-000000000000002a.log");
        let mut bytes = m.encode();
        bytes[15] ^= 0x40;
        assert!(Manifest::decode(&bytes).is_err());
    }
}
