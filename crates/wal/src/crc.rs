//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum of the WAL record format and the snapshot/manifest files.
//!
//! Hand-rolled table-driven implementation so the durability layer stays
//! zero-dependency; the table is built in a `const fn` at compile time.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The catalogue check value: CRC-32 of `"123456789"`.
    #[test]
    fn matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the wal frame payload".to_vec();
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
