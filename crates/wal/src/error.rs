//! Structured errors for the durability layer.
//!
//! Every failure mode of the codec, the storage abstraction, and recovery
//! is a value of [`WalError`] — the decoder and loaders **never panic** on
//! malformed input and never allocate from an unvalidated length prefix
//! (the fuzz tests in `record`/`snapshot` pin both properties).

/// Errors of the WAL/snapshot/recovery layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An underlying storage operation failed (I/O error text attached).
    Io(String),
    /// The fault-injecting storage hit its crash point: the write was
    /// killed mid-flight and every later write fails with this.
    Crashed,
    /// A snapshot file failed validation (bad magic, checksum, counts, or
    /// ill-typed content).
    BadSnapshot(String),
    /// The manifest file failed validation.
    BadManifest(String),
    /// The store was opened against a schema that does not match the one
    /// the files were written under.
    SchemaMismatch {
        /// Digest recorded in the manifest/snapshot.
        stored: u32,
        /// Digest of the schema the caller supplied.
        supplied: u32,
    },
    /// [`DurableStore::create`](crate::DurableStore::create) found an
    /// existing manifest — refusing to clobber a live store.
    AlreadyExists,
    /// [`DurableStore::open`](crate::DurableStore::open) found no
    /// manifest — nothing was ever created here.
    NotFound,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal storage error: {e}"),
            WalError::Crashed => write!(f, "wal storage crashed (injected fault)"),
            WalError::BadSnapshot(why) => write!(f, "invalid snapshot: {why}"),
            WalError::BadManifest(why) => write!(f, "invalid manifest: {why}"),
            WalError::SchemaMismatch { stored, supplied } => write!(
                f,
                "schema digest mismatch: store was written under {stored:#010x}, \
                 opened with {supplied:#010x}"
            ),
            WalError::AlreadyExists => write!(f, "a durable store already exists here"),
            WalError::NotFound => write!(f, "no durable store exists here (missing manifest)"),
        }
    }
}

impl std::error::Error for WalError {}

/// Result alias for the durability layer.
pub type WalResult<T> = Result<T, WalError>;
