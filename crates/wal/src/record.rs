//! The binary WAL record format: length-prefixed, CRC32-framed
//! [`DeltaOp`] batches with monotonic transaction sequence numbers.
//!
//! ```text
//! frame   := [payload_len: u32 LE] [crc32(payload): u32 LE] [payload]
//! payload := [seq: u64 LE] [op_count: u32 LE] op*
//! op      := 0x00 class index                     AddedNode
//!          | 0x01 class index                     RemovedNode
//!          | 0x02 sclass sindex prop dclass dindex  AddedEdge
//!          | 0x03 sclass sindex prop dclass dindex  RemovedEdge
//! ```
//! with every id field a `u32 LE` — node ops are 9 bytes, edge ops 21.
//!
//! Decoding is **total**: any byte stream maps to a clean prefix of valid
//! records plus either a clean end or a structured torn-tail verdict.
//! Nothing in this module panics on input bytes, and no allocation is
//! sized from an unvalidated length prefix — `op_count` is first checked
//! against the byte length the frame actually carries (each op occupies
//! at least [`MIN_OP_BYTES`]), so a hostile count cannot OOM the decoder.
//! The fuzz tests at the bottom of the file pin both properties and run
//! under Miri in CI.

use receivers_objectbase::{ClassId, DeltaOp, Edge, Oid, PropId};

use crate::crc::crc32;
use crate::error::{WalError, WalResult};

/// Frame header: payload length + payload checksum.
pub const FRAME_HEADER_BYTES: usize = 8;
/// Payload prologue: sequence number + op count.
pub const PAYLOAD_PROLOGUE_BYTES: usize = 12;
/// Smallest encoded op (a node op: tag + class + index).
pub const MIN_OP_BYTES: usize = 9;
/// Sanity cap on a single record's payload; anything larger is treated as
/// corruption even when the buffer would cover it. Generous: ~6M edge ops.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 27;

const TAG_ADDED_NODE: u8 = 0;
const TAG_REMOVED_NODE: u8 = 1;
const TAG_ADDED_EDGE: u8 = 2;
const TAG_REMOVED_EDGE: u8 = 3;

/// One decoded WAL record: a committed transaction's delta batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic transaction sequence number.
    pub seq: u64,
    /// The batch, in application order.
    pub ops: Vec<DeltaOp>,
}

/// Outcome of decoding at the head of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A valid record occupying `consumed` bytes from the head.
    Record {
        /// The decoded record.
        record: Record,
        /// Total frame size (header + payload).
        consumed: usize,
    },
    /// The buffer is empty: a clean end of log.
    End,
    /// The bytes at the head are not a whole valid record — a torn or
    /// corrupt tail that recovery truncates.
    Torn(String),
}

/// Append the frame for `(seq, ops)` to `out`. Returns the frame size.
pub fn encode_record(seq: u64, ops: &[DeltaOp], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    // Header placeholder, patched below.
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    let payload_at = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_op(op, out);
    }
    let payload_len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

fn encode_op(op: &DeltaOp, out: &mut Vec<u8>) {
    match *op {
        DeltaOp::AddedNode(o) => {
            out.push(TAG_ADDED_NODE);
            encode_oid(o, out);
        }
        DeltaOp::RemovedNode(o) => {
            out.push(TAG_REMOVED_NODE);
            encode_oid(o, out);
        }
        DeltaOp::AddedEdge(e) => {
            out.push(TAG_ADDED_EDGE);
            encode_edge(&e, out);
        }
        DeltaOp::RemovedEdge(e) => {
            out.push(TAG_REMOVED_EDGE);
            encode_edge(&e, out);
        }
    }
}

fn encode_oid(o: Oid, out: &mut Vec<u8>) {
    out.extend_from_slice(&o.class.0.to_le_bytes());
    out.extend_from_slice(&o.index.to_le_bytes());
}

fn encode_edge(e: &Edge, out: &mut Vec<u8>) {
    encode_oid(e.src, out);
    out.extend_from_slice(&e.prop.0.to_le_bytes());
    encode_oid(e.dst, out);
}

/// Decode the record at the head of `buf`. Total: every input maps to
/// `Record`, `End`, or `Torn` — never a panic, never an oversized
/// allocation.
pub fn decode_record(buf: &[u8]) -> Decoded {
    if buf.is_empty() {
        return Decoded::End;
    }
    if buf.len() < FRAME_HEADER_BYTES {
        return Decoded::Torn(format!(
            "{}-byte tail is shorter than a frame header",
            buf.len()
        ));
    }
    let payload_len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if !(PAYLOAD_PROLOGUE_BYTES..=MAX_PAYLOAD_BYTES).contains(&payload_len) {
        return Decoded::Torn(format!("implausible payload length {payload_len}"));
    }
    let Some(payload) = buf.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + payload_len) else {
        return Decoded::Torn(format!(
            "torn record: frame claims {payload_len} payload bytes, {} available",
            buf.len() - FRAME_HEADER_BYTES
        ));
    };
    if crc32(payload) != stored_crc {
        return Decoded::Torn("payload checksum mismatch".to_owned());
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let op_count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    // Validate the count against the bytes actually present before sizing
    // any allocation from it.
    let body = &payload[PAYLOAD_PROLOGUE_BYTES..];
    if op_count > body.len() / MIN_OP_BYTES {
        return Decoded::Torn(format!(
            "op count {op_count} exceeds what {} payload bytes can hold",
            body.len()
        ));
    }
    let mut ops = Vec::with_capacity(op_count);
    let mut at = 0;
    for k in 0..op_count {
        match decode_op(&body[at..]) {
            Some((op, used)) => {
                ops.push(op);
                at += used;
            }
            None => return Decoded::Torn(format!("malformed op {k} in checksummed payload")),
        }
    }
    if at != body.len() {
        return Decoded::Torn(format!(
            "payload carries {} trailing bytes past its {op_count} ops",
            body.len() - at
        ));
    }
    Decoded::Record {
        record: Record { seq, ops },
        consumed: FRAME_HEADER_BYTES + payload_len,
    }
}

fn decode_op(buf: &[u8]) -> Option<(DeltaOp, usize)> {
    let (&tag, rest) = buf.split_first()?;
    match tag {
        TAG_ADDED_NODE | TAG_REMOVED_NODE => {
            let o = decode_oid(rest.get(0..8)?);
            let op = if tag == TAG_ADDED_NODE {
                DeltaOp::AddedNode(o)
            } else {
                DeltaOp::RemovedNode(o)
            };
            Some((op, 9))
        }
        TAG_ADDED_EDGE | TAG_REMOVED_EDGE => {
            let b = rest.get(0..20)?;
            let e = Edge::new(
                decode_oid(&b[0..8]),
                PropId(u32::from_le_bytes(b[8..12].try_into().unwrap())),
                decode_oid(&b[12..20]),
            );
            let op = if tag == TAG_ADDED_EDGE {
                DeltaOp::AddedEdge(e)
            } else {
                DeltaOp::RemovedEdge(e)
            };
            Some((op, 21))
        }
        _ => None,
    }
}

fn decode_oid(b: &[u8]) -> Oid {
    Oid::new(
        ClassId(u32::from_le_bytes(b[0..4].try_into().unwrap())),
        u32::from_le_bytes(b[4..8].try_into().unwrap()),
    )
}

/// A fully decoded log: the valid record prefix plus how it ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLog {
    /// Every valid record, in log order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (the truncation point when torn).
    pub valid_len: u64,
    /// `Some(reason)` when the log ended in a torn/corrupt tail rather
    /// than cleanly.
    pub torn: Option<String>,
}

/// Decode a whole log buffer into its valid record prefix, stopping —
/// never failing — at the first torn or corrupt frame. Sequence numbers
/// must increase by exactly one from `first_seq`; a checksummed record
/// with an unexpected sequence number marks the tail torn at that record
/// (it is stale or misplaced data, not replayable history).
pub fn decode_log(buf: &[u8], first_seq: u64) -> DecodedLog {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut expect = first_seq;
    loop {
        match decode_record(&buf[at..]) {
            Decoded::End => {
                return DecodedLog {
                    records,
                    valid_len: at as u64,
                    torn: None,
                }
            }
            Decoded::Torn(reason) => {
                return DecodedLog {
                    records,
                    valid_len: at as u64,
                    torn: Some(reason),
                }
            }
            Decoded::Record { record, consumed } => {
                if record.seq != expect {
                    return DecodedLog {
                        records,
                        valid_len: at as u64,
                        torn: Some(format!(
                            "sequence break: expected txn {expect}, found {}",
                            record.seq
                        )),
                    };
                }
                expect += 1;
                at += consumed;
                records.push(record);
            }
        }
    }
}

/// The inverse of a delta op — what a compensation record logs for each
/// op undone by a sequence-level rollback, so that forward replay of the
/// whole log reproduces the rolled-back state.
pub fn invert_op(op: &DeltaOp) -> DeltaOp {
    match *op {
        DeltaOp::AddedNode(o) => DeltaOp::RemovedNode(o),
        DeltaOp::RemovedNode(o) => DeltaOp::AddedNode(o),
        DeltaOp::AddedEdge(e) => DeltaOp::RemovedEdge(e),
        DeltaOp::RemovedEdge(e) => DeltaOp::AddedEdge(e),
    }
}

/// Convenience used by storage-free callers (tests, tools): decode and
/// return the records of a log that must be clean and start at seq 1.
pub fn decode_clean_log(buf: &[u8]) -> WalResult<Vec<Record>> {
    let decoded = decode_log(buf, 1);
    match decoded.torn {
        None => Ok(decoded.records),
        Some(reason) => Err(WalError::Io(format!("log is not clean: {reason}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic xorshift generator — the fuzz tests below run
    /// under Miri, where pulling in the vendored `rand` dev-dependency is
    /// unnecessary weight; 64 bits of xorshift* is plenty for byte fuzz.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn sample_ops(rng: &mut XorShift, n: usize) -> Vec<DeltaOp> {
        (0..n)
            .map(|_| {
                let o = Oid::new(ClassId(rng.below(4) as u32), rng.below(100) as u32);
                let e = Edge::new(
                    o,
                    PropId(rng.below(6) as u32),
                    Oid::new(ClassId(rng.below(4) as u32), rng.below(100) as u32),
                );
                match rng.below(4) {
                    0 => DeltaOp::AddedNode(o),
                    1 => DeltaOp::RemovedNode(o),
                    2 => DeltaOp::AddedEdge(e),
                    _ => DeltaOp::RemovedEdge(e),
                }
            })
            .collect()
    }

    #[test]
    fn round_trips_every_op_shape() {
        let mut rng = XorShift(0xD00D_F00D);
        for seq in 1..40u64 {
            let ops = sample_ops(&mut rng, (seq % 9) as usize);
            let mut buf = Vec::new();
            let n = encode_record(seq, &ops, &mut buf);
            assert_eq!(n, buf.len());
            match decode_record(&buf) {
                Decoded::Record { record, consumed } => {
                    assert_eq!(consumed, n);
                    assert_eq!(record.seq, seq);
                    assert_eq!(record.ops, ops);
                }
                other => panic!("round trip failed: {other:?}"),
            }
        }
    }

    #[test]
    fn log_of_many_records_decodes_in_order() {
        let mut rng = XorShift(42);
        let mut buf = Vec::new();
        let mut want = Vec::new();
        for seq in 1..=25u64 {
            let ops = sample_ops(&mut rng, 1 + (seq % 5) as usize);
            encode_record(seq, &ops, &mut buf);
            want.push(Record { seq, ops });
        }
        let decoded = decode_log(&buf, 1);
        assert_eq!(decoded.torn, None);
        assert_eq!(decoded.valid_len, buf.len() as u64);
        assert_eq!(decoded.records, want);
    }

    /// Crash at every byte boundary: any prefix of a valid log decodes to
    /// the whole records that fit, with the partial frame reported torn —
    /// never a panic, never a replayed partial record.
    #[test]
    fn every_prefix_is_a_clean_record_prefix() {
        let mut rng = XorShift(7);
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 1..=8u64 {
            encode_record(seq, &sample_ops(&mut rng, 1 + (seq % 4) as usize), &mut buf);
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let decoded = decode_log(&buf[..cut], 1);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.records.len(), whole, "cut at {cut}");
            assert_eq!(
                decoded.valid_len as usize, boundaries[whole],
                "cut at {cut}"
            );
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(decoded.torn.is_none(), at_boundary, "cut at {cut}");
        }
    }

    /// Any single-bit flip anywhere in the log is caught: decoding still
    /// succeeds structurally and never yields a record that differs from
    /// the original stream (the flip either truncates the tail at the
    /// corrupt record or, when it hits a length prefix, at that frame).
    #[test]
    fn bit_flips_never_smuggle_a_corrupt_record_through() {
        let mut rng = XorShift(99);
        let mut buf = Vec::new();
        let mut want = Vec::new();
        for seq in 1..=5u64 {
            let ops = sample_ops(&mut rng, 2);
            encode_record(seq, &ops, &mut buf);
            want.push(Record { seq, ops });
        }
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut mutated = buf.clone();
                mutated[byte] ^= 1 << bit;
                let decoded = decode_log(&mutated, 1);
                for (k, rec) in decoded.records.iter().enumerate() {
                    assert_eq!(
                        rec, &want[k],
                        "flip at byte {byte} bit {bit} altered a decoded record"
                    );
                }
            }
        }
    }

    /// Pure noise: random byte soup of every small length decodes to a
    /// structured verdict without panicking.
    #[test]
    fn random_byte_streams_decode_totally() {
        let mut rng = XorShift(0xBEEF);
        for len in 0..200usize {
            for _ in 0..8 {
                let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
                let decoded = decode_log(&bytes, 1);
                assert!(decoded.valid_len as usize <= len);
                // Whatever was reported valid must re-decode identically.
                let again = decode_log(&bytes[..decoded.valid_len as usize], 1);
                assert_eq!(again.records, decoded.records);
            }
        }
    }

    /// A hostile op count cannot drive an allocation: the frame says
    /// "4 billion ops" but carries 12 payload bytes, so the decoder must
    /// reject it before sizing anything.
    #[test]
    fn oversized_op_count_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        encode_record(1, &[], &mut buf);
        // Patch op_count to u32::MAX and fix the checksum so only the
        // count validation can catch it.
        let payload_at = FRAME_HEADER_BYTES;
        buf[payload_at + 8..payload_at + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32(&buf[payload_at..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        match decode_record(&buf) {
            Decoded::Torn(reason) => assert!(reason.contains("op count"), "{reason}"),
            other => panic!("expected torn verdict, got {other:?}"),
        }
    }

    /// An implausible length prefix (larger than the cap) is rejected
    /// even when a huge buffer could technically satisfy it.
    #[test]
    fn length_prefix_is_capped() {
        let mut buf = vec![0u8; FRAME_HEADER_BYTES];
        buf[0..4].copy_from_slice(&(MAX_PAYLOAD_BYTES as u32 + 1).to_le_bytes());
        match decode_record(&buf) {
            Decoded::Torn(reason) => assert!(reason.contains("implausible"), "{reason}"),
            other => panic!("expected torn verdict, got {other:?}"),
        }
    }

    #[test]
    fn sequence_breaks_mark_the_tail_torn() {
        let mut buf = Vec::new();
        encode_record(1, &[], &mut buf);
        encode_record(3, &[], &mut buf); // skips seq 2
        let decoded = decode_log(&buf, 1);
        assert_eq!(decoded.records.len(), 1);
        assert!(decoded.torn.unwrap().contains("sequence break"));
    }

    #[test]
    fn invert_round_trips() {
        let mut rng = XorShift(5);
        for op in sample_ops(&mut rng, 50) {
            assert_eq!(invert_op(&invert_op(&op)), op);
        }
    }
}
