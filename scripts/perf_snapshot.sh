#!/usr/bin/env sh
# Regenerate the bench snapshots at the repository root with JSON output
# enabled, assembling before/after pairs with the bench_snapshot binary:
#
#   BENCH_1.json — the storage / fan-out benches (DESIGN.md "Storage
#                  layer"): seq_vs_par, chase, instance_index;
#   BENCH_2.json — the incremental-view benches (DESIGN.md "Incremental
#                  view maintenance"): view_maintenance;
#   BENCH_3.json — the flat relation kernel (DESIGN.md "Storage layer"):
#                  relation_kernel (BTreeSet vs flat operator pairs), plus
#                  chase and view_maintenance reruns pinning the series
#                  that must not regress under the new storage;
#   BENCH_5.json — coloring-certified sharded execution (DESIGN.md
#                  "Sharded execution"): seq_vs_shard steady-state wave
#                  pairs across a 1/2/4/8 thread axis, uniform and
#                  Zipf-skewed receiver distributions plus 25%/50%
#                  cross-shard fallback series (EXPERIMENTS.md P11);
#   BENCH_6.json — the solver-upgraded shard planner (DESIGN.md
#                  "Condition satisfiability"): seq_vs_shard rerun with
#                  the sharded-upgraded/xs25|xs50 arms enabled, so the
#                  sharded vs sharded-upgraded pair prices the
#                  conservative co-shard rule (EXPERIMENTS.md P12);
#   BENCH_7.json — the durability layer (DESIGN.md "Durability layer"):
#                  wal_recovery commit-overhead, fsync-batching, and
#                  recovery-vs-rebuild series (EXPERIMENTS.md P13);
#   BENCH_8.json — the program-level plan pipeline (DESIGN.md
#                  "Expression-DAG planner"): plan_pipeline one-at-a-time
#                  vs compiled-DAG execution pairs over uniform and
#                  Zipf-skewed instances, the planning-overhead pair, and
#                  the CSE and netting passes priced separately
#                  (EXPERIMENTS.md P14);
#   BENCH_9.json — the plan profiler and flight recorder (DESIGN.md
#                  "Plan profiler and flight recorder"): profiler
#                  plain/analyze/analyze_full pairs on the mixed program
#                  (compare plain against BENCH_8.json plan/program for
#                  the disabled-path claim), the disabled-gate series,
#                  the netting proof-cache cold/warm compile pair, and a
#                  wal_recovery rerun pricing recovery with the replay
#                  path landing ops in the instance alone
#                  (EXPERIMENTS.md P15);
#   BENCH_4.json — the observability layer (DESIGN.md "Observability
#                  layer"): obs_overhead off/on pairs, relation_kernel and
#                  view_maintenance reruns with the (disabled) obs hooks in
#                  the tree — compare against BENCH_3.json for the
#                  noise-level claim of EXPERIMENTS.md P10 — and embedded
#                  metrics snapshots of two instrumented example runs.
set -eu
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, so a relative path would land in crates/bench/.
DIR="$(pwd)/target/bench-json"
rm -rf "$DIR"
mkdir -p "$DIR"

BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench seq_vs_par
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench chase
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench instance_index

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR" BENCH_1.json

DIR2="$(pwd)/target/bench-json-2"
rm -rf "$DIR2"
mkdir -p "$DIR2"

BENCH_JSON_DIR="$DIR2" cargo bench -p receivers-bench --bench view_maintenance

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR2" BENCH_2.json

DIR3="$(pwd)/target/bench-json-3"
rm -rf "$DIR3"
mkdir -p "$DIR3"

BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench relation_kernel
BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench chase
BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench view_maintenance

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR3" BENCH_3.json

DIR4="$(pwd)/target/bench-json-4"
rm -rf "$DIR4"
mkdir -p "$DIR4"

# The obs hooks stay disabled (RECEIVERS_TRACE/RECEIVERS_METRICS unset)
# for the timing reruns: their medians must sit within noise of the
# BENCH_3.json series recorded before the instrumentation existed.
BENCH_JSON_DIR="$DIR4" cargo bench -p receivers-bench --bench obs_overhead
BENCH_JSON_DIR="$DIR4" cargo bench -p receivers-bench --bench relation_kernel
BENCH_JSON_DIR="$DIR4" cargo bench -p receivers-bench --bench view_maintenance

# Metrics snapshots of instrumented end-to-end runs, embedded into the
# snapshot (rt steals need real workers, so pin a multi-thread pool).
RECEIVERS_RT_THREADS=4 cargo run --release --example order_independence -- \
    --metrics-json "$DIR4/metrics-order_independence.json"
RECEIVERS_RT_THREADS=4 cargo run --release --example parallel_vs_sequential -- \
    --metrics-json "$DIR4/metrics-parallel_vs_sequential.json"
cargo run --release -p receivers-obs --bin obs_check -- \
    --metrics "$DIR4/metrics-order_independence.json" \
    --manifest crates/obs/metrics_manifest.txt
cargo run --release -p receivers-obs --bin obs_check -- \
    --metrics "$DIR4/metrics-parallel_vs_sequential.json" \
    --manifest crates/obs/metrics_manifest.txt

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR4" BENCH_4.json

DIR5="$(pwd)/target/bench-json-5"
rm -rf "$DIR5"
mkdir -p "$DIR5"

# The thread axis is an env knob so constrained hosts can trim the sweep
# (e.g. RECEIVERS_BENCH_THREADS="1,4" scripts/perf_snapshot.sh).
RECEIVERS_BENCH_THREADS="${RECEIVERS_BENCH_THREADS:-1,2,4,8}" \
    BENCH_JSON_DIR="$DIR5" cargo bench -p receivers-bench --bench seq_vs_shard

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR5" BENCH_5.json

DIR6="$(pwd)/target/bench-json-6"
rm -rf "$DIR6"
mkdir -p "$DIR6"

# Rerun of the seq_vs_shard suite now that the bench carries the
# sharded-upgraded arms: same sequential/sharded series as BENCH_5.json
# (expect them within noise of that snapshot) plus the upgraded xs pair.
RECEIVERS_BENCH_THREADS="${RECEIVERS_BENCH_THREADS:-1,2,4,8}" \
    BENCH_JSON_DIR="$DIR6" cargo bench -p receivers-bench --bench seq_vs_shard

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR6" BENCH_6.json

DIR7="$(pwd)/target/bench-json-7"
rm -rf "$DIR7"
mkdir -p "$DIR7"

# The durability layer: WAL commit overhead against the plain viewed
# driver, the group-commit fsync-batching pair over real files, and
# recovery (snapshot + tail replay) against the from-scratch view rebuild
# a non-durable restart pays anyway.
BENCH_JSON_DIR="$DIR7" cargo bench -p receivers-bench --bench wal_recovery

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR7" BENCH_7.json

DIR8="$(pwd)/target/bench-json-8"
rm -rf "$DIR8"
mkdir -p "$DIR8"

# The program-level planner: whole update programs one statement at a
# time (the pre-planner path) against the compiled expression-DAG
# pipeline, with the planning overhead and the CSE/netting passes each
# priced by their own pair.
BENCH_JSON_DIR="$DIR8" cargo bench -p receivers-bench --bench plan_pipeline

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR8" BENCH_8.json

DIR9="$(pwd)/target/bench-json-9"
rm -rf "$DIR9"
mkdir -p "$DIR9"

# The plan profiler: the mixed program with profiling off (must match
# the BENCH_8.json compiled arm), with the measurement tree collected,
# and fully enabled (metrics + flight ring), plus the disabled-path
# gate, the netting proof-cache cold/warm pair, and a wal_recovery
# rerun pricing recovery now that replay lands ops in the instance
# alone (the view is rebuilt once at the end instead of maintained
# record by record).
BENCH_JSON_DIR="$DIR9" cargo bench -p receivers-bench --bench profiler
BENCH_JSON_DIR="$DIR9" cargo bench -p receivers-bench --bench wal_recovery

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR9" BENCH_9.json
