#!/usr/bin/env sh
# Regenerate BENCH_1.json at the repository root: run the three storage /
# fan-out benches with JSON output enabled, then assemble before/after
# pairs with the bench_snapshot binary. See DESIGN.md "Storage layer".
set -eu
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, so a relative path would land in crates/bench/.
DIR="$(pwd)/target/bench-json"
rm -rf "$DIR"
mkdir -p "$DIR"

BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench seq_vs_par
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench chase
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench instance_index

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR" BENCH_1.json
