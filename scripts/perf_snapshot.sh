#!/usr/bin/env sh
# Regenerate the bench snapshots at the repository root with JSON output
# enabled, assembling before/after pairs with the bench_snapshot binary:
#
#   BENCH_1.json — the storage / fan-out benches (DESIGN.md "Storage
#                  layer"): seq_vs_par, chase, instance_index;
#   BENCH_2.json — the incremental-view benches (DESIGN.md "Incremental
#                  view maintenance"): view_maintenance;
#   BENCH_3.json — the flat relation kernel (DESIGN.md "Storage layer"):
#                  relation_kernel (BTreeSet vs flat operator pairs), plus
#                  chase and view_maintenance reruns pinning the series
#                  that must not regress under the new storage.
set -eu
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, so a relative path would land in crates/bench/.
DIR="$(pwd)/target/bench-json"
rm -rf "$DIR"
mkdir -p "$DIR"

BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench seq_vs_par
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench chase
BENCH_JSON_DIR="$DIR" cargo bench -p receivers-bench --bench instance_index

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR" BENCH_1.json

DIR2="$(pwd)/target/bench-json-2"
rm -rf "$DIR2"
mkdir -p "$DIR2"

BENCH_JSON_DIR="$DIR2" cargo bench -p receivers-bench --bench view_maintenance

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR2" BENCH_2.json

DIR3="$(pwd)/target/bench-json-3"
rm -rf "$DIR3"
mkdir -p "$DIR3"

BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench relation_kernel
BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench chase
BENCH_JSON_DIR="$DIR3" cargo bench -p receivers-bench --bench view_maintenance

cargo run --release -p receivers-bench --bin bench_snapshot -- "$DIR3" BENCH_3.json
