//! EXPLAIN / EXPLAIN ANALYZE end to end: one mixed six-statement program
//! compiled once and run through all three drivers — sequential viewed,
//! sharded, durable — with the static plan tree and a measured profile
//! for each, plus the flight recorder's panic and recovery dumps. The
//! "Profiling a program" quickstart of the README.
//!
//! ```sh
//! # static EXPLAIN only (nothing executes twice):
//! cargo run --example profile_program -- --explain-plan
//! # EXPLAIN ANALYZE on all three drivers, human tree to stderr:
//! cargo run --example profile_program -- --profile
//! # machine-readable round-trips:
//! cargo run --example profile_program -- --explain-json explain.json \
//!     --profile-json profile.json --profile-chrome profile-trace.json
//! # flight recorder: keep the last completed profiles in a crash ring
//! # and dump them from the panic hook:
//! RECEIVERS_FLIGHT=1 RECEIVERS_FLIGHT_DUMP=flight.json \
//!     cargo run --example profile_program -- --profile --panic
//! ```

use std::sync::Arc;

use receivers::core::shard::ShardConfig;
use receivers::obs;
use receivers::relalg::view::DatabaseView;
use receivers::sql::catalog::employee_catalog;
use receivers::sql::scenarios::section7_instance;
use receivers::sql::{compile_program, parse};
use receivers::wal::{DirStorage, DurableStore, WalConfig};

/// The mixed program: every stage kind and every planner pass fires —
/// netting (statement 4 kills statement 2's store), selector CSE
/// (statements 1 and 2 share a guard), the improve rewrite (statement 3
/// becomes one vectorized `par(E)` stage), and a guarded cursor loop.
const MIXED_PROGRAM: &[&str] = &[
    "update Employee set Manager = \
     (select E1.EmpId from Employee E1 where E1.Manager = E1.EmpId) \
     where Salary in table Fire",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary in table Fire",
    "for each t in Employee do update t set Salary = \
     (select New from NewSal where Old = Salary)",
    "update Employee set Salary = (select Amount from Fire)",
    "update Employee set Salary = (select New from NewSal where Old = Salary) \
     where Salary not in table Fire",
    "for each t in Employee do if Manager = EmpId update t set Salary = \
     (select New from NewSal where Old = Salary)",
];

fn main() {
    let (cli, rest) = match obs::cli::ObsCli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("profile_program: {e}");
            std::process::exit(2);
        }
    };
    let mut dir: Option<std::path::PathBuf> = None;
    let mut do_panic = false;
    let mut args = rest.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = Some(d.into()),
                None => {
                    eprintln!("profile_program: --dir needs a path");
                    std::process::exit(2);
                }
            },
            "--panic" => do_panic = true,
            _ => {
                eprintln!(
                    "usage: profile_program [--dir <store-dir>] [--panic] \
                     [--explain-plan] [--explain-json <out.json>] [--profile] \
                     [--profile-json <out.json>] [--profile-chrome <out.json>] \
                     [--trace <out.json>] [--metrics] [--metrics-json <out.json>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The flight recorder survives panics: completed root spans and
    // profiles land in the crash ring, and the hook dumps the ring
    // (human to stderr, JSON to $RECEIVERS_FLIGHT_DUMP) on the way down.
    obs::flight::install_panic_hook();

    let keep = dir.is_some();
    let root = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("receivers-profile-{}", std::process::id()))
    });

    let (es, catalog) = employee_catalog();
    let stmts: Vec<_> = MIXED_PROGRAM
        .iter()
        .map(|t| parse(t).expect("pool statement parses"))
        .collect();
    let plan = compile_program(&stmts, &catalog).expect("program compiles");
    let (i0, _) = section7_instance(&es);
    println!(
        "compiled {} statements into {} stages ({} netted) over a {}-node DAG",
        stmts.len(),
        plan.stages().len(),
        plan.stages().iter().filter(|s| s.netted()).count(),
        plan.graph().len(),
    );

    // EXPLAIN: the static plan tree — planner decisions with their
    // proofs, footprints, predicted shard placement, the nested DAG.
    if cli.explain_requested() {
        if let Err(e) = cli.export_explain(&plan.explain()) {
            eprintln!("profile_program: writing explain output: {e}");
            std::process::exit(2);
        }
    }

    // EXPLAIN ANALYZE: the same execution each driver always does, with
    // a per-stage measurement tree collected alongside.
    let mut viewed = i0.clone();
    let mut view = DatabaseView::new(&viewed);
    let (out, viewed_prof) = plan
        .execute_viewed_profiled(&mut viewed, &mut view)
        .expect("viewed driver");
    assert!(out.is_applied());
    assert!(view.matches_rebuild(&viewed));

    let mut sharded = i0.clone();
    let (out, sharded_prof) = plan
        .execute_sharded_profiled(&mut sharded, &ShardConfig::default())
        .expect("sharded driver");
    assert!(out.is_applied());
    assert_eq!(sharded, viewed, "sharded driver is bit-identical");

    let storage = DirStorage::open(&root).expect("store directory");
    let mut store =
        DurableStore::create(storage, Arc::clone(&es.schema), WalConfig::default(), &i0)
            .expect("fresh store");
    let mut durable = i0.clone();
    let mut dview = DatabaseView::new(&durable);
    let (out, durable_prof) = plan
        .execute_durable_profiled(&mut durable, &mut dview, &mut store)
        .expect("durable driver");
    assert!(out.is_applied());
    assert_eq!(durable, viewed, "durable driver is bit-identical");
    let wal = store.stats();
    println!(
        "all three drivers agree; WAL: {} record(s), {} byte(s), {} sync(s)",
        wal.records, wal.bytes, wal.syncs
    );

    // One document for the whole session: the three driver trees under a
    // single root, so the JSON/Chrome outputs compare drivers side by
    // side.
    let mut session = obs::ProfileNode::new("profile_program", "session");
    session.start_ns = viewed_prof.start_ns;
    session.wall_ns = viewed_prof.wall_ns + sharded_prof.wall_ns + durable_prof.wall_ns;
    session.children = vec![viewed_prof, sharded_prof, durable_prof];
    if cli.profile_requested() {
        if let Err(e) = cli.export_profile(&session) {
            eprintln!("profile_program: writing profile output: {e}");
            std::process::exit(2);
        }
    }

    // "Restart": recover the durable run from the files alone. With the
    // flight recorder on, recovery leaves a `wal.recovery` entry in the
    // ring and dumps it to $RECEIVERS_FLIGHT_DUMP.
    drop(store);
    let storage = DirStorage::open(&root).expect("store directory");
    let (_store, recovered, rview, report) =
        DurableStore::open(storage, Arc::clone(&es.schema), WalConfig::default())
            .expect("recovery");
    assert_eq!(recovered, durable, "recovery is bit-identical");
    assert!(rview.matches_rebuild(&recovered));
    println!(
        "recovered: epoch {}, {} record(s) / {} op(s) replayed",
        report.epoch, report.records_replayed, report.ops_replayed
    );

    if keep {
        println!("store kept under {}", root.display());
    } else {
        let _ = std::fs::remove_dir_all(&root);
    }

    if do_panic {
        panic!("deliberate crash: the flight recorder dumps the ring from the panic hook");
    }

    if let Err(e) = cli.finish() {
        eprintln!("profile_program: writing observability output: {e}");
        std::process::exit(2);
    }
}
