-- Condition-satisfiability fixtures (R0501 / R0502).
--
-- Statement 1: the WHERE contradicts itself (a membership and its own
-- negation), so the delete never fires — R0501 with the solver's proof.
-- Statement 2: the duplicated conjunct is subsumed by the other copy —
-- R0502, twice (each copy implies the other).
-- Statement 3: a guarded cursor body whose guard forces a shared Salary
-- value and then denies it — R0501 inside a FOR EACH.
-- Statement 4: satisfiable and irredundant — no R05xx diagnostics.

delete from Employee where Salary in table Fire and Salary not in table Fire;

delete from Employee where Salary in table Fire and Salary in table Fire;

for each t in Employee do if t.Salary = Salary and Salary <> Salary delete t from Employee;

delete from Employee where Salary in table Fire and Manager <> EmpId
