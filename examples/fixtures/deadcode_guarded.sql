-- Guarded overwrites refined by the satisfiability solver.
--
-- Statement 2's guard (`Manager <> EmpId`) is provably disjoint from
-- statement 1's (`Manager = EmpId`), so it overwrites none of statement
-- 1's rows and does NOT kill it — the old coarse rule would have fired
-- R0201 here. Statement 3's guard is identical to statement 1's, so it
-- provably covers it: statement 1 IS dead (R0201, proof attached), even
-- though a disjoint write sits in between. Statements 2 and 3 stay live.

update Employee set Salary = (select Old from NewSal) where Manager = EmpId;

update Employee set Salary = (select New from NewSal) where Manager <> EmpId;

update Employee set Salary = (select New from NewSal) where Manager = EmpId
