-- The paper's cursor-delete shape on the library catalog described in
-- library.cat: purge every book whose topic is banned.

for each b in Book do if Topic in table Banned delete b from Book
