-- Shardability certification fixtures (R0503).
--
-- Statement 1: update (B) — key-order independent, and its only
-- read/write conflict (Salary) is discharged by the solver's
-- pinned-reads proof, so it is certified to shard cleanly (R0503).
-- Statement 2: update (C) reads *other* rows' Salary through the join,
-- so the conflict cannot be discharged — no R0503 (it runs on the
-- ordered coordinator path instead).
-- Statement 3: a set-oriented update has no algebraic cursor form to
-- certify — silent.

for each t in Employee do update t set Salary = (select New from NewSal where Old = Salary);

for each t in Employee do update t set Salary = (select New from Employee E1, NewSal where E1.EmpId = Manager and Old = E1.Salary);

update Employee set Salary = (select New from NewSal where Old = Salary)
