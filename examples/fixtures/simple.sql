-- The paper's first example alone: a cursor delete whose coloring is
-- simple (R0101). The NewSal table is never touched (R0202).

for each t in Employee do if Salary in table Fire delete t from Employee
