-- The first assignment is dead (R0201): the second statement overwrites
-- Salary for every employee without anything reading it in between.

update Employee set Salary = (select New from NewSal where Old = Salary);

update Employee set Salary = (select Amount from Fire)
