-- The Section 7 walkthrough: both delete styles, then updates (A), (B)
-- and (C). The lint verdicts reproduce the paper's analysis statically:
-- the simple cursor delete is certified (R0101), the manager-based one
-- is warned about (R0102, Employee colored both d and u), update (B) is
-- certified by Theorem 5.12 and offered the set-oriented rewrite
-- (R0103 + R0301), and update (C) is proved order dependent (R0104).

delete from Employee where Salary in table Fire;

for each t in Employee do if Salary in table Fire delete t from Employee;

for each t in Employee do if exists (select * from Employee E1 where E1.EmpId = Manager and E1.Salary in table Fire) delete t from Employee;

update Employee set Salary = (select New from NewSal where Old = Salary);

for each t in Employee do update t set Salary = (select New from NewSal where Old = Salary);

for each t in Employee do update t set Salary = (select New from Employee E1, NewSal where E1.EmpId = Manager and Old = E1.Salary)
