//! Quickstart: the paper's running example from Section 2 onward.
//!
//! Builds the drinker/bar/beer schema, replays Figures 2–5, and shows the
//! three flavours of order-independence checking the library offers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use receivers::core::methods::{add_bar, favorite_bar};
use receivers::core::sequential::{apply_seq, apply_sequence, order_independent_on};
use receivers::core::{decide_key_order_independence, decide_order_independence};
use receivers::objectbase::display::to_dot;
use receivers::objectbase::examples::{beer_schema, figure2};
use receivers::objectbase::{Receiver, ReceiverSet, UpdateMethod};

fn main() {
    let s = beer_schema();
    println!("The schema of Example 2.3:\n{}\n", s.schema);

    let (i, o) = figure2(&s);
    println!("Figure 2 — the instance I:\n{i}\n");

    // --- Single-receiver application (Example 2.7). ---
    let add = add_bar(&s);
    let fav = favorite_bar(&s);
    let t3 = Receiver::new(vec![o.d1, o.bar3]);
    let t1 = Receiver::new(vec![o.d1, o.bar1]);

    let fig3 = add.apply(&i, &t3).expect_done("add_bar");
    println!("Figure 3 — add_bar(I, [Drinker₁, Bar₃]):\n{fig3}\n");

    let fig4 = fav.apply(&i, &t1).expect_done("favorite_bar");
    println!("Figure 4 — favorite_bar(I, [Drinker₁, Bar₁]):\n{fig4}\n");

    // --- Sequential application to a set (Section 3, Example 3.2). ---
    let t = ReceiverSet::from_iter([t1.clone(), t3.clone()]);

    println!("Applying add_bar to the receiver set {{[D₁,Bar₁], [D₁,Bar₃]}}:");
    match apply_seq(&add, &i, &t) {
        Ok(result) => println!(
            "  order independent — Drinker₁ now frequents {} bars\n",
            result.successors(o.d1, s.frequents).count()
        ),
        Err(e) => println!("  order dependent: {e:?}\n"),
    }

    println!("Applying favorite_bar to the same set:");
    match apply_seq(&fav, &i, &t) {
        Ok(_) => println!("  unexpectedly order independent!"),
        Err(_) => {
            let fig5 = apply_sequence(&fav, &i, &[t1.clone(), t3.clone()])
                .expect_done("favorite_bar twice");
            println!("  order DEPENDENT (Example 3.2): one order yields Figure 5:\n{fig5}");
        }
    }

    // --- The decision procedure of Theorem 5.12. ---
    println!("\nTheorem 5.12 verdicts (decided symbolically, no execution):");
    for m in [&add, &fav] {
        let abs = decide_order_independence(m).unwrap();
        let key = decide_key_order_independence(m).unwrap();
        println!(
            "  {:<14} order independent: {:<5}  key-order independent: {}",
            m.name(),
            abs.independent,
            key.independent
        );
    }

    // --- Operational check on a key set. ---
    let mut i2 = i.clone();
    let d2 = receivers::objectbase::Oid::new(s.drinker, 2);
    i2.add_object(d2);
    let key_set = ReceiverSet::from_iter([t1, Receiver::new(vec![d2, o.bar3])]);
    assert!(key_set.is_key_set());
    println!(
        "\nfavorite_bar on a key set is order independent: {}",
        order_independent_on(&fav, &i2, &key_set).is_independent()
    );

    println!(
        "\nGraphviz rendering of Figure 3:\n{}",
        to_dot(&fig3, "figure3")
    );
}
