//! The decision procedure of Theorem 5.12 in action, plus the machinery
//! underneath it: the Theorem 5.6 reduction, compilation to positive
//! queries, and containment under dependencies.
//!
//! ```sh
//! cargo run --example order_independence
//! # with observability output:
//! cargo run --example order_independence -- --trace trace.json --metrics
//! ```

use receivers::core::methods::{add_bar, add_serving_bars, delete_bar, favorite_bar};
use receivers::core::reduction::{build_reduction, IndependenceKind};
use receivers::core::{
    decide_key_order_independence, decide_order_independence, satisfies_prop_5_8,
};
use receivers::cq::compile_positive;
use receivers::objectbase::examples::beer_schema;
use receivers::objectbase::UpdateMethod;

fn main() {
    let (obs_cli, rest) = match receivers::obs::cli::ObsCli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("order_independence: {e}");
            std::process::exit(2);
        }
    };
    if !rest.is_empty() {
        eprintln!(
            "usage: order_independence [--trace <out.json>] [--metrics] [--metrics-json <out.json>]"
        );
        std::process::exit(2);
    }

    let s = beer_schema();
    let methods = [
        add_bar(&s),
        favorite_bar(&s),
        delete_bar(&s),
        add_serving_bars(&s),
    ];

    println!(
        "{:<18} {:>9} {:>11} {:>11} {:>10}",
        "method", "positive", "order-ind.", "key-order", "Prop. 5.8"
    );
    println!("{}", "-".repeat(64));
    for m in &methods {
        let abs = decide_order_independence(m).unwrap();
        let key = decide_key_order_independence(m).unwrap();
        println!(
            "{:<18} {:>9} {:>11} {:>11} {:>10}",
            m.name(),
            m.is_positive(),
            abs.independent,
            key.independent,
            satisfies_prop_5_8(m),
        );
    }

    // A look inside the reduction for favorite_bar.
    println!("\n--- Inside the Theorem 5.6 reduction for favorite_bar ---");
    let fav = favorite_bar(&s);
    let red = build_reduction(&fav, IndependenceKind::Absolute).unwrap();
    let (prop, tt, tpt) = &red.per_property[0];
    println!("updated property: {}", s.schema.prop_name(*prop));
    println!("|E_f[tt']| = {} AST nodes", tt.size());
    println!("|E_f[t't]| = {} AST nodes", tpt.size());
    println!("Σ contains {} dependencies", red.deps.len());

    let p = compile_positive(tt, &red.ctx).unwrap();
    let q = compile_positive(tpt, &red.ctx).unwrap();
    let (pd, pa) = p.size();
    let (qd, qa) = q.size();
    println!("compiled: {pd} disjuncts / {pa} atoms (tt'), {qd} disjuncts / {qa} atoms (t't)");

    let equivalent = receivers::cq::contain::equivalent_under(&p, &q, &red.deps, &red.ctx).unwrap();
    println!(
        "E_f[tt'] ≡_Σ E_f[t't]: {equivalent}  (⇒ favorite_bar order independent: {equivalent})"
    );

    // Key-order: the guard drops the argument-difference disjuncts and the
    // equivalence goes through.
    let red_key = build_reduction(&fav, IndependenceKind::KeyOrder).unwrap();
    let (_, tt_k, tpt_k) = &red_key.per_property[0];
    let pk = compile_positive(tt_k, &red_key.ctx).unwrap();
    let qk = compile_positive(tpt_k, &red_key.ctx).unwrap();
    let key_equiv =
        receivers::cq::contain::equivalent_under(&pk, &qk, &red_key.deps, &red_key.ctx).unwrap();
    println!(
        "under the key-order guard: equivalent = {key_equiv}  (Example 3.2: key-order independent)"
    );

    // A concrete exhaustive check (Definition 3.1) for contrast: all |T|!
    // enumerations of a 3-receiver set, fanned out over receivers-rt.
    use receivers::core::sequential::order_independent_on;
    use receivers::objectbase::examples::figure2;
    use receivers::objectbase::{Receiver, ReceiverSet};
    let (i, o) = figure2(&s);
    let t = ReceiverSet::from_iter([
        Receiver::new(vec![o.d1, o.bar1]),
        Receiver::new(vec![o.d1, o.bar2]),
        Receiver::new(vec![o.d1, o.bar3]),
    ]);
    // add_bar must survive all 3! enumerations; favorite_bar exits at the
    // first disagreeing one (visible in `--metrics` as
    // core.order.permutations_enumerated).
    let add_verdict = order_independent_on(&add_bar(&s), &i, &t);
    let fav_verdict = order_independent_on(&fav, &i, &t);
    println!(
        "\nexhaustive check on Figure 2, |T| = {}: add_bar independent = {}, favorite_bar independent = {}",
        t.len(),
        add_verdict.is_independent(),
        fav_verdict.is_independent()
    );

    if let Err(e) = obs_cli.finish() {
        eprintln!("order_independence: writing observability output: {e}");
        std::process::exit(2);
    }
}
