//! Saving and reloading object bases with the text format of
//! `receivers::objectbase::io`, then running the analysis stack on the
//! reloaded instance.
//!
//! ```sh
//! cargo run --example persistence
//! ```

use receivers::core::methods::add_bar;
use receivers::core::sequential::apply_seq;
use receivers::objectbase::examples::{beer_schema, figure2};
use receivers::objectbase::io::{from_text, to_text};
use receivers::objectbase::{Receiver, ReceiverSet};

fn main() {
    let s = beer_schema();
    let (i, o) = figure2(&s);

    let text = to_text(&i);
    println!("Figure 2 serialized ({} bytes):\n{text}", text.len());

    let reloaded = from_text(&text).expect("round trip");
    assert_eq!(reloaded, i);
    println!("reloaded instance equals the original: true");

    // The reloaded instance carries an equivalent schema, so methods
    // built against it work directly. Rebuild add_bar against the
    // reloaded schema's handles by name.
    let schema = reloaded.schema();
    let drinker = schema.class("Drinker").unwrap();
    let bar = schema.class("Bar").unwrap();
    let _ = (drinker, bar);
    let m = add_bar(&s); // structurally identical schema
    let t = ReceiverSet::from_iter([Receiver::new(vec![o.d1, o.bar3])]);
    let updated = apply_seq(&m, &reloaded, &t).expect("order independent");
    println!(
        "after add_bar on the reloaded instance, Drinker₁ frequents {} bars",
        updated.successors(o.d1, s.frequents).count()
    );
    println!("\nupdated instance re-serialized:\n{}", to_text(&updated));
}
