//! Parallel vs sequential set-oriented application (Section 6).
//!
//! Demonstrates:
//! * Theorem 6.5 — on key sets, sequential and parallel application of a
//!   key-order-independent method coincide, with the parallel strategy
//!   evaluating **one** algebra expression instead of `|T|`;
//! * Example 6.4 — on non-key sets, sequential application is strictly
//!   more powerful: it computes transitive closure where parallel
//!   application merely copies edges;
//! * a wall-clock comparison of the two strategies as `|T|` grows.
//!
//! ```sh
//! cargo run --release --example parallel_vs_sequential
//! # with a Chrome trace of every span (open in chrome://tracing):
//! cargo run --release --example parallel_vs_sequential -- --trace trace.json
//! # with the metrics summary / machine-readable metrics:
//! cargo run --release --example parallel_vs_sequential -- --metrics
//! cargo run --release --example parallel_vs_sequential -- --metrics-json metrics.json
//! ```

use std::time::Instant;

use receivers::core::methods::{favorite_bar, loop_schema, transitive_closure_method};
use receivers::core::parallel::apply_par;
use receivers::core::sequential::apply_seq_unchecked;
use receivers::objectbase::examples::beer_schema;
use receivers::objectbase::gen::{
    all_receivers, random_instance, random_receivers, InstanceParams,
};
use receivers::objectbase::{Instance, Oid, Signature};
use std::sync::Arc;

fn main() {
    let (obs_cli, rest) = match receivers::obs::cli::ObsCli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("parallel_vs_sequential: {e}");
            std::process::exit(2);
        }
    };
    if !rest.is_empty() {
        eprintln!(
            "usage: parallel_vs_sequential [--trace <out.json>] [--metrics] [--metrics-json <out.json>]"
        );
        std::process::exit(2);
    }

    // --- Theorem 6.5 coincidence + timing sweep. ---
    let s = beer_schema();
    let sig = Signature::new(vec![s.drinker, s.bar]).unwrap();
    let m = favorite_bar(&s);

    println!("favorite_bar on key sets: sequential vs parallel (Theorem 6.5)");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "|T|", "seq (µs)", "par (µs)", "equal"
    );
    for &n in &[1usize, 4, 16, 64, 256] {
        let i = random_instance(
            &s.schema,
            InstanceParams {
                objects_per_class: (n as u32).max(8) * 2,
                edge_density: 0.05,
            },
            42,
        );
        let t = random_receivers(&i, &sig, n, true, 7);

        let start = Instant::now();
        let seq = apply_seq_unchecked(&m, &i, &t).expect_done("seq");
        let seq_time = start.elapsed();

        let start = Instant::now();
        let par = apply_par(&m, &i, &t).unwrap();
        let par_time = start.elapsed();

        println!(
            "{:>8} {:>12} {:>12} {:>8}",
            t.len(),
            seq_time.as_micros(),
            par_time.as_micros(),
            seq == par
        );
    }

    // --- Example 6.4: the separation on non-key sets. ---
    println!("\nExample 6.4: transitive closure via sequential application");
    let ls = loop_schema("e", "tc");
    let mut i = Instance::empty(Arc::clone(&ls.schema));
    let objs: Vec<Oid> = (0..5).map(|k| Oid::new(ls.c, k)).collect();
    for &o in &objs {
        i.add_object(o);
    }
    for w in objs.windows(2) {
        i.link(w[0], ls.e, w[1]).unwrap();
    }
    println!("input: a 5-node e-chain ({} e-edges)", i.edge_count());

    let tc = transitive_closure_method(&ls);
    let sig = Signature::new(vec![ls.c, ls.c]).unwrap();
    let t = all_receivers(&i, &sig);
    println!(
        "receiver set: C × C = {} receivers (NOT a key set)",
        t.len()
    );

    let seq = apply_seq_unchecked(&tc, &i, &t).expect_done("seq");
    let par = apply_par(&tc, &i, &t).unwrap();
    println!(
        "sequential: {} tc-edges (the full transitive closure: 4+3+2+1 = 10)",
        seq.edges_labeled(ls.tc).count()
    );
    println!(
        "parallel:   {} tc-edges (each e-edge merely copied)",
        par.edges_labeled(ls.tc).count()
    );
    println!(
        "⇒ parallel application cannot simulate every order-independent\n  sequential application: transitive closure is not in the relational algebra."
    );

    if let Err(e) = obs_cli.finish() {
        eprintln!("parallel_vs_sequential: writing observability output: {e}");
        std::process::exit(2);
    }
}
