//! Section 7 end-to-end: parsing, compiling, analysing, executing and
//! *improving* the paper's SQL statements.
//!
//! ```sh
//! cargo run --example sql_updates
//! ```

use receivers::core::sequential::{apply_seq_unchecked, order_independent_on};
use receivers::sql::analyze::DeleteVerdict;
use receivers::sql::scenarios::*;
use receivers::sql::{
    analyze_cursor_delete, catalog::employee_catalog, compile, improve_cursor_update, parse,
    CompiledStatement,
};

fn main() {
    let (es, catalog) = employee_catalog();
    let (i, data) = section7_instance(&es);
    println!("Employee/Fire/NewSal instance:\n{i}");

    // --- Deletes. ---
    for (label, text) in [
        ("cursor delete (simple)", CURSOR_DELETE_SIMPLE),
        ("cursor delete (manager)", CURSOR_DELETE_MANAGER),
    ] {
        println!("\n=== {label} ===\n  {text}");
        let stmt = parse(text).unwrap();
        let CompiledStatement::CursorDelete(cd) = compile(&stmt, &catalog).unwrap() else {
            unreachable!()
        };
        let analysis = analyze_cursor_delete(&cd).unwrap();
        println!("  coloring:\n{}", indent(&analysis.coloring.to_string()));
        println!("  simple: {}", analysis.simple);
        match analysis.verdict {
            DeleteVerdict::OrderIndependent => {
                println!("  Theorem 4.23 ⇒ order independent — the cursor solution is safe")
            }
            DeleteVerdict::NotGuaranteed => {
                println!("  double color ⇒ no guarantee; checking operationally…");
                let m = cd.method();
                let t = cd.receivers(&i);
                let verdict = order_independent_on(&m, &i, &t);
                println!(
                    "  operational check: order independent = {} — use the set-oriented form!",
                    verdict.is_independent()
                );
            }
        }
    }

    // --- Updates (A), (B), (C). ---
    println!("\n=== updates (A), (B), (C) ===");
    let CompiledStatement::SetUpdate(a) = compile(&parse(UPDATE_A).unwrap(), &catalog).unwrap()
    else {
        unreachable!()
    };
    let CompiledStatement::CursorUpdate(b) =
        compile(&parse(CURSOR_UPDATE_B).unwrap(), &catalog).unwrap()
    else {
        unreachable!()
    };
    let CompiledStatement::CursorUpdate(c) =
        compile(&parse(CURSOR_UPDATE_C).unwrap(), &catalog).unwrap()
    else {
        unreachable!()
    };

    let alg_b = b.to_algebraic().unwrap();
    let alg_c = c.to_algebraic().unwrap();
    println!(
        "(B) decided key-order independent: {}",
        receivers::core::decide_key_order_independence(&alg_b)
            .unwrap()
            .independent
    );
    println!(
        "(C) decided key-order independent: {}",
        receivers::core::decide_key_order_independence(&alg_c)
            .unwrap()
            .independent
    );

    let via_a = a.apply(&i).unwrap();
    let via_b = apply_seq_unchecked(&b.interpreted_method(), &i, &b.receivers(&i)).expect_done("B");
    println!("(A) and (B) agree: {}", via_a == via_b);
    println!(
        "e1's salary after the raise: {:?} (a100 → a150)",
        via_a.successors(data.employees[0], es.salary).next()
    );

    // --- The improvement tool. ---
    println!("\n=== code improvement tool (Theorem 6.5) ===");
    match improve_cursor_update(&b).unwrap() {
        Ok(improved) => {
            println!("(B) improved to a single parallel evaluation:");
            println!("  assignment query: {}", improved.assignment_query);
            let improved_result = improved.apply(&i).unwrap();
            println!(
                "  result equals statement (A): {}",
                improved_result == via_a
            );
        }
        Err(r) => println!("(B) unexpectedly refused: {r:?}"),
    }
    match improve_cursor_update(&c).unwrap() {
        Ok(_) => println!("(C) unexpectedly improved!"),
        Err(r) => println!("(C) refused as expected: {r:?} — the cursor program is buggy"),
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
