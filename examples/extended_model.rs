//! The extended object model of footnote 1 (inheritance, single-valued
//! properties) and its reduction to the core model, so that the whole
//! analysis stack applies.
//!
//! ```sh
//! cargo run --example extended_model
//! ```

use receivers::objectbase::extended::{ExtInstance, ExtSchema, Multiplicity};
use receivers::objectbase::{Edge, Oid};

fn main() {
    // Person ⊒ Employee; Employee works at a single Company and manages
    // any number of Persons.
    let mut b = ExtSchema::builder();
    let person = b.class("Person").unwrap();
    let employee = b.class("Employee").unwrap();
    let company = b.class("Company").unwrap();
    b.isa(employee, person);
    let manages = b
        .property(employee, "manages", person, Multiplicity::Multi)
        .unwrap();
    let works_at = b
        .property(employee, "worksAt", company, Multiplicity::Single)
        .unwrap();
    let schema = b.build().unwrap();

    println!(
        "ISA: Employee ⊑ Person: {}",
        schema.is_subclass(employee, person)
    );

    let mut i = ExtInstance::empty(std::sync::Arc::clone(&schema));
    let boss = Oid::new(employee, 0);
    let emp = Oid::new(employee, 1);
    let visitor = Oid::new(person, 0);
    let acme = Oid::new(company, 0);
    for o in [boss, emp, visitor, acme] {
        i.add_object(o);
    }
    i.add_edge(Edge::new(boss, manages, emp)).unwrap();
    i.add_edge(Edge::new(boss, manages, visitor)).unwrap();
    i.add_edge(Edge::new(boss, works_at, acme)).unwrap();

    println!(
        "members of Person (up to ISA): {}",
        i.members_of(person).count()
    );

    // Single-valuedness enforced.
    let second_company = Oid::new(company, 1);
    i.add_object(second_company);
    match i.add_edge(Edge::new(boss, works_at, second_company)) {
        Err(e) => println!("second worksAt rejected: {e}"),
        Ok(_) => unreachable!(),
    }

    // Flatten to the core model: every analysis tool now applies.
    let flat = i.flatten().unwrap();
    println!("\nflattened schema:\n{}", flat.schema);
    println!("flattened instance:\n{}", flat.instance);
    println!(
        "single-valuedness as an fd for the decision machinery: {:?}",
        receivers::relalg::deps::single_valued_dep(
            &flat.schema,
            flat.prop_map[&(works_at, employee, company)]
        )
    );
}
