//! The `receivers-lint` command line: lint update programs against the
//! Section 7 employee catalog.
//!
//! ```sh
//! cargo run --example lint -- examples/fixtures/section7.sql
//! cargo run --example lint -- --json examples/fixtures/section7.sql
//! ```
//!
//! Human-readable output by default, stable JSON with `--json` (the form
//! the CI baselines under `examples/fixtures/*.json` are kept in). Exits
//! with status 1 when any error-severity diagnostic fired, 2 on usage or
//! I/O problems.

use receivers::lint::PassManager;
use receivers::sql::catalog::employee_catalog;

fn main() {
    let mut json = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: lint [--json] <file.sql>...");
                return;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: lint [--json] <file.sql>...");
        std::process::exit(2);
    }

    let (_es, catalog) = employee_catalog();
    let pm = PassManager::with_default_passes();
    let mut failed = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: {file}: {e}");
                std::process::exit(2);
            }
        };
        let report = pm.lint_source(&source, &catalog);
        if json {
            println!("{}", report.render_json());
        } else {
            if files.len() > 1 {
                println!("== {file} ==");
            }
            print!("{}", report.render_human());
        }
        failed |= report.has_errors();
    }
    std::process::exit(if failed { 1 } else { 0 });
}
