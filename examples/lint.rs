//! The `receivers-lint` command line: lint update programs against a
//! catalog.
//!
//! ```sh
//! cargo run --example lint -- examples/fixtures/section7.sql
//! cargo run --example lint -- --json examples/fixtures/section7.sql
//! cargo run --example lint -- --catalog examples/fixtures/library.cat \
//!     examples/fixtures/library.sql
//! ```
//!
//! By default programs are checked against the Section 7 employee
//! catalog; `--catalog <path>` reads a catalog description file instead
//! (see `Catalog::parse` for the format), so any object-base schema can
//! be linted. Human-readable output by default, stable JSON with `--json`
//! (the form the CI baselines under `examples/fixtures/*.json` are kept
//! in). `--stats` turns the observability layer's metrics on and prints
//! per-pass timing plus the global `lint.*` counters to stderr (stdout
//! stays clean for `--json` pipelines). `--explain R0xxx` prints the
//! extended documentation for a lint code (a paragraph plus a minimal
//! triggering example) and exits. Exits with status 1 when any
//! error-severity diagnostic fired, 2 on usage or I/O problems.

use receivers::lint::{explain, PassManager};
use receivers::obs;
use receivers::sql::catalog::{employee_catalog, Catalog};

const USAGE: &str =
    "usage: lint [--json] [--stats] [--catalog <file.cat>] <file.sql>...\n       lint --explain <R0xxx>";

fn main() {
    let mut json = false;
    let mut stats = false;
    let mut catalog_path: Option<String> = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--stats" => stats = true,
            "--catalog" => match args.next() {
                Some(p) => catalog_path = Some(p),
                None => {
                    eprintln!("lint: --catalog requires a path");
                    std::process::exit(2);
                }
            },
            "--explain" => match args.next() {
                Some(code) => match explain(&code) {
                    Some(e) => {
                        print!("{}", receivers::lint::explain::render(e));
                        return;
                    }
                    None => {
                        eprintln!(
                            "lint: unknown code `{code}`; known codes: {}",
                            receivers::lint::explain::ALL
                                .iter()
                                .map(|e| e.code)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("lint: --explain requires a code (e.g. --explain R0501)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if stats {
        // Metrics on (keep tracing wherever RECEIVERS_TRACE left it).
        obs::set_enabled(obs::trace_enabled(), true);
    }

    let catalog = match &catalog_path {
        None => employee_catalog().1,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lint: {path}: {e}");
                    std::process::exit(2);
                }
            };
            match Catalog::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("lint: {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let pm = PassManager::with_default_passes();
    let mut failed = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: {file}: {e}");
                std::process::exit(2);
            }
        };
        let report = pm.lint_source(&source, &catalog);
        if json {
            println!("{}", report.render_json());
        } else {
            if files.len() > 1 {
                println!("== {file} ==");
            }
            print!("{}", report.render_human());
        }
        failed |= report.has_errors();
        if stats {
            if files.len() > 1 {
                eprintln!("== {file} ==");
            }
            eprint!("{}", report.render_stats());
        }
    }
    if stats {
        let snap = obs::metrics_snapshot();
        eprint!("{}", obs::export::render_summary(&snap, &obs::take_spans()));
    }
    std::process::exit(if failed { 1 } else { 0 });
}
