//! A durable run end to end: WAL-logged method application over real
//! files, a compacting checkpoint, a simulated restart, and bit-identical
//! recovery — the "Restarting a run" quickstart of the README.
//!
//! ```sh
//! cargo run --example durability
//! # keep the store around and look at the files:
//! cargo run --example durability -- --dir /tmp/receivers-store
//! # with observability output:
//! cargo run --example durability -- --metrics
//! ```

use std::sync::Arc;

use receivers::core::methods::{add_bar, delete_bar};
use receivers::objectbase::examples::{beer_schema, figure2};
use receivers::objectbase::Receiver;
use receivers::relalg::view::DatabaseView;
use receivers::wal::{DirStorage, DurableStore, WalConfig};

fn main() {
    let (obs_cli, rest) = match receivers::obs::cli::ObsCli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("durability: {e}");
            std::process::exit(2);
        }
    };
    let mut dir: Option<std::path::PathBuf> = None;
    let mut args = rest.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = Some(d.into()),
                None => {
                    eprintln!("durability: --dir needs a path");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!(
                    "usage: durability [--dir <store-dir>] [--trace <out.json>] \
                     [--metrics] [--metrics-json <out.json>]"
                );
                std::process::exit(2);
            }
        }
    }
    let keep = dir.is_some();
    let root = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("receivers-durability-{}", std::process::id()))
    });

    let s = beer_schema();
    let (initial, o) = figure2(&s);

    // A store over real files: epoch-1 snapshot of Figure 2, then every
    // committed transaction goes through the WAL before it is applied.
    let cfg = WalConfig {
        group_commit: 2,
        snapshot_every: 0,
    };
    let storage = DirStorage::open(&root).expect("store directory");
    let mut store =
        DurableStore::create(storage, Arc::clone(&s.schema), cfg, &initial).expect("fresh store");
    println!("store created under {}", root.display());
    println!("  epoch {}, wal file {}", store.epoch(), store.wal_file());

    let mut working = initial.clone();
    let mut view = DatabaseView::new(&working);

    // Run 1: Drinker₁ starts frequenting the one bar Figure 2 leaves
    // unfrequented.
    let m = add_bar(&s);
    let order = vec![Receiver::new(vec![o.d1, o.bar3])];
    m.apply_sequence_durable(&mut working, &mut view, &order, &mut store)
        .expect("durable add_bar");
    println!(
        "after add_bar(d1, bar3): {} bars frequented, last_seq {}",
        working.successors(o.d1, s.frequents).count(),
        store.last_seq()
    );

    // A compacting checkpoint: new-epoch snapshot, manifest swing, old
    // epoch files removed. Recovery after this point replays nothing.
    store
        .checkpoint_db(view.database())
        .expect("compacting checkpoint");
    println!(
        "checkpointed: epoch {}, wal file {}",
        store.epoch(),
        store.wal_file()
    );

    // Run 2: drop the first of the original bars again — this record
    // lives only in the new epoch's WAL tail.
    let d = delete_bar(&s);
    let order = vec![Receiver::new(vec![o.d1, o.bar1])];
    d.apply_sequence_durable(&mut working, &mut view, &order, &mut store)
        .expect("durable delete_bar");
    store.sync().expect("force the tail durable");
    println!(
        "after delete_bar(d1, bar1): {} bars frequented, last_seq {}",
        working.successors(o.d1, s.frequents).count(),
        store.last_seq()
    );

    // "Restart": forget everything in memory and recover from the files
    // alone — manifest, snapshot, WAL tail.
    drop(store);
    let storage = DirStorage::open(&root).expect("store directory");
    let (_store, recovered, rview, report) =
        DurableStore::open(storage, Arc::clone(&s.schema), cfg).expect("recovery");
    println!(
        "recovered: epoch {}, last_seq {}, {} records / {} ops replayed",
        report.epoch, report.last_seq, report.records_replayed, report.ops_replayed
    );

    assert_eq!(recovered, working, "recovery is bit-identical");
    assert!(
        rview.matches_rebuild(&recovered),
        "recovered view matches a fresh rebuild"
    );
    recovered.check_index_consistent();
    println!("recovered instance equals the in-memory run: true");
    println!(
        "recovered view matches a fresh relational rebuild: true ({} bars frequented)",
        recovered.successors(o.d1, s.frequents).count()
    );

    if keep {
        println!("store kept under {}", root.display());
    } else {
        let _ = std::fs::remove_dir_all(&root);
    }

    if let Err(e) = obs_cli.finish() {
        eprintln!("durability: writing observability output: {e}");
        std::process::exit(2);
    }
}
