//! Schema colorings (Section 4): soundness under both axiomatizations of
//! "use", the witness construction of Proposition 4.13, and the six
//! counterexample families of Theorem 4.14.
//!
//! ```sh
//! cargo run --example coloring_analysis
//! ```

use std::sync::Arc;

use receivers::coloring::counterexamples::{counterexample, CounterexampleKind};
use receivers::coloring::{sound_deflationary, sound_inflationary, Color, Coloring, WitnessMethod};
use receivers::core::sequential::apply_sequence;
use receivers::objectbase::examples::beer_schema;
use receivers::objectbase::{SchemaItem, UpdateMethod};

fn main() {
    let s = beer_schema();

    // --- Example 4.15's coloring. ---
    let mut k = Coloring::empty(Arc::clone(&s.schema));
    for item in [
        SchemaItem::Class(s.drinker),
        SchemaItem::Class(s.bar),
        SchemaItem::Class(s.beer),
        SchemaItem::Prop(s.likes),
        SchemaItem::Prop(s.serves),
    ] {
        k.add(item, Color::U);
    }
    k.add(SchemaItem::Prop(s.frequents), Color::C);
    println!("Example 4.15's coloring:\n{k}\n");
    println!("simple: {}", k.is_simple());
    println!(
        "sound (inflationary, Prop. 4.13): {}",
        sound_inflationary(&k).is_empty()
    );
    let defl = sound_deflationary(&k);
    println!(
        "sound (deflationary, Prop. 4.22): {} {}",
        defl.is_empty(),
        if defl.is_empty() {
            String::new()
        } else {
            format!("— {}", defl[0])
        }
    );
    println!("⇒ simple + sound ⇒ every method with this minimal coloring is\n  inflationary (Prop. 4.10) and order independent (Thm. 4.14)\n");

    // --- The witness construction. ---
    let witness = WitnessMethod::new(k).expect("sound");
    println!(
        "witness method built (Prop. 4.13): signature {}",
        witness.signature().display(&s.schema)
    );

    // --- The six counterexample families. ---
    println!("\nTheorem 4.14's six counterexample families (non-simple colorings):");
    for kind in CounterexampleKind::ALL {
        let demo = counterexample(kind);
        let orders = demo.receivers.enumerations();
        let outcomes: Vec<_> = orders
            .iter()
            .map(|o| apply_sequence(&demo.method, &demo.instance, o))
            .collect();
        let distinct: std::collections::BTreeSet<_> =
            outcomes.iter().map(|o| format!("{o:?}")).collect();
        println!(
            "  {:?}: |T| = {}, enumeration orders = {}, distinct outcomes = {} ⇒ order dependent",
            kind,
            demo.receivers.len(),
            orders.len(),
            distinct.len(),
        );
    }

    // --- An unsound coloring, diagnosed. ---
    println!("\nDiagnosing an unsound coloring (delete without use):");
    let mut bad = Coloring::empty(Arc::clone(&s.schema));
    bad.add(SchemaItem::Class(s.bar), Color::D);
    bad.add(SchemaItem::Class(s.drinker), Color::U);
    for v in sound_inflationary(&bad) {
        println!("  {v}");
    }
}
